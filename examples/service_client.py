#!/usr/bin/env python3
"""Talk to the analysis service: submit, stream, inspect, shut down.

The service (:mod:`repro.service`) runs analyses and scenario sweeps as
*jobs* against one long-lived :class:`repro.Session`, so every job it
serves shares the same warm artifact cache — and, when started with
``--store``, the same durable on-disk artifact store.  This example
starts a service on an ephemeral port in-process (so it is runnable
stand-alone; against a real deployment you would skip that part and just
point :class:`~repro.service.ServiceClient` at the host/port of a
``python -m repro serve`` instance), then walks the full client surface:

* submit an ``analyze`` job, wait for it, print the served Table I;
* submit a ``sweep`` job and *stream* it — one event per completed
  scenario, with the scenario's Table I attached;
* hit the per-client quota and ride out the structured backpressure
  rejection with ``submit_with_retry``;
* inspect ``jobs`` / ``stats``, then drain the service gracefully.

The CLI spellings of the same operations::

    python -m repro serve --port 7321 --store /tmp/repro-store
    python -m repro submit analyze --port 7321 --design tiny
    python -m repro submit sweep --port 7321 --base tiny \\
        --axis effort=tie,random --stream
    python -m repro jobs --port 7321

Run with:  python examples/service_client.py
"""

import tempfile
import threading

from repro.service import AnalysisService, ServiceClient, ServiceError


def start_service(store_dir: str) -> AnalysisService:
    """An in-process service on an ephemeral port (demo convenience)."""
    service = AnalysisService(port=0, store=store_dir,
                              max_queue=4, max_jobs_per_client=2)
    ready = threading.Event()
    threading.Thread(target=service.run,
                     kwargs={"ready": lambda _svc: ready.set()},
                     daemon=True).start()
    assert ready.wait(10), "service did not come up"
    print(f"service listening on 127.0.0.1:{service.port}")
    return service


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        service = start_service(store_dir)
        client = ServiceClient(port=service.port, timeout=300.0,
                               client_id="example")

        # -- one analysis job: submit, wait, fetch the rendered table ---- #
        job = client.submit("analyze", {"design": "tiny", "effort": "tie"})
        print(f"submitted {job['id']} ({job['state']})")
        final = client.wait(job["id"])
        outcome = client.result(job["id"])
        print(f"{job['id']} finished: {final['state']}")
        print(outcome["result"]["table"])

        # -- a streamed sweep: one event per completed scenario ---------- #
        sweep = client.submit(
            "sweep", {"base": "tiny", "axes": {"effort": ["tie", "random"]}})
        print(f"\nstreaming {sweep['id']} ...")
        for event in client.stream(sweep["id"]):
            if event["event"] == "scenario":
                verdict = "ok" if event["ok"] else f"FAILED ({event['error']})"
                print(f"  scenario {event['label']}: {verdict} "
                      f"({event['elapsed_seconds']:.2f}s)")
            elif event["event"] == "done":
                print(f"  -> {event['state']}")

        # -- backpressure: quota rejections carry a retry_after hint ----- #
        # The service admits at most max_jobs_per_client live jobs per
        # client; beyond that, submit fails with a structured error whose
        # retry_after estimates when a slot will free up.  The jobs here
        # are warm-cached, so a burst may drain before the quota trips —
        # submit_with_retry handles both outcomes by sleeping out the hint.
        print("\nburst of 6 submits against a quota of 2:")
        burst = []
        for n in range(6):
            try:
                burst.append(client.submit("analyze", {"design": "tiny"}))
            except ServiceError as exc:
                print(f"  submit #{n + 1} rejected: {exc.code} "
                      f"(retry after ~{exc.retry_after:.1f}s)")
                burst.append(client.submit_with_retry(
                    "analyze", {"design": "tiny"}, attempts=30))
        for pending in burst:
            client.wait(pending["id"])
        print(f"  all {len(burst)} jobs landed and finished")

        # -- introspection, then a graceful drain ------------------------ #
        states = [f"{entry['id']}={entry['state']}"
                  for entry in client.jobs()]
        stats = client.stats()
        print(f"\njobs: {', '.join(states)}")
        print(f"cache after serving everything: {stats['cache']}")
        print(f"shutdown: {client.shutdown(drain=True)}")


if __name__ == "__main__":
    main()
