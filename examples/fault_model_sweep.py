#!/usr/bin/env python3
"""Sweep the fault model against the core size: stuck-at vs transition-delay.

The paper's methodology is defined over fault *classes*, and the package's
fault model is a first-class, pluggable axis (:mod:`repro.faults.models`):
``stuck_at`` is the classic single stuck-at universe Table I is built on,
``transition`` the launch-on-capture transition-delay model (slow-to-rise /
slow-to-fall, two-pattern detection).  This example expands the cartesian
``fault_model × size`` grid and compares the on-line functionally
untestable populations:

* a site held constant in mission mode hides *one* stuck-at fault but
  *both* transition polarities (a held net never toggles), so the
  scan-enable and debug-control sources grow under the transition model;
* the structural baseline grows too — every functionally-constant net
  contributes two unexcitable transition faults.

Scenarios that share a netlist (here: the two models of each size) reuse
the compiled IR through the global compile cache; per-pass artifacts are
keyed on the fault model, so classifications never leak across models.

The identical sweep runs from the command line::

    python -m repro sweep --base tiny --axis size=tiny,small \\
        --axis fault_model=stuck_at,transition --out models.json
    python -m repro report models.json

Run with:  python examples/fault_model_sweep.py
"""

import repro


def main() -> None:
    session = repro.Session(executor="thread")

    grid = (repro.ScenarioGrid("tiny")
            .axis("size", ["tiny", "small"])
            .axis("fault_model", ["stuck_at", "transition"]))
    print(f"expanding {grid!r}")
    print()

    report = session.sweep(grid)
    print(report.to_table())
    print()

    # Per-model Table I: the rendered title names the fault model.
    for result in report:
        print(result.report.to_table())
        print()

    by_model = {}
    for result in report:
        by_model.setdefault(result.report.fault_model, []).append(result)
    for model, results in by_model.items():
        untestable = sum(r.report.total_online_untestable for r in results)
        print(f"{model:>10}: {untestable:,} on-line untestable faults "
              f"across {len(results)} sizes")


if __name__ == "__main__":
    main()
