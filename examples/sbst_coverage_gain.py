#!/usr/bin/env python3
"""SBST workflow: quiescent-signal discovery and the coverage gain from pruning.

Reproduces the §4 workflow around the identification flow:

1. generate a software-based self-test (SBST) suite for the core and run it
   on the gate-level netlist, collecting toggle activity and the functional
   patterns it applies;
2. use the activity data to shortlist the suspect (never-toggling) inputs —
   this is how the paper's authors found the 17 debug signals on the
   industrial SoC;
3. fault-grade the functional patterns with mission observability and compare
   the stuck-at fault coverage before and after pruning the on-line
   functionally untestable faults — the pruning is what lifts the reported
   coverage towards the ISO 26262 targets.

Run with:  python examples/sbst_coverage_gain.py
"""

from repro.core import OnlineUntestableFlow
from repro.debug.interface import find_quiescent_inputs
from repro.sbst import FaultGrader, ToggleMonitor, generate_sbst_suite
from repro.soc import SoCConfig, build_soc


def main() -> None:
    soc = build_soc(SoCConfig.tiny())
    config = soc.config.cpu

    programs = generate_sbst_suite(config)
    print("Generated SBST suite:")
    for program in programs:
        print(f"  {program.name:16s} {program.length:4d} instructions")
    print()

    monitor = ToggleMonitor(soc.cpu)
    patterns = monitor.run_suite(programs)
    print(f"Executed the suite on the gate-level core: "
          f"{len(patterns)} functional patterns captured")

    quiescent = find_quiescent_inputs(soc.cpu, monitor.toggle_counts)
    print(f"Input pins that never toggled while the suite ran "
          f"({len(quiescent)} suspects):")
    for port in sorted(quiescent):
        print(f"  {port}")
    annotated = set(soc.debug_interface.control_inputs)
    print(f"  -> {len(annotated & set(quiescent))} of the "
          f"{len(annotated)} annotated debug control pins were recovered "
          f"by activity analysis alone")
    print()

    report = OnlineUntestableFlow(soc).run()
    print(report.to_table())
    print()

    grader = FaultGrader(soc.cpu)
    comparison = grader.compare_with_pruning(patterns, report.online_untestable)
    print("Fault grading of the SBST suite (mission observability):")
    print(f"  detected faults              : {comparison.detected:,}")
    print(f"  fault-list size              : {comparison.total_faults:,}")
    print(f"  coverage (full fault list)   : {comparison.coverage_before:.1%}")
    print(f"  on-line untestable pruned    : {comparison.pruned:,}")
    print(f"  coverage (pruned fault list) : {comparison.coverage_after:.1%}")
    print(f"  => coverage gain             : +{comparison.coverage_gain:.1%}")


if __name__ == "__main__":
    main()
