#!/usr/bin/env python3
"""Batch scenario sweep: compare OLFU populations across SoC variants.

The paper's Table I is one design point.  This example expands a
:class:`repro.ScenarioGrid` — the cartesian product of scenario axes over a
base SoC configuration — and pushes it through
:meth:`repro.Session.sweep` on the thread backend:

* ``debug`` axis: with and without the Nexus/JTAG-style debug logic;
* ``effort`` axis: the `tie` and `random` ATPG efforts.

Scenarios that share a netlist (here: the two efforts of each debug
variant) replay each other's effort-independent artifacts from the
session's shared cache, so the sweep does strictly less work than four
independent runs.  Results stream in completion order; the aggregated
report renders per-scenario Table-I rows with deltas against the first
scenario and serializes to JSON/CSV for diffing across runs.

The identical sweep runs from the command line::

    python -m repro sweep --base tiny --axis debug=on,off \\
        --axis effort=tie,random --executor thread --out sweep.json
    python -m repro report sweep.json

Run with:  python examples/scenario_sweep.py
"""

import repro


def main() -> None:
    session = repro.Session(executor="thread")

    grid = (repro.ScenarioGrid("tiny")
            .axis("debug", [True, False])
            .axis("effort", ["tie", "random"]))
    print(f"expanding {grid!r}")
    print()

    # Stream results as the backend completes them (a failing scenario
    # yields an error-carrying result instead of aborting the sweep) ...
    for result in session.iter_sweep(grid):
        if result.ok:
            print(f"  finished {result.label}: "
                  f"{result.report.total_online_untestable:,} OLFU faults "
                  f"({result.elapsed_seconds:.2f}s)")
        else:
            print(f"  FAILED {result.label}: {result.error}")
    print()

    # ... or let sweep() aggregate everything in one call.  The scenarios
    # are already cached, so this replays instantly.
    report = session.sweep(grid)
    print(report.to_table())
    print()
    print(f"shared-cache activity across the sweep: {session.cache_stats}")

    # The aggregated report round-trips through JSON for persistence and
    # diffing (python -m repro report <file>).
    restored = repro.SweepReport.from_json(report.to_json())
    assert [r.label for r in restored] == [r.label for r in report]
    print()
    print("per-scenario comparison as CSV:")
    print(restored.to_csv())


if __name__ == "__main__":
    main()
