#!/usr/bin/env python3
"""One warm worker pool, many runs: the persistent parallel runtime.

``--jobs N`` forks worker processes; ``pool="persistent"`` decides how
long they live.  This example builds one :class:`repro.Session` whose
:class:`~repro.api.RunOptions` pin the persistent pool, then pushes a
two-axis scenario sweep through it:

* the **first** simulating scenario pays the cold start — workers
  spawn, the compiled netlist and kernel plans are installed
  (content-addressed, once per netlist signature);
* **every later** scenario against the same netlist lands on warm
  workers — its setup is a worker-side cache hit measured in
  microseconds (watch ``install_hits`` climb), and the work-stealing
  scheduler hands out small cone-affine fault chunks instead of
  static shards.

Verdicts and Table I are byte-identical to the serial engine either
way — the pool is a runtime knob, not a cache facet.

The identical flow runs from the command line::

    python -m repro sweep --base tiny --axis effort=tie,random \\
        --axis fault_model=stuck_at,transition \\
        --jobs 2 --pool persistent
    python -m repro analyze tiny --jobs 2 --pool persistent

Run with:  python examples/warm_pool_sweep.py
"""

import repro
from repro.api import RunOptions


def main() -> None:
    options = RunOptions(jobs=2, pool="persistent")
    with repro.Session(options=options) as session:
        # Two fault models over two efforts: four scenarios, one
        # netlist.  The first scenario that simulates provisions the
        # pool; the other three find everything already installed.
        grid = (repro.ScenarioGrid("tiny")
                .axis("effort", ["tie", "random"])
                .axis("fault_model", ["stuck_at", "transition"]))
        report = session.sweep(grid)
        print(report.to_table())
        print()

        # A repeat analysis of the same design doesn't even reach the
        # pool: the session's artifact cache replays it outright, and
        # the warm workers keep waiting for the next real job.
        session.analyze("tiny", options=RunOptions(effort="random"))

        for stats in session.pool_stats():
            print(f"pool[{stats['workers']} workers, "
                  f"{stats['start_method']}]: "
                  f"{stats['installs']} installs, "
                  f"{stats['install_hits']} warm hits, "
                  f"{stats['tasks']} tasks, "
                  f"cold start {stats['cold_start_seconds']:.3f}s, "
                  f"last setup {stats['last_setup_seconds']:.6f}s, "
                  f"{stats['worker_restarts']} restarts")
    # Leaving the ``with`` block released the executor; the process-wide
    # pool registry itself is reaped atexit (or explicitly via
    # session.close(shutdown_pools=True)).


if __name__ == "__main__":
    main()
