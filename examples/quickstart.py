#!/usr/bin/env python3
"""Quickstart: identify on-line functionally untestable faults in a generated core.

Creates a :class:`repro.Session` — the stateful front door that owns the
artifact cache and execution defaults — wraps the "small" synthetic
processor core (register file, ALU, AGU, BTB, debug logic, full scan) in a
:class:`repro.Design`, and runs the complete identification flow from the
paper (scan -> debug control -> debug observation -> memory map).  Prints
the Table-I style summary plus a few example faults per source, then shows
the session cache replaying the whole flow on a second call.

Run with:  python examples/quickstart.py
"""

import repro
from repro.core.report import render_source_details


def main() -> None:
    # A Session bundles the artifact cache, the executor backend used by
    # sweeps, and the default pass selection / ATPG effort.  Independent
    # analysis passes run concurrently with parallel_passes=True.
    session = repro.Session(parallel_passes=True)

    # Targets coerce automatically: a preset name, a SoCConfig, a built
    # SoC, a bare Netlist, or an explicit Design all work.
    design = session.design("small")

    stats = design.stats()
    print(f"Generated core '{design.name}' "
          f"(signature {design.signature[:12]}...):")
    print(f"  {stats['instances']:,} cells "
          f"({stats['sequential']:,} flip-flops, {stats['combinational']:,} gates), "
          f"{stats['scan_chains']} scan chains")
    print(f"  memory map: {design.memory_map}")
    print()

    report = session.analyze(design)

    print(report.to_table())
    print()
    print(render_source_details(report, max_faults_per_source=5))

    fraction = report.total_online_untestable / report.total_faults
    print()
    print(f"=> {report.total_online_untestable:,} of {report.total_faults:,} "
          f"stuck-at faults ({fraction:.1%}) can never be detected by an "
          f"on-line functional test and should be pruned from the fault list.")

    # The session memoises every pass result under the design's content
    # signature: analyzing the same design again replays from cache.
    session.analyze(design)
    print()
    print(f"session cache after a repeat analysis: {session.cache_stats}")
    print("(see examples/scenario_sweep.py for batch sweeps over SoC "
          "variants, and examples/custom_pass.py for authoring passes)")


if __name__ == "__main__":
    main()
