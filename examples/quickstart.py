#!/usr/bin/env python3
"""Quickstart: identify on-line functionally untestable faults in a generated core.

Builds the "small" synthetic processor core (register file, ALU, AGU, BTB,
debug logic, full scan) and runs the complete identification flow from the
paper (scan -> debug control -> debug observation -> memory map) through the
one-call entry point :func:`repro.analyze`, which drives the composable
analysis-pass pipeline (see ``examples/custom_pass.py`` for authoring your
own pass).  Prints the Table-I style summary plus a few example faults per
source.

Run with:  python examples/quickstart.py
"""

import repro
from repro.core.report import render_source_details
from repro.soc import SoCConfig, build_soc


def main() -> None:
    config = SoCConfig.small()
    soc = build_soc(config)

    stats = soc.stats()
    print(f"Generated core '{soc.name}':")
    print(f"  {stats['instances']:,} cells "
          f"({stats['sequential']:,} flip-flops, {stats['combinational']:,} gates), "
          f"{stats['scan_chains']} scan chains")
    print(f"  memory map: {soc.memory_map}")
    print()

    # The four paper analyses only share read-only inputs once the baseline
    # is computed, so they are safe to run concurrently.
    report = repro.analyze(soc, parallel=True)

    print(report.to_table())
    print()
    print(render_source_details(report, max_faults_per_source=5))

    fraction = report.total_online_untestable / report.total_faults
    print()
    print(f"=> {report.total_online_untestable:,} of {report.total_faults:,} "
          f"stuck-at faults ({fraction:.1%}) can never be detected by an "
          f"on-line functional test and should be pruned from the fault list.")


if __name__ == "__main__":
    main()
