#!/usr/bin/env python3
"""Using the flow on your own netlist (structural Verilog in, fault list out).

The identification flow is not tied to the built-in SoC generator: any flat
gate-level netlist mapped onto the library cells can be analysed.  This
example builds a small peripheral block by hand, serialises it to structural
Verilog, parses it back (as you would parse your own design), annotates the
mission configuration (debug pins, memory map, scan) and runs the flow.

Run with:  python examples/custom_netlist_flow.py
"""

from repro.core import OnlineUntestableFlow
from repro.memory.memory_map import MemoryMap, MemoryRegion
from repro.netlist.builder import NetlistBuilder
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.scan.insertion import insert_scan


def build_peripheral() -> str:
    """A tiny memory-mapped peripheral: an 8-bit address decoder + data register
    with a debug-observable copy of its state."""
    b = NetlistBuilder("uart_like_peripheral")
    clk = b.add_input("clk")
    rst_n = b.add_input("rst_n")
    addr = b.add_input_bus("addr", 8)
    wdata = b.add_input_bus("wdata", 8)
    write = b.add_input("write")
    dbg_force = b.add_input("dbg_force")
    dbg_value = b.add_input("dbg_value")
    rdata = b.add_output_bus("rdata", 8)
    dbg_state = b.add_output_bus("dbg_state", 8)

    # Address decode: the register lives at address 0x10.
    match_bits = [b.inv(addr[i]) if ((0x10 >> i) & 1) == 0 else b.buf(addr[i])
                  for i in range(8)]
    selected = b.and_(*match_bits)
    enable = b.gate("AND2", selected, write)

    for i in range(8):
        hold_or_load = b.mux(enable, f"reg_q{i}", wdata[i])
        forced = b.mux(dbg_force, hold_or_load, dbg_value)
        b.dff(forced, clk, q=f"reg_q{i}", reset_n=rst_n, name=f"reg_ff{i}")
        b.buf(f"reg_q{i}", output=rdata[i])
        b.buf(f"reg_q{i}", output=dbg_state[i], name=f"dbg_buf{i}")

    insert_scan(b.netlist, n_chains=1, buffer_every=2)
    return write_verilog(b.build())


def main() -> None:
    verilog_text = build_peripheral()
    print("Structural Verilog of the peripheral (excerpt):")
    print("\n".join(verilog_text.splitlines()[:12]))
    print("  ...")
    print()

    # Parse it back, exactly as an external design would be brought in.
    netlist = parse_verilog(verilog_text)

    # Describe the mission configuration.
    netlist.annotations["debug_interface"] = {
        "control_inputs": {"dbg_force": 0, "dbg_value": 0},
        "observation_outputs": [f"dbg_state[{i}]" for i in range(8)],
    }
    netlist.annotations["address_registers"] = []  # no address registers here
    memory_map = MemoryMap(8, [MemoryRegion("regs", 0x10, 0x08)])

    report = OnlineUntestableFlow(netlist, memory_map=memory_map).run()
    print(report.to_table())
    print()
    print("Example pruned faults:")
    for fault in sorted(report.online_untestable)[:12]:
        print(f"  {fault}")


if __name__ == "__main__":
    main()
