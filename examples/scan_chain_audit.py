#!/usr/bin/env python3
"""Scan-chain audit: trace every chain and prune the §3.1 fault population.

Shows the scan-specific part of the flow in isolation, including the paper's
§4 sanity check: tieing the scan-enable to its functional value and asking
the structural engine to confirm that the pruned serial-input faults come
back classified as untestable-due-to-tied-value.

Run with:  python examples/scan_chain_audit.py
"""

from repro.core.scan_analysis import identify_scan_untestable, verify_scan_faults_with_engine
from repro.soc import SoCConfig, build_soc
from repro.utils.tables import Table


def main() -> None:
    soc = build_soc(SoCConfig.small())
    result = identify_scan_untestable(soc.cpu)

    table = Table(["Chain", "scan-in", "scan-out", "cells", "path buffers"],
                  title=f"Scan chains of {soc.name}")
    for index, chain in enumerate(result.chains):
        table.add_row([index, chain.scan_in_port, chain.scan_out_port or "-",
                       chain.length, len(chain.path_instances)])
    print(table.render())
    print()

    counts = result.counts()
    print("On-line functionally untestable scan faults (paper §3.1):")
    print(f"  serial-input (SI) faults      : {counts['serial_input']:,}")
    print(f"  scan-enable functional stuck  : {counts['scan_enable']:,}")
    print(f"  scan-path buffers and routing : {counts['path']:,}")
    print(f"  scan port pins                : {counts['ports']:,}")
    print(f"  total                         : {counts['total']:,}")
    print()

    sample = sorted(result.serial_input_faults)[:64]
    agreement = verify_scan_faults_with_engine(soc.cpu, result, sample)
    confirmed = sum(agreement.values())
    print(f"Cross-check with the structural engine (SE tied to functional value): "
          f"{confirmed}/{len(sample)} sampled SI faults confirmed untestable")
    print()
    print("Example pruned faults:")
    for fault in sorted(result.untestable)[:10]:
        print(f"  {fault}")


if __name__ == "__main__":
    main()
