#!/usr/bin/env python3
"""Authoring a custom analysis pass for the repro pipeline.

The paper studies three sources of on-line functional untestability (scan,
debug, memory map), but the pipeline is open: any analysis that can name a
set of faults "never testable in the field" plugs in as a pass.  This
example adds a fourth source in the paper's spirit — the *reset tree*.
While the mission application runs, the external reset is never asserted
(``rst_n`` is held high), so we tie it to its mission constant on a clone
of the core, re-run the structural untestability engine and claim the
*newly* untestable faults for a custom ``"reset_tree"`` source.

A pass declares:

* ``name``      — registry key, selectable via ``Session.analyze(passes=[...])``;
* ``source``    — an :class:`OnlineUntestableSource` member or any custom
                  label; faults are attributed first to the paper's sources
                  (in the paper's fixed order), then to custom ones;
* ``requires`` / ``provides`` — artifact keys; the pipeline resolves the
  execution order (and concurrency) from these declarations.

Run with:  python examples/custom_pass.py
"""

import repro
from repro.atpg.engine import StructuralUntestabilityEngine
from repro.core.report import render_source_details
from repro.manipulation.tie import tie_port
from repro.pipeline import PassResult, analysis_pass
from repro.soc import SoCConfig, build_soc

MISSION_RESET_VALUE = 1  # rst_n is active-low and never asserted in-field


@analysis_pass("reset_tree", source="reset_tree",
               requires=("fault_universe", "baseline_untestable"),
               provides=("reset_tree_result",),
               when=lambda ctx: "rst_n" in ctx.netlist.ports)
def reset_tree_pass(ctx) -> PassResult:
    """Faults only testable while the external reset is asserted."""
    manipulated = ctx.netlist.clone(f"{ctx.netlist.name}_reset_tied")
    tie_port(manipulated, "rst_n", MISSION_RESET_VALUE,
             reason="reset never asserted in mission mode")
    engine = StructuralUntestabilityEngine(manipulated, effort=ctx.effort)
    untestable = set(engine.classify(ctx.fault_universe).untestable)
    newly = untestable - ctx.baseline_untestable
    return PassResult(artifacts={"reset_tree_result": untestable},
                      identified=newly)


def main() -> None:
    soc = build_soc(SoCConfig.tiny())

    # The default flow, plus our pass.  Dependencies (fault_list, baseline)
    # are pulled in automatically; parallel_passes=True would schedule
    # reset_tree concurrently with the paper's sources.
    report = repro.Session().analyze(soc, passes=[
        "scan_analysis", "debug_control", "debug_observe",
        "memory_analysis", "reset_tree",
    ])

    print(report.to_table())
    print()
    print(render_source_details(report, max_faults_per_source=3))

    reset_summary = next(
        (s for s in report.sources if s.source == "reset_tree"), None)
    if reset_summary is not None:
        print()
        print(f"=> the reset tree contributes {reset_summary.count:,} "
              f"additional on-line untestable faults "
              f"(of {len(reset_summary.identified):,} identified; the rest "
              f"were already claimed by the paper's sources).")


if __name__ == "__main__":
    main()
