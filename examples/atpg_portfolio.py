#!/usr/bin/env python3
"""Drive the ATPG portfolio: pluggable backends, seeds and RunOptions.

The classification engines generate tests through a portfolio of
backends (:mod:`repro.atpg.portfolio`): the classic ``podem`` reference,
``podem-restart`` (staged backtrack budgets with a seeded
randomized-restart decision ordering — deterministic per fault, so it
shards across worker backends without moving a verdict) and ``dalg``
(PODEM primary plus a five-valued D-algorithm escalation tier that turns
aborted AU faults into proven UU/DT where the search completes).

This example runs the same analysis under all three backends and shows
the portfolio contract in action:

* the classification verdicts — and the rendered Table I — are
  byte-identical across backends and seeds wherever searches complete;
* the per-run knobs travel as one frozen :class:`repro.api.RunOptions`
  bundle (the replacement for the historically scattered keywords);
* the compacted pattern set and its compaction trace
  (generated/kept/merged/dropped) ride on the engine report.

The identical flows run from the command line::

    python -m repro analyze tiny --atpg-backend podem-restart --atpg-seed 7
    python -m repro sweep --base tiny --axis atpg_backend=podem,dalg
    python -m repro backends

Run with:  python examples/atpg_portfolio.py
"""

from repro.api import RunOptions, Session
from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.atpg.portfolio import ATPG_BACKENDS, atpg_backend_names
from repro.faults.faultlist import generate_fault_list
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


def main() -> None:
    print("registered ATPG backends:")
    for name in atpg_backend_names():
        backend = ATPG_BACKENDS[name]
        tier = " (escalates aborts)" if backend.escalates else ""
        print(f"  {name:14s} {backend.description}{tier}")

    # One session, one design, three backends: the verdict table must not
    # move by a byte.  atpg_backend/atpg_seed are RunOptions-only knobs —
    # they were born after the keyword cull, so they never existed as
    # scattered keywords.
    session = Session(options=RunOptions(effort="tie"))
    tables = {}
    for name in atpg_backend_names():
        report = session.analyze("tiny", options=RunOptions(
            atpg_backend=name, atpg_seed=7))
        tables[name] = report.to_table()
    reference = tables["podem"]
    for name, table in tables.items():
        marker = "==" if table == reference else "!="
        print(f"  Table I under {name:14s} {marker} podem reference")
    assert all(table == reference for table in tables.values())

    # The engine-level view: classify a deterministic fault sample at FULL
    # effort and inspect the compacted pattern set the search produced
    # (the full population is corpus/benchmark territory, not example
    # territory).
    netlist = build_soc(SoCConfig.tiny()).cpu
    population = generate_fault_list(netlist).faults()
    step = max(1, len(population) // 200)
    faults = population[::step][:200]
    engine = StructuralUntestabilityEngine(
        netlist, effort=AtpgEffort.FULL, atpg_backend="podem-restart",
        atpg_seed=7)
    report = engine.classify(faults)
    print(f"\nFULL-effort classification of {len(faults)} of "
          f"{len(population)} faults under podem-restart: "
          f"{report.counts()}")
    if report.compaction:
        trace = report.compaction
        print(f"pattern compaction: {trace['generated']} generated -> "
              f"{trace['kept']} kept ({trace['merged']} merged, "
              f"{trace['dropped']} dropped)")
        for entry in report.patterns[:3]:
            print(f"  pattern detects {entry['detects']:3d} faults")


if __name__ == "__main__":
    main()
