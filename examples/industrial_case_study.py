#!/usr/bin/env python3
"""Reproduction of the paper's industrial case study (§4, Table I).

Builds the "date13" configuration — a 32-bit core with a 32-entry register
file, multiplier, barrel shifter, branch target buffer, a Nexus/JTAG-class
debug interface with 17 control pins and two 32-bit observation buses, full
mux-scan, and a memory map that frees only address bits 0..17 and 30 — and
runs the complete on-line untestability identification flow on it.

The absolute fault counts differ from the paper (the industrial e200z0
netlist is proprietary; ours is a synthetic equivalent), but the shape of
Table I is reproduced: scan is the dominant source (~9 %), debug contributes
a few percent split between control and observation, the memory map adds a
couple of percent, and the total lands in the low teens.

Run with:  python examples/industrial_case_study.py
"""

import time

from repro.core import OnlineUntestableFlow
from repro.core.report import render_source_details
from repro.faults.categories import OnlineUntestableSource
from repro.soc import SoCConfig, build_soc
from repro.utils.tables import Table

# Table I of the paper, for side-by-side comparison.
PAPER_TABLE_I = {
    "total_faults": 214_930,
    "Scan": (19_142, 8.9),
    "Debug": (4_548 + 2_357, 3.2),
    "Memory": (3_610, 1.7),
    "TOTAL": (29_657, 13.8),
}


def main() -> None:
    print("Building the synthetic e200z0-class SoC (date13 configuration)...")
    start = time.perf_counter()
    soc = build_soc(SoCConfig.date13())
    build_time = time.perf_counter() - start

    stats = soc.stats()
    print(f"  {stats['instances']:,} cells, {stats['sequential']:,} scan flip-flops "
          f"in {stats['scan_chains']} chains, built in {build_time:.2f}s")
    print(f"  debug interface: {soc.debug_interface.control_count} control pins, "
          f"{soc.debug_interface.observation_count} observation pins")
    print(f"  {soc.memory_map}")
    print()

    start = time.perf_counter()
    report = OnlineUntestableFlow(soc).run()
    flow_time = time.perf_counter() - start

    print(report.to_table())
    print()
    print(f"Total analysis time: {flow_time:.2f}s "
          f"(the paper reports < 1 s of TetraMax CPU time on the manipulated circuit)")
    print()

    comparison = Table(["Source", "paper [#]", "paper [%]", "ours [#]", "ours [%]"],
                       title="Paper Table I vs. this reproduction")
    rows = {row["source"]: row for row in report.table_rows()}
    for source in ("Scan", "Debug", "Memory", "TOTAL"):
        paper_count, paper_pct = PAPER_TABLE_I[source]
        ours = rows[source]
        comparison.add_row([source, paper_count, f"{paper_pct:.1f}%",
                            ours["count"], f"{ours['percent']:.1f}%"])
    print(comparison.render())
    print()

    ctrl = report.source_count(OnlineUntestableSource.DEBUG_CONTROL)
    obs = report.source_count(OnlineUntestableSource.DEBUG_OBSERVE)
    print(f"Debug split (control + observation): {ctrl:,} + {obs:,} "
          f"(paper: 4,548 + 2,357)")
    print()
    print(render_source_details(report, max_faults_per_source=3))


if __name__ == "__main__":
    main()
