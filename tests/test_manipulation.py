"""Unit tests for circuit manipulation: ties, floats, constant propagation."""

import pytest

from repro.manipulation.constprop import propagate_constants
from repro.manipulation.disconnect import (
    disconnect_output_bus,
    disconnect_output_port,
    reconnect_output_port,
)
from repro.manipulation.tie import TieRecord, tie_bus, tie_net, tie_port, tied_nets, untie_net
from repro.netlist.cells import LOGIC_0, LOGIC_1

from tests.conftest import build_and_or_circuit


class TestTie:
    def test_tie_net_sets_value_and_records(self, and_or_circuit):
        record = tie_net(and_or_circuit, "c", LOGIC_1, reason="debug input")
        assert isinstance(record, TieRecord)
        assert and_or_circuit.net("c").tied == LOGIC_1
        assert tied_nets(and_or_circuit) == {"c": LOGIC_1}
        assert and_or_circuit.annotations["tie_records"][0].reason == "debug input"

    def test_tie_invalid_value_rejected(self, and_or_circuit):
        with pytest.raises(ValueError):
            tie_net(and_or_circuit, "c", 5)

    def test_tie_unknown_net_rejected(self, and_or_circuit):
        with pytest.raises(KeyError):
            tie_net(and_or_circuit, "nope", LOGIC_0)

    def test_tie_port_checks_existence(self, and_or_circuit):
        tie_port(and_or_circuit, "a", LOGIC_0)
        with pytest.raises(KeyError):
            tie_port(and_or_circuit, "not_a_port", LOGIC_0)

    def test_tie_bus_length_check(self, and_or_circuit):
        tie_bus(and_or_circuit, ["a", "b"], [LOGIC_0, LOGIC_1])
        assert and_or_circuit.net("a").tied == LOGIC_0
        assert and_or_circuit.net("b").tied == LOGIC_1
        with pytest.raises(ValueError):
            tie_bus(and_or_circuit, ["a", "b"], [LOGIC_0])

    def test_untie_restores_net(self, and_or_circuit):
        tie_net(and_or_circuit, "c", LOGIC_1)
        untie_net(and_or_circuit, "c")
        assert and_or_circuit.net("c").tied is None
        assert tied_nets(and_or_circuit) == {}
        assert and_or_circuit.annotations["tie_records"] == []


class TestDisconnect:
    def test_disconnect_marks_unobservable(self, and_or_circuit):
        disconnect_output_port(and_or_circuit, "z", reason="debug bus")
        assert "z" in and_or_circuit.unobservable_ports
        assert and_or_circuit.observable_output_ports() == ["y"]

    def test_disconnect_requires_output_port(self, and_or_circuit):
        with pytest.raises(ValueError):
            disconnect_output_port(and_or_circuit, "a")
        with pytest.raises(KeyError):
            disconnect_output_port(and_or_circuit, "nope")

    def test_disconnect_bus_and_reconnect(self, and_or_circuit):
        disconnect_output_bus(and_or_circuit, ["y", "z"])
        assert and_or_circuit.observable_output_ports() == []
        reconnect_output_port(and_or_circuit, "y")
        assert and_or_circuit.observable_output_ports() == ["y"]
        assert all(r["port"] != "y"
                   for r in and_or_circuit.annotations["float_records"])


class TestConstantPropagation:
    def test_inert_instances_reported(self, and_or_circuit):
        tie_net(and_or_circuit, "c", LOGIC_1)
        result = propagate_constants(and_or_circuit)
        assert result.constants["y"] == LOGIC_1
        assert result.constants["z"] == LOGIC_0
        assert "or2_0" in result.inert_instances
        assert "inv_0" in result.inert_instances
        assert "and2_0" not in result.inert_instances
        assert result.constant_net_count >= 3

    def test_clean_circuit_has_no_constants(self, and_or_circuit):
        result = propagate_constants(and_or_circuit)
        assert result.constants == {}
        assert result.inert_instances == []
