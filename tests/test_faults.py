"""Unit tests for the stuck-at fault model, fault lists and collapsing."""

import pytest

from repro.faults.categories import FaultClass, OnlineUntestableSource
from repro.faults.collapse import collapse_fault_list, equivalence_classes
from repro.faults.fault import SA0, SA1, StuckAtFault, fault_site_net, fault_site_pin
from repro.faults.faultlist import FaultList, generate_fault_list

from tests.conftest import build_and_or_circuit


class TestStuckAtFault:
    def test_construction_and_str(self):
        fault = StuckAtFault("u1/A", SA1)
        assert str(fault) == "u1/A s-a-1"
        assert fault.instance_name == "u1"
        assert fault.pin_name == "A"
        assert not fault.is_port_fault

    def test_port_fault(self):
        fault = StuckAtFault("scan_enable", SA0)
        assert fault.is_port_fault
        assert fault.instance_name is None

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault("u1/A", 2)

    def test_parse_roundtrip(self):
        fault = StuckAtFault("core.alu_add_3/CI", SA0)
        assert StuckAtFault.parse(str(fault)) == fault

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            StuckAtFault.parse("not a fault")

    def test_ordering_is_deterministic(self):
        faults = [StuckAtFault("b/A", SA1), StuckAtFault("a/A", SA0)]
        assert sorted(faults)[0].site == "a/A"

    def test_site_resolution(self):
        netlist = build_and_or_circuit()
        pin_fault = StuckAtFault("and2_0/A", SA0)
        assert fault_site_pin(netlist, pin_fault).name == "and2_0/A"
        assert fault_site_net(netlist, pin_fault) == "a"
        port_fault = StuckAtFault("a", SA1)
        assert fault_site_pin(netlist, port_fault) is None
        assert fault_site_net(netlist, port_fault) == "a"


class TestFaultListGeneration:
    def test_universe_size(self):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist)
        # 3 instances with 3+3+2=8 pins -> 16 pin faults, 5 ports -> 10 port faults.
        assert len(faults) == 26

    def test_exclude_ports(self):
        netlist = build_and_or_circuit()
        assert len(generate_fault_list(netlist, include_ports=False)) == 16

    def test_unconnected_pins_skipped_by_default(self):
        netlist = build_and_or_circuit()
        netlist.disconnect(netlist.instance("and2_0").pin("A"))
        with_unconnected = generate_fault_list(netlist, include_unconnected=True,
                                               include_ports=False)
        without = generate_fault_list(netlist, include_ports=False)
        assert len(with_unconnected) == len(without) + 2


class TestFaultListOperations:
    def _fault_list(self):
        return generate_fault_list(build_and_or_circuit())

    def test_classification_and_queries(self):
        faults = self._fault_list()
        target = StuckAtFault("and2_0/A", SA0)
        faults.classify(target, FaultClass.UT, OnlineUntestableSource.SCAN)
        assert faults.get_class(target) is FaultClass.UT
        assert faults.get_source(target) is OnlineUntestableSource.SCAN
        assert target in faults.untestable()
        assert target in faults.with_class(FaultClass.UT)
        assert target in faults.with_source(OnlineUntestableSource.SCAN)

    def test_classify_unknown_fault_raises(self):
        faults = self._fault_list()
        with pytest.raises(KeyError):
            faults.classify(StuckAtFault("nope/Z", SA0), FaultClass.DT)

    def test_classify_many_counts_only_present(self):
        faults = self._fault_list()
        present = StuckAtFault("and2_0/A", SA0)
        absent = StuckAtFault("nope/Z", SA0)
        assert faults.classify_many([present, absent], FaultClass.DT) == 1

    def test_prune_returns_new_list(self):
        faults = self._fault_list()
        target = StuckAtFault("and2_0/A", SA0)
        pruned = faults.prune([target])
        assert len(pruned) == len(faults) - 1
        assert target in faults and target not in pruned

    def test_coverage_excludes_untestable(self):
        faults = self._fault_list()
        all_faults = faults.faults()
        faults.classify(all_faults[0], FaultClass.DT)
        faults.classify(all_faults[1], FaultClass.UT)
        assert faults.coverage(exclude_untestable=False) == pytest.approx(1 / 26)
        assert faults.coverage(exclude_untestable=True) == pytest.approx(1 / 25)

    def test_restrict_to_sites(self):
        faults = self._fault_list()
        subset = faults.restrict_to_sites(lambda s: s.startswith("and2_0"))
        assert len(subset) == 6
        assert all(f.site.startswith("and2_0") for f in subset)

    def test_group_by_prefix(self):
        faults = self._fault_list()
        groups = faults.group_by_prefix()
        assert groups["<ports>"] == 10

    def test_serialisation_roundtrip(self):
        faults = self._fault_list()
        target = StuckAtFault("and2_0/A", SA0)
        faults.classify(target, FaultClass.UT, OnlineUntestableSource.MEMORY_MAP)
        restored = FaultList.from_lines(faults.to_lines())
        assert len(restored) == len(faults)
        assert restored.get_class(target) is FaultClass.UT
        assert restored.get_source(target) is OnlineUntestableSource.MEMORY_MAP

    def test_summary_keys(self):
        summary = self._fault_list().summary()
        assert summary["total"] == 26
        assert summary["unclassified"] == 26


class TestFaultClasses:
    def test_untestable_predicate(self):
        assert FaultClass.UT.is_untestable
        assert FaultClass.UO.is_untestable
        assert not FaultClass.DT.is_untestable
        assert not FaultClass.AU.is_untestable

    def test_detected_predicate(self):
        assert FaultClass.DT.is_detected and FaultClass.PT.is_detected
        assert not FaultClass.UT.is_detected

    def test_table_row_mapping(self):
        assert OnlineUntestableSource.SCAN.table_row == "Scan"
        assert OnlineUntestableSource.DEBUG_CONTROL.table_row == "Debug"
        assert OnlineUntestableSource.DEBUG_OBSERVE.table_row == "Debug"
        assert OnlineUntestableSource.MEMORY_MAP.table_row == "Memory"
        assert OnlineUntestableSource.STRUCTURAL.table_row == "Original"


class TestCollapsing:
    def test_buffer_and_inverter_equivalences(self):
        from repro.netlist.builder import NetlistBuilder

        b = NetlistBuilder("m")
        a = b.add_input("a")
        y = b.add_output("y")
        n = b.buf(a)
        b.inv(n, output=y)
        netlist = b.build()
        faults = generate_fault_list(netlist, include_ports=False)
        classes = equivalence_classes(netlist, faults.faults())
        # buffer: in/out same polarity collapse; inverter flips polarity;
        # plus the stem/branch merge on the fanout-free intermediate net.
        sizes = sorted(len(members) for members in classes.values())
        assert sum(sizes) == len(faults)
        assert max(sizes) >= 3

    def test_and_gate_input_sa0_collapses_to_output_sa0(self):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist, include_ports=False)
        classes = equivalence_classes(netlist, faults.faults())
        rep_of = {}
        for representative, members in classes.items():
            for member in members:
                rep_of[member] = representative
        a_sa0 = StuckAtFault("and2_0/A", SA0)
        b_sa0 = StuckAtFault("and2_0/B", SA0)
        y_sa0 = StuckAtFault("and2_0/Y", SA0)
        assert rep_of[a_sa0] == rep_of[b_sa0] == rep_of[y_sa0]
        # stuck-at-1 faults on AND inputs are NOT equivalent to each other.
        a_sa1 = StuckAtFault("and2_0/A", SA1)
        b_sa1 = StuckAtFault("and2_0/B", SA1)
        assert rep_of[a_sa1] != rep_of[b_sa1]

    def test_collapse_reduces_fault_count(self, tiny_soc):
        faults = generate_fault_list(tiny_soc.cpu)
        collapsed = collapse_fault_list(tiny_soc.cpu, faults)
        assert 0 < len(collapsed) < len(faults)
        # Typical collapse ratios are between 40% and 80% of the original.
        ratio = len(collapsed) / len(faults)
        assert 0.3 < ratio < 0.9

    def test_collapse_preserves_classification_of_representatives(self):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist)
        for fault in faults.faults()[:4]:
            faults.classify(fault, FaultClass.DT)
        collapsed = collapse_fault_list(netlist, faults)
        for fault in collapsed.faults():
            assert collapsed.get_class(fault) == faults.get_class(fault)
