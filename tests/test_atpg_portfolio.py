"""ATPG portfolio tests: backend registry, seed determinism, cross-backend
byte-identity, escalation and dynamic pattern compaction.

The portfolio's contract is brutal on purpose: classification verdicts are
*backend- and seed-independent* wherever a search completes, and sharded
execution (any backend, any job count) must reproduce the serial reference
byte for byte.  These tests pin that contract on the four static-analysis
reference circuits for both fault models.
"""

from __future__ import annotations

import pytest

from tests.conftest import (build_and_or_circuit, build_constant_dff_circuit,
                            build_debug_cell_circuit,
                            build_mux_scan_cell_circuit,
                            build_small_adder_circuit)
from repro.atpg.engine import (AtpgEffort, StructuralUntestabilityEngine,
                               run_detection_phases)
from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.portfolio import (ATPG_BACKENDS, DEFAULT_ATPG_BACKEND,
                                  RestartPodem, atpg_backend_names,
                                  compact_patterns, resolve_atpg_backend)
from repro.faults.categories import FaultClass
from repro.faults.faultlist import generate_fault_list
from repro.simulation.parallel import ParallelPatternSimulator
from repro.simulation.sharded import sharded_classify

#: The four reference circuits the static-analysis layer is pinned on.
REFERENCE_CIRCUITS = (
    ("and_or", build_and_or_circuit),
    ("scan_cell", build_mux_scan_cell_circuit),
    ("debug_cell", build_debug_cell_circuit),
    ("constant_dff", build_constant_dff_circuit),
)

FAULT_MODELS = ("stuck_at", "transition")


def classify_essence(report):
    """The byte-comparable core of an UntestabilityReport: every per-fault
    verdict, keyed by the fault's stable text form."""
    return {str(f): c.value for f, c in report.classifications.items()}


def aborted(report):
    return set(report.with_class(FaultClass.AU))


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(atpg_backend_names()) >= {"podem", "podem-restart",
                                             "dalg"}

    def test_resolve_default(self):
        assert resolve_atpg_backend(None).name == DEFAULT_ATPG_BACKEND

    def test_resolve_unknown_spells_accepted_values(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_atpg_backend("fan")
        message = str(excinfo.value)
        assert "unknown ATPG backend" in message
        for name in atpg_backend_names():
            assert name in message

    def test_resolve_instance_passthrough(self):
        backend = ATPG_BACKENDS["dalg"]
        assert resolve_atpg_backend(backend) is backend

    def test_backends_describe_themselves(self):
        for name in atpg_backend_names():
            backend = ATPG_BACKENDS[name]
            assert backend.name == name
            assert backend.description


# --------------------------------------------------------------------- #
# seed determinism (podem-restart)
# --------------------------------------------------------------------- #
class TestRestartSeedDeterminism:
    def result_stream(self, netlist, faults, seed):
        engine = RestartPodem(netlist, backtrack_limit=24, seed=seed)
        return [engine.generate(f) for f in faults]

    def test_same_seed_identical_podem_result_stream(self):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        first = self.result_stream(netlist, faults, seed=11)
        second = self.result_stream(netlist, faults, seed=11)
        assert first == second

    def test_stream_is_batch_order_independent(self):
        """Per-fault determinism: a fault's result never depends on which
        other faults ran before it — the property that makes sharded
        classification byte-identical to serial."""
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        full = dict(zip(map(str, faults),
                        self.result_stream(netlist, faults, seed=3)))
        reversed_run = dict(zip(
            map(str, reversed(faults)),
            self.result_stream(netlist, list(reversed(faults)), seed=3)))
        assert full == reversed_run

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_same_seed_identical_across_shard_backends(self, backend):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        reference = sharded_classify(
            netlist, faults, effort=AtpgEffort.FULL, jobs=1,
            backend="serial", random_patterns=16, backtrack_limit=24,
            atpg_backend="podem-restart", atpg_seed=29)
        sharded = sharded_classify(
            netlist, faults, effort=AtpgEffort.FULL, jobs=2,
            backend=backend, random_patterns=16, backtrack_limit=24,
            atpg_backend="podem-restart", atpg_seed=29)
        assert classify_essence(sharded) == classify_essence(reference)
        assert sharded.patterns == reference.patterns
        assert sharded.compaction == reference.compaction


# --------------------------------------------------------------------- #
# cross-backend classification byte-identity
# --------------------------------------------------------------------- #
class TestCrossBackendIdentity:
    @pytest.mark.parametrize("model", FAULT_MODELS)
    @pytest.mark.parametrize("name,builder", REFERENCE_CIRCUITS)
    def test_backends_match_serial_podem_reference(self, name, builder,
                                                  model):
        netlist = builder()
        faults = generate_fault_list(netlist, model=model).faults()

        def run(atpg_backend, seed=None):
            engine = StructuralUntestabilityEngine(
                netlist, effort=AtpgEffort.FULL, random_patterns=16,
                backtrack_limit=64, atpg_backend=atpg_backend,
                atpg_seed=seed)
            return classify_essence(engine.classify(faults))

        reference = run("podem")
        assert run("podem-restart", seed=1) == reference
        assert run("podem-restart", seed=2013) == reference
        assert run("dalg") == reference

    def test_dalg_verdicts_match_podem_per_fault(self):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        podem = Podem(netlist, backtrack_limit=2000)
        dalg = ATPG_BACKENDS["dalg"].start(netlist, backtrack_limit=2000)
        for fault in faults:
            expected = podem.generate(fault)
            got = dalg.generate(fault)
            assert got.status == expected.status, str(fault)


# --------------------------------------------------------------------- #
# escalation (dalg backend turns AU into proven verdicts)
# --------------------------------------------------------------------- #
class TestEscalation:
    def test_dalg_escalation_resolves_aborts(self):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        # A starvation-level budget leaves PODEM with an abort frontier.
        starved = StructuralUntestabilityEngine(
            netlist, effort=AtpgEffort.FULL, random_patterns=0,
            backtrack_limit=1, static_prune=False, static_learning=False,
            atpg_backend="podem").classify(faults)
        escalated = StructuralUntestabilityEngine(
            netlist, effort=AtpgEffort.FULL, random_patterns=0,
            backtrack_limit=1, static_prune=False, static_learning=False,
            atpg_backend="dalg").classify(faults)
        assert len(aborted(escalated)) < len(aborted(starved))
        # Escalation only ever *proves*: it may move AU faults into the
        # untestable or detected buckets, never invent new aborts.
        assert aborted(escalated) <= aborted(starved)
        assert set(starved.untestable) <= set(escalated.untestable)

    def test_escalation_identical_serial_vs_sharded(self):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        kwargs = dict(effort=AtpgEffort.FULL, random_patterns=0,
                      backtrack_limit=1, static_prune=False,
                      static_learning=False, atpg_backend="dalg")
        serial = sharded_classify(netlist, faults, jobs=1, backend="serial",
                                  **kwargs)
        sharded = sharded_classify(netlist, faults, jobs=2, backend="thread",
                                   **kwargs)
        assert classify_essence(sharded) == classify_essence(serial)
        assert sharded.patterns == serial.patterns
        assert sharded.compaction == serial.compaction


# --------------------------------------------------------------------- #
# dynamic pattern compaction
# --------------------------------------------------------------------- #
class TestCompaction:
    def engine_patterns(self, netlist, faults):
        """The raw (fault, pattern, init_pattern) stream of the search
        phase, in canonical fault order."""
        classifications, _, _, patterns = run_detection_phases(
            netlist, faults, effort=AtpgEffort.FULL, random_patterns=0,
            backtrack_limit=2000, static_learning=False)
        order = {f: i for i, f in enumerate(faults)}
        patterns.sort(key=lambda entry: order[entry[0]])
        return patterns

    def detected_sets(self, netlist, faults, entries):
        """Fault set detected by a list of pattern dicts (report layout),
        0-filled at the unassigned controllable points exactly like the
        compaction simulator."""
        from repro.atpg.portfolio import _controllable_nets

        sim = ParallelPatternSimulator(netlist)
        controllable = _controllable_nets(netlist)
        detected = set()
        for entry in entries:
            pattern = entry["pattern"]
            init = entry.get("init_pattern")
            if init:
                cubes = {net: ((init.get(net, 0) & 1)
                               | ((pattern.get(net, 0) & 1) << 1))
                         for net in controllable}
                width = 2
            else:
                cubes = {net: pattern.get(net, 0) & 1
                         for net in controllable}
                width = 1
            detected |= sim.detected_faults(faults, cubes, width)
        return detected

    @pytest.mark.parametrize("model", FAULT_MODELS)
    def test_compacted_patterns_keep_detected_fault_set(self, model):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist, model=model).faults()
        raw = self.engine_patterns(netlist, faults)
        if not raw:
            pytest.skip("no ATPG patterns generated for this model")
        compacted, trace = compact_patterns(netlist, raw)
        # Compaction's contract is stated over the faults the search
        # credited: every one of them stays detected by the compacted set.
        credited = [f for f, _, _ in raw]
        original = self.detected_sets(
            netlist, credited,
            [{"pattern": p, "init_pattern": i} for _, p, i in raw])
        kept = self.detected_sets(netlist, credited, compacted)
        assert kept == original == set(credited)
        assert trace["generated"] == len(raw)
        assert trace["kept"] == len(compacted)
        assert (trace["kept"] + trace["dropped"] + trace["merged"]
                == trace["generated"])

    def test_compaction_reduces_pattern_count(self):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        raw = self.engine_patterns(netlist, faults)
        compacted, trace = compact_patterns(netlist, raw)
        assert 0 < len(compacted) < len(raw)
        # Re-ordered so coverage rises fastest: kept entries are sorted by
        # detection count, descending.
        counts = [entry["detects"] for entry in compacted]
        assert counts == sorted(counts, reverse=True)

    def test_report_records_compaction_trace(self):
        netlist = build_small_adder_circuit()
        faults = generate_fault_list(netlist).faults()
        report = StructuralUntestabilityEngine(
            netlist, effort=AtpgEffort.FULL, random_patterns=0,
            backtrack_limit=2000).classify(faults)
        assert report.compaction["generated"] >= report.compaction["kept"]
        assert len(report.patterns) == report.compaction["kept"]
        for entry in report.patterns:
            assert entry["faults"]
            assert entry["detects"] == len(entry["faults"])


# --------------------------------------------------------------------- #
# restart internals
# --------------------------------------------------------------------- #
class TestRestartInternals:
    def test_budget_escalates_across_attempts(self):
        netlist = build_small_adder_circuit()
        engine = RestartPodem(netlist, backtrack_limit=2000, seed=5)
        faults = generate_fault_list(netlist).faults()
        results = [engine.generate(f) for f in faults]
        assert all(r.status is not PodemStatus.ABORTED for r in results)
        # The wrapper restores the configured budget after every fault.
        assert engine.backtrack_limit == 2000
