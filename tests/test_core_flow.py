"""Tests for the end-to-end identification flow, the Fig. 1 classification and
the Table-I style reporting."""

import pytest

from repro.atpg.engine import AtpgEffort
from repro.core.classification import build_fault_universe
from repro.core.flow import FlowConfig, OnlineUntestableFlow
from repro.core.report import render_source_details, render_summary_table
from repro.faults.categories import FaultClass, OnlineUntestableSource
from repro.faults.faultlist import generate_fault_list


class TestFlowOnTinyCore:
    def test_sources_are_disjoint_and_sum_to_total(self, tiny_flow_report):
        report = tiny_flow_report
        seen = set()
        total = 0
        for summary in report.sources:
            assert not (summary.attributed & seen)
            seen |= summary.attributed
            total += summary.count
        assert total == report.total_online_untestable

    def test_attributed_faults_exclude_baseline(self, tiny_flow_report):
        report = tiny_flow_report
        for summary in report.sources:
            assert not (summary.attributed & report.baseline_untestable)

    def test_all_four_sources_present(self, tiny_flow_report):
        sources = {summary.source for summary in tiny_flow_report.sources}
        assert sources == {
            OnlineUntestableSource.SCAN,
            OnlineUntestableSource.DEBUG_CONTROL,
            OnlineUntestableSource.DEBUG_OBSERVE,
            OnlineUntestableSource.MEMORY_MAP,
        }
        assert all(s.count > 0 for s in tiny_flow_report.sources)

    def test_shape_of_contributions(self, tiny_flow_report):
        """Every source contributes a non-trivial but bounded share of the
        universe (the Table-I proportions themselves are asserted on the
        full-size configuration by the benchmarks)."""
        report = tiny_flow_report
        for summary in report.sources:
            assert 0 < summary.count < 0.5 * report.total_faults
        fraction = report.total_online_untestable / report.total_faults
        assert 0.02 < fraction < 0.5

    def test_table_rows_layout(self, tiny_flow_report):
        rows = tiny_flow_report.table_rows()
        assert [row["source"] for row in rows] == [
            "Original", "Scan", "Debug", "Memory", "TOTAL"]
        debug_row = rows[2]
        assert "+" in debug_row["detail"]
        total_row = rows[-1]
        assert total_row["count"] == tiny_flow_report.total_online_untestable

    def test_rendered_table(self, tiny_flow_report):
        text = render_summary_table(tiny_flow_report)
        assert "On-line functionally untestable faults" in text
        assert "Scan" in text and "TOTAL" in text and "%" in text

    def test_rendered_details(self, tiny_flow_report):
        text = render_source_details(tiny_flow_report, max_faults_per_source=3)
        assert "scan" in text
        assert "s-a-" in text
        assert "TOTAL" in text

    def test_runtimes_recorded(self, tiny_flow_report):
        for phase in ("fault_list", "baseline", "scan", "debug_control",
                      "debug_observe", "memory_map"):
            assert phase in tiny_flow_report.runtimes

    def test_apply_to_fault_list(self, tiny_soc, tiny_flow_report):
        fault_list = generate_fault_list(tiny_soc.cpu)
        pruned = tiny_flow_report.apply_to_fault_list(fault_list)
        assert len(pruned) == len(fault_list) - tiny_flow_report.total_online_untestable
        classified = fault_list.with_source(OnlineUntestableSource.SCAN)
        assert len(classified) == tiny_flow_report.source_count(OnlineUntestableSource.SCAN)

    def test_flow_is_deterministic(self, tiny_soc, tiny_flow_report):
        second = OnlineUntestableFlow(tiny_soc).run()
        assert second.online_untestable == tiny_flow_report.online_untestable
        assert [s.count for s in second.sources] == [
            s.count for s in tiny_flow_report.sources]


class TestFlowConfiguration:
    def test_disable_individual_sources(self, tiny_soc):
        config = FlowConfig(run_scan=False, run_memory_map=False)
        report = OnlineUntestableFlow(tiny_soc, config).run()
        sources = {s.source for s in report.sources}
        assert OnlineUntestableSource.SCAN not in sources
        assert OnlineUntestableSource.MEMORY_MAP not in sources
        assert OnlineUntestableSource.DEBUG_CONTROL in sources

    def test_netlist_target_with_explicit_memory_map(self, tiny_soc):
        report = OnlineUntestableFlow(tiny_soc.cpu,
                                      memory_map=tiny_soc.memory_map).run()
        assert report.source_count(OnlineUntestableSource.MEMORY_MAP) > 0

    def test_restricted_fault_universe(self, tiny_soc):
        universe = [f for f in generate_fault_list(tiny_soc.cpu).faults()
                    if not f.is_port_fault][:2000]
        report = OnlineUntestableFlow(tiny_soc).run(faults=universe)
        assert report.total_faults == len(universe)
        assert report.online_untestable <= set(universe)

    def test_fig6_ablation_knob(self, tiny_soc):
        full = OnlineUntestableFlow(
            tiny_soc, FlowConfig(run_scan=False, run_debug_control=False,
                                 run_debug_observe=False)).run()
        stop_at_ff = OnlineUntestableFlow(
            tiny_soc, FlowConfig(run_scan=False, run_debug_control=False,
                                 run_debug_observe=False,
                                 tie_flop_outputs=False)).run()
        assert (stop_at_ff.source_count(OnlineUntestableSource.MEMORY_MAP)
                <= full.source_count(OnlineUntestableSource.MEMORY_MAP))


class TestFaultUniverseClassification:
    def test_fig1_containment(self, tiny_soc, tiny_flow_report):
        universe = build_fault_universe(
            tiny_soc.cpu,
            functional_constraints={"scan_enable": 0},
            online_untestable=tiny_flow_report.online_untestable)
        assert universe.containment_holds()
        counts = universe.counts()
        assert counts["all"] == tiny_flow_report.total_faults
        assert counts["structurally_untestable"] <= counts["functionally_untestable"]
        assert counts["functionally_untestable"] <= counts["online_functionally_untestable"]
        assert (counts["online_functionally_untestable"] + counts["online_detectable"]
                == counts["all"])

    def test_online_detectable_complement(self, tiny_soc, tiny_flow_report):
        universe = build_fault_universe(
            tiny_soc.cpu, online_untestable=tiny_flow_report.online_untestable)
        assert universe.online_detectable.isdisjoint(
            universe.online_functionally_untestable)
