"""RunOptions bundle tests: eager normalization, merging, the legacy-keyword
deprecation shim and the Session surface that consumes it.

The acceptance bar for the options redesign: every pre-RunOptions keyword
spelling keeps working (with a once-per-process DeprecationWarning, never
breakage), an explicit ``options=`` bundle wins over legacy spellings, and
bad values fail at the call site with errors that spell the accepted
values.
"""

from __future__ import annotations

import warnings

import pytest

from tests.conftest import build_and_or_circuit
from repro.api import (RunOptions, Session, fold_legacy_kwargs,
                       reset_legacy_keyword_warnings, resolve_effort)
from repro.atpg.engine import AtpgEffort
from repro.atpg.portfolio import ATPG_BACKENDS


@pytest.fixture(autouse=True)
def rearm_warnings():
    """Each test sees the once-per-process warnings fresh."""
    reset_legacy_keyword_warnings()
    yield
    reset_legacy_keyword_warnings()


# --------------------------------------------------------------------- #
# normalization
# --------------------------------------------------------------------- #
class TestNormalization:
    def test_fields_normalize_eagerly(self):
        options = RunOptions(effort="FULL", fault_model="transition",
                             jobs="4", shard_backend="thread",
                             static_prune=1, static_learning=0,
                             atpg_backend=ATPG_BACKENDS["dalg"],
                             atpg_seed="7")
        assert options.effort is AtpgEffort.FULL
        assert options.fault_model == "transition"
        assert options.jobs == 4
        assert options.shard_backend == "thread"
        assert options.static_prune is True
        assert options.static_learning is False
        assert options.atpg_backend == "dalg"
        assert options.atpg_seed == 7

    def test_unset_fields_stay_none(self):
        options = RunOptions()
        for name in ("effort", "fault_model", "jobs", "shard_backend",
                     "kernel", "static_prune", "static_learning", "store",
                     "atpg_backend", "atpg_seed"):
            assert getattr(options, name) is None

    def test_unknown_effort_spells_accepted_values(self):
        with pytest.raises(ValueError) as excinfo:
            RunOptions(effort="heroic")
        message = str(excinfo.value)
        for value in ("tie", "random", "full"):
            assert value in message

    def test_resolve_effort_exported_from_api(self):
        assert resolve_effort("tie") is AtpgEffort.TIE
        assert resolve_effort(None, AtpgEffort.FULL) is AtpgEffort.FULL

    def test_engine_reexport_still_works(self):
        from repro.atpg.engine import resolve_effort as engine_resolve

        assert engine_resolve("random") is AtpgEffort.RANDOM

    def test_unknown_atpg_backend_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown ATPG backend"):
            RunOptions(atpg_backend="fan")

    def test_frozen(self):
        options = RunOptions(jobs=2)
        with pytest.raises(AttributeError):
            options.jobs = 3


# --------------------------------------------------------------------- #
# merging and pickle-boundary reduction
# --------------------------------------------------------------------- #
class TestMerging:
    def test_other_set_fields_win(self):
        base = RunOptions(effort="tie", jobs=2, atpg_seed=1)
        merged = base.merged_with(RunOptions(jobs=8, atpg_backend="dalg"))
        assert merged.effort is AtpgEffort.TIE
        assert merged.jobs == 8
        assert merged.atpg_seed == 1
        assert merged.atpg_backend == "dalg"

    def test_merge_with_none_is_identity(self):
        base = RunOptions(jobs=2)
        assert base.merged_with(None) is base

    def test_with_store_spec_reduces_live_store(self, tmp_path):
        from repro.store import resolve_store

        store = resolve_store(str(tmp_path))
        options = RunOptions(store=store, jobs=2)
        spec = options.with_store_spec()
        assert isinstance(spec.store, str)
        assert spec.jobs == 2
        # Strings and None pass through untouched.
        assert RunOptions(store="x").with_store_spec().store == "x"
        assert RunOptions().with_store_spec().store is None


# --------------------------------------------------------------------- #
# the deprecation shim
# --------------------------------------------------------------------- #
class TestLegacyKeywordShim:
    def test_legacy_keyword_warns_once_per_process(self):
        with pytest.warns(DeprecationWarning, match="'jobs' is deprecated"):
            fold_legacy_kwargs("Session", jobs=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            options = fold_legacy_kwargs("Session", jobs=4)
        assert options.jobs == 4

    def test_none_values_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            options = fold_legacy_kwargs("Session", jobs=None, effort=None)
        assert options == RunOptions()

    def test_explicit_options_bundle_wins(self):
        options = fold_legacy_kwargs(
            "Session", RunOptions(jobs=8), warn=False, jobs=2, effort="tie")
        assert options.jobs == 8
        assert options.effort is AtpgEffort.TIE

    def test_internal_callers_can_silence(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fold_legacy_kwargs("Session", warn=False, jobs=2)


# --------------------------------------------------------------------- #
# the Session surface
# --------------------------------------------------------------------- #
class TestSessionSurface:
    def test_every_legacy_session_keyword_still_works(self):
        with pytest.warns(DeprecationWarning):
            session = Session(effort="tie", jobs=2, shard_backend="thread",
                              kernel="int", fault_model="stuck_at",
                              static_prune=True, static_learning=True)
        assert session.effort is AtpgEffort.TIE
        assert session.jobs == 2
        assert session.shard_backend == "thread"
        assert session.kernel == "int"
        assert session.fault_model == "stuck_at"
        assert session.static_prune is True
        assert session.static_learning is True

    def test_options_bundle_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = Session(options=RunOptions(
                jobs=3, atpg_backend="dalg", atpg_seed=7))
        assert session.jobs == 3
        assert session.atpg_backend == "dalg"
        assert session.atpg_seed == 7

    def test_session_attributes_are_read_only_views(self):
        session = Session(options=RunOptions(jobs=2))
        with pytest.raises(AttributeError):
            session.jobs = 4

    def test_legacy_analyze_keyword_still_works(self):
        session = Session()
        with pytest.warns(DeprecationWarning, match="Session.analyze"):
            report = session.analyze(build_and_or_circuit(), effort="tie")
        assert report is not None

    def test_analyze_rejects_per_call_store(self, tmp_path):
        session = Session()
        with pytest.raises(ValueError, match="session-level"):
            session.analyze(build_and_or_circuit(),
                            options=RunOptions(store=str(tmp_path)))
