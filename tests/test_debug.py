"""Unit tests for the debug package: interface spec, JTAG TAP, Nexus unit."""

import pytest

from repro.debug.interface import DebugInterface, discover_debug_interface, find_quiescent_inputs
from repro.debug.jtag import build_jtag_tap
from repro.debug.nexus import build_nexus_unit
from repro.netlist.validate import check_netlist
from repro.simulation.sequential import SequentialSimulator
from repro.soc.debug_logic import DEBUG_CONTROL_PORTS


class TestDebugInterface:
    def test_counts(self):
        spec = DebugInterface(control_inputs={"a": 0, "b": 1},
                              observation_outputs=["x", "y", "z"])
        assert spec.control_count == 2
        assert spec.observation_count == 3

    def test_validate_against_netlist(self, debug_cell_circuit):
        spec = discover_debug_interface(debug_cell_circuit)
        assert spec is not None
        assert spec.validate_against(debug_cell_circuit) == []
        bad = DebugInterface(control_inputs={"missing": 0, "do": 0},
                             observation_outputs=["fi"])
        problems = bad.validate_against(debug_cell_circuit)
        assert len(problems) == 3

    def test_discover_returns_none_without_annotation(self, and_or_circuit):
        assert discover_debug_interface(and_or_circuit) is None

    def test_discover_on_generated_core(self, tiny_soc):
        spec = discover_debug_interface(tiny_soc.cpu)
        assert spec is not None
        assert spec.control_count == len(DEBUG_CONTROL_PORTS) == 17
        assert spec.observation_count == 2 * tiny_soc.config.cpu.data_width
        assert spec.validate_against(tiny_soc.cpu) == []

    def test_find_quiescent_inputs(self, and_or_circuit):
        activity = {"a": 10, "b": 0, "c": 3}
        assert find_quiescent_inputs(and_or_circuit, activity) == ["b"]

    def test_find_quiescent_excludes_clock_and_scan(self, tiny_soc):
        activity = {p: 0 for p in tiny_soc.cpu.input_ports()}
        quiescent = find_quiescent_inputs(tiny_soc.cpu, activity)
        assert "clk" not in quiescent
        assert "rst_n" not in quiescent
        assert "scan_enable" not in quiescent
        assert "scan_in0" not in quiescent
        assert "jtag_tck" in quiescent


class TestJtagTap:
    def test_structure(self):
        tap = build_jtag_tap(ir_length=4, dr_length=8)
        assert set(tap.input_ports()) == {"tck", "tms", "tdi", "trstn"}
        assert "tdo" in tap.output_ports()
        assert check_netlist(tap) == []
        assert sum(1 for i in tap.instances.values() if i.is_sequential) == 4 + 4 + 8

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            build_jtag_tap(ir_length=0)

    def test_fsm_reaches_shift_dr(self):
        """Drive the standard TMS sequence and check the FSM state encoding."""
        tap = build_jtag_tap()
        sim = SequentialSimulator(tap)
        # From TEST_LOGIC_RESET (state 0 after trstn=0), the TMS sequence
        # 0, 1, 0, 0 leads to SHIFT_DR (code 4).
        sim.step({"tck": 1, "tms": 0, "tdi": 0, "trstn": 0})  # held in reset
        # The state output observed in a cycle reflects the state *before*
        # that cycle's TMS is captured, so apply one extra idle TMS=0 cycle.
        for tms in (0, 1, 0, 0, 0):
            values = sim.step({"tck": 1, "tms": tms, "tdi": 0, "trstn": 1})
        state = sum(values[f"tap_state[{i}]"] << i for i in range(4))
        assert state == 4  # SHIFT_DR

    def test_annotation_present(self):
        tap = build_jtag_tap()
        spec = discover_debug_interface(tap)
        assert spec is not None and spec.control_count == 4


class TestNexusUnit:
    def test_ports_cover_cpu_debug_inputs(self):
        nexus = build_nexus_unit(observation_width=8, command_length=16)
        for port in DEBUG_CONTROL_PORTS:
            assert f"cpu_{port}" in nexus.output_ports()
        assert "nex_tdo" in nexus.output_ports()
        assert check_netlist(nexus) == []

    def test_command_register_length(self):
        nexus = build_nexus_unit(observation_width=4, command_length=12)
        cmd_flops = [i for i in nexus.instances if i.startswith("cmd_ff")]
        assert len(cmd_flops) == 12

    def test_disabled_unit_drives_constant_outputs(self):
        """With nex_enable=0 every decoded CPU control strobe stays at 0."""
        nexus = build_nexus_unit(observation_width=4, command_length=8)
        sim = SequentialSimulator(nexus)
        inputs = {p: 0 for p in nexus.input_ports()}
        inputs.update({"nex_tdi": 1, "nex_tck": 1})
        for _ in range(5):
            values = sim.step(inputs)
        for port in ("cpu_dbg_enable", "cpu_dbg_halt_req", "cpu_dbg_reg_we"):
            assert values[port] == 0
