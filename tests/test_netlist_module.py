"""Unit tests for the netlist graph (Pin / Net / Instance / Netlist)."""

import pytest

from repro.netlist.module import INPUT, OUTPUT, Netlist, merge_netlists


def make_simple():
    netlist = Netlist("simple")
    netlist.add_port("a", INPUT)
    netlist.add_port("b", INPUT)
    netlist.add_port("y", OUTPUT)
    netlist.add_instance("g1", "AND2", {"A": "a", "B": "b", "Y": "n1"})
    netlist.add_instance("g2", "INV", {"A": "n1", "Y": "y"})
    return netlist


class TestConstruction:
    def test_ports_and_nets_created(self):
        netlist = make_simple()
        assert set(netlist.input_ports()) == {"a", "b"}
        assert netlist.output_ports() == ["y"]
        assert netlist.net("a").is_input_port
        assert netlist.net("y").is_output_port
        assert "n1" in netlist.nets

    def test_duplicate_port_rejected(self):
        netlist = Netlist("m")
        netlist.add_port("a", INPUT)
        with pytest.raises(ValueError):
            netlist.add_port("a", OUTPUT)

    def test_invalid_port_direction_rejected(self):
        with pytest.raises(ValueError):
            Netlist("m").add_port("a", "bidir")

    def test_duplicate_instance_rejected(self):
        netlist = make_simple()
        with pytest.raises(ValueError):
            netlist.add_instance("g1", "INV", {"A": "a", "Y": "n9"})

    def test_unknown_cell_rejected(self):
        with pytest.raises(KeyError):
            make_simple().add_instance("g9", "FOO", {})

    def test_unknown_pin_rejected(self):
        with pytest.raises(KeyError):
            make_simple().add_instance("g9", "INV", {"Z": "a"})

    def test_double_driver_rejected(self):
        netlist = make_simple()
        with pytest.raises(ValueError):
            netlist.add_instance("g3", "INV", {"A": "a", "Y": "n1"})

    def test_driver_and_loads_bookkeeping(self):
        netlist = make_simple()
        n1 = netlist.net("n1")
        assert n1.driver.name == "g1/Y"
        assert [p.name for p in n1.loads] == ["g2/A"]
        assert n1.has_driver

    def test_disconnect_pin(self):
        netlist = make_simple()
        pin = netlist.instance("g2").pin("A")
        netlist.disconnect(pin)
        assert pin.net is None
        assert netlist.net("n1").loads == []

    def test_remove_instance(self):
        netlist = make_simple()
        netlist.remove_instance("g2")
        assert "g2" not in netlist.instances
        assert netlist.net("y").driver is None


class TestQueries:
    def test_pin_by_name_roundtrip(self):
        netlist = make_simple()
        pin = netlist.pin_by_name("g1/A")
        assert pin.instance.name == "g1" and pin.port == "A"

    def test_pin_by_name_rejects_port_names(self):
        with pytest.raises(ValueError):
            make_simple().pin_by_name("a")

    def test_missing_net_and_instance_raise(self):
        netlist = make_simple()
        with pytest.raises(KeyError):
            netlist.net("nope")
        with pytest.raises(KeyError):
            netlist.instance("nope")

    def test_stats(self):
        stats = make_simple().stats()
        assert stats["instances"] == 2
        assert stats["sequential"] == 0
        assert stats["ports"] == 3
        assert stats["pins"] == 5

    def test_sequential_vs_combinational_split(self):
        netlist = make_simple()
        netlist.add_port("clk", INPUT)
        netlist.add_instance("ff", "DFF", {"D": "n1", "CK": "clk", "Q": "q"})
        assert [i.name for i in netlist.sequential_instances()] == ["ff"]
        assert len(netlist.combinational_instances()) == 2

    def test_observable_output_ports_respects_unobservable(self):
        netlist = make_simple()
        netlist.unobservable_ports.add("y")
        assert netlist.observable_output_ports() == []


class TestClone:
    def test_clone_is_structurally_identical(self):
        netlist = make_simple()
        netlist.net("n1").tied = 1
        netlist.unobservable_ports.add("y")
        clone = netlist.clone("copy")
        assert clone.name == "copy"
        assert clone.stats() == netlist.stats()
        assert clone.net("n1").tied == 1
        assert clone.unobservable_ports == {"y"}

    def test_clone_is_independent(self):
        netlist = make_simple()
        clone = netlist.clone()
        clone.net("n1").tied = 0
        clone.remove_instance("g2")
        assert netlist.net("n1").tied is None
        assert "g2" in netlist.instances


class TestMerge:
    def test_merge_prefixes_names(self):
        merged = merge_netlists("top", [("u0", make_simple()), ("u1", make_simple())])
        assert "u0.g1" in merged.instances
        assert "u1.g1" in merged.instances
        assert "u0.n1" in merged.nets
        assert len(merged.instances) == 4
