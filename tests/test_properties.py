"""Property-based tests (hypothesis) over randomly generated circuits.

A random-circuit strategy builds small combinational netlists gate by gate;
the properties then cross-check independent implementations against each
other: Verilog round-trip vs. simulation, serial vs. pattern-parallel fault
simulation, PODEM verdicts vs. exhaustive fault simulation, tie-analysis
soundness, and fault-collapsing equivalence.
"""

from __future__ import annotations

import itertools
from typing import List

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.tie_analysis import TieAnalysis
from repro.faults.collapse import equivalence_classes
from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.netlist.module import Netlist
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.parallel import ParallelPatternSimulator
from repro.simulation.simulator import CombinationalSimulator

from tests.conftest import all_input_patterns

_GATE_CHOICES = ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2", "INV", "BUF",
                 "MUX2", "AO21", "OAI21"]

N_INPUTS = 4


@st.composite
def random_circuits(draw, max_gates: int = 12) -> Netlist:
    """Build a random combinational netlist over N_INPUTS primary inputs."""
    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    b = NetlistBuilder("random_circuit")
    nets: List[str] = [b.add_input(f"i{k}") for k in range(N_INPUTS)]
    for index in range(n_gates):
        cell = draw(st.sampled_from(_GATE_CHOICES))
        arity = len(b.netlist.library.get(cell).inputs)
        sources = [nets[draw(st.integers(min_value=0, max_value=len(nets) - 1))]
                   for _ in range(arity)]
        nets.append(b.gate(cell, *sources, name=f"g{index}"))
    # Observe the last few gate outputs (and always the final one).
    n_outputs = draw(st.integers(min_value=1, max_value=min(3, n_gates)))
    for k, net in enumerate(nets[-n_outputs:]):
        b.buf(net, output=b.add_output(f"o{k}"), name=f"obuf{k}")
    return b.build()


def _input_names() -> List[str]:
    return [f"i{k}" for k in range(N_INPUTS)]


def _pack_patterns(patterns):
    words = {name: 0 for name in _input_names()}
    for index, pattern in enumerate(patterns):
        for name, value in pattern.items():
            if value:
                words[name] |= 1 << index
    return words


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits())
def test_verilog_round_trip_preserves_behaviour(netlist):
    parsed = parse_verilog(write_verilog(netlist))
    sim_a = CombinationalSimulator(netlist)
    sim_b = CombinationalSimulator(parsed)
    outputs = netlist.output_ports()
    for pattern in all_input_patterns(_input_names()):
        va = sim_a.evaluate(pattern)
        vb = sim_b.evaluate(pattern)
        for port in outputs:
            assert va[port] == vb[port]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits())
def test_serial_and_parallel_fault_simulation_agree(netlist):
    faults = generate_fault_list(netlist, include_ports=False).faults()
    patterns = list(all_input_patterns(_input_names()))
    serial = FaultSimulator(netlist).run(faults, patterns, drop_detected=True)
    parallel = ParallelPatternSimulator(netlist).detected_faults(
        faults, _pack_patterns(patterns), len(patterns))
    assert serial.detected == parallel


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits(max_gates=8))
def test_podem_agrees_with_exhaustive_fault_simulation(netlist):
    """PODEM must call a fault DETECTED exactly when some input pattern
    detects it, and UNTESTABLE otherwise (no aborts on circuits this small)."""
    faults = generate_fault_list(netlist, include_ports=False).faults()
    patterns = list(all_input_patterns(_input_names()))
    simulator = FaultSimulator(netlist)
    podem = Podem(netlist, backtrack_limit=10_000)
    for fault in faults:
        detectable = any(simulator.detects(fault, p) for p in patterns)
        result = podem.generate(fault)
        assert result.status is not PodemStatus.ABORTED
        assert (result.status is PodemStatus.DETECTED) == detectable, str(fault)
        if result.status is PodemStatus.DETECTED:
            pattern = {name: result.pattern.get(name, 0) for name in _input_names()}
            assert simulator.detects(fault, pattern), str(fault)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits(max_gates=8),
       st.integers(min_value=0, max_value=N_INPUTS - 1),
       st.integers(min_value=0, max_value=1))
def test_tie_analysis_is_sound(netlist, tied_input, tie_value):
    """Every fault the tie analysis declares untestable after tieing one input
    must be undetectable by exhaustive simulation of the remaining inputs."""
    netlist.net(f"i{tied_input}").tied = tie_value
    faults = generate_fault_list(netlist, include_ports=False).faults()
    analysis = TieAnalysis(netlist)
    result = analysis.run(faults)

    free_inputs = [name for name in _input_names() if name != f"i{tied_input}"]
    simulator = FaultSimulator(netlist)
    patterns = []
    for pattern in all_input_patterns(free_inputs):
        full = dict(pattern)
        full[f"i{tied_input}"] = tie_value
        patterns.append(full)
    for fault in result.untestable:
        assert not any(simulator.detects(fault, p) for p in patterns), str(fault)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits(max_gates=8))
def test_collapse_classes_share_detection_sets(netlist):
    """Faults placed in the same structural equivalence class must be detected
    by exactly the same set of input patterns."""
    faults = generate_fault_list(netlist, include_ports=False).faults()
    classes = equivalence_classes(netlist, faults)
    patterns = list(all_input_patterns(_input_names()))
    simulator = FaultSimulator(netlist)

    def detection_signature(fault):
        return tuple(simulator.detects(fault, p) for p in patterns)

    for members in classes.values():
        if len(members) < 2:
            continue
        signatures = {detection_signature(fault) for fault in members}
        assert len(signatures) == 1, members


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits())
def test_bit_parallel_matches_three_valued_on_specified_patterns(netlist):
    """On fully-specified patterns the two-valued bit-parallel simulation
    must agree with the three-valued CombinationalSimulator on every net."""
    patterns = list(all_input_patterns(_input_names()))
    words = ParallelPatternSimulator(netlist).good_simulation(
        _pack_patterns(patterns), len(patterns))
    sim = CombinationalSimulator(netlist)
    for index, pattern in enumerate(patterns):
        values = sim.evaluate(pattern, state=pattern)
        for net, value in values.items():
            assert value in (LOGIC_0, LOGIC_1), net  # fully specified
            assert (words[net] >> index) & 1 == value, (net, index)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits())
def test_compiled_simulator_matches_legacy_including_x(netlist):
    """The compiled two-bit-plane evaluator must agree with the legacy
    object-graph simulator on every net, X inputs included."""
    from repro.simulation.legacy import LegacyCombinationalSimulator

    compiled_sim = CombinationalSimulator(netlist)
    legacy_sim = LegacyCombinationalSimulator(netlist)
    names = _input_names()
    # Definite corners plus patterns with X on a rotating subset of inputs.
    patterns = list(all_input_patterns(names))
    for start in range(len(names)):
        pattern = {name: 2 if (k + start) % 2 else (k % 2)
                   for k, name in enumerate(names)}
        patterns.append(pattern)
    patterns.append({name: 2 for name in names})
    for pattern in patterns:
        assert compiled_sim.evaluate(pattern) == legacy_sim.evaluate(pattern)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits())
def test_compiled_and_legacy_fault_simulation_verdicts_agree(netlist):
    """The compiled (batched, cone-limited) fault simulator must reproduce
    the legacy serial simulator's verdicts exactly — detected set, first
    detecting pattern, and per-pattern detects()."""
    from repro.simulation.legacy import LegacyFaultSimulator

    faults = generate_fault_list(netlist, include_ports=False).faults()
    patterns = list(all_input_patterns(_input_names()))
    compiled_result = FaultSimulator(netlist).run(faults, patterns)
    legacy_result = LegacyFaultSimulator(netlist).run(faults, patterns,
                                                      drop_detected=True)
    assert compiled_result.detected == legacy_result.detected
    assert compiled_result.undetected == legacy_result.undetected
    assert compiled_result.detecting_pattern == legacy_result.detecting_pattern

    compiled_sim = FaultSimulator(netlist)
    legacy_sim = LegacyFaultSimulator(netlist)
    for fault in faults[:8]:
        for pattern in patterns[:4]:
            assert (compiled_sim.detects(fault, pattern)
                    == legacy_sim.detects(fault, pattern)), str(fault)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_circuits())
def test_clone_preserves_behaviour_and_fault_universe(netlist):
    clone = netlist.clone("clone")
    assert clone.stats() == netlist.stats()
    assert (set(generate_fault_list(clone).faults())
            == set(generate_fault_list(netlist).faults()))
    sim_a = CombinationalSimulator(netlist)
    sim_b = CombinationalSimulator(clone)
    for pattern in itertools.islice(all_input_patterns(_input_names()), 8):
        va = sim_a.evaluate(pattern)
        vb = sim_b.evaluate(pattern)
        for port in netlist.output_ports():
            assert va[port] == vb[port]
