"""The sharded fault-population engine: partitioning, frontier, identity.

The contract under test is strict: for every backend and every fault-
dropping mode, the sharded engines must reproduce the serial reference
*exactly* — detected/undetected sets, recorded detecting patterns,
classification dicts and graded coverage are compared for equality, not
similarity.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.atpg.engine import StructuralUntestabilityEngine
from repro.faults.faultlist import generate_fault_list
from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.netlist.compiled import get_compiled, netlist_signature
from repro.sbst.grading import FaultGrader
from repro.sbst.monitor import ToggleMonitor
from repro.sbst.program_gen import generate_sbst_suite
from repro.simulation.fault_sim import FaultSimulator, resolve_site
from repro.simulation.sharded import (DetectionFrontier, ShardedFaultSimulator,
                                      cone_representative, partition_faults,
                                      resolve_backend, resolve_jobs,
                                      sharded_classify)

BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def tiny_cpu(tiny_soc):
    return tiny_soc.cpu


@pytest.fixture(scope="module")
def tiny_faults(tiny_cpu):
    return generate_fault_list(tiny_cpu).faults()


@pytest.fixture(scope="module")
def tiny_patterns(tiny_cpu):
    """Deterministic random mission patterns over the controllable nets."""
    rng = random.Random(2013)
    sim = FaultSimulator(tiny_cpu)
    controllable = [p for p in tiny_cpu.input_ports()
                    if tiny_cpu.net(p).tied is None]
    controllable += sim.sim.state_nets
    return [{net: (LOGIC_1 if rng.getrandbits(1) else LOGIC_0)
             for net in controllable}
            for _ in range(130)]


# --------------------------------------------------------------------- #
# knob resolution
# --------------------------------------------------------------------- #
class TestKnobs:
    def test_resolve_jobs(self):
        import os
        cpus = os.cpu_count() or 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(None) >= 1
        # Oversubscription is capped at the machine (extra workers only
        # contend); cap=False returns the raw request for routing checks.
        assert resolve_jobs(4, cap=False) == 4
        assert resolve_jobs(4) == min(4, cpus)
        assert resolve_jobs(cpus + 1) == cpus
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            resolve_jobs(0)

    def test_resolve_jobs_warns_once_on_oversubscription(self):
        import os
        import warnings
        from repro.simulation.sharded import (
            _reset_oversubscription_warning)
        cpus = os.cpu_count() or 1
        _reset_oversubscription_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_jobs(cpus + 3)
            resolve_jobs(cpus + 3)
        oversub = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)
                   and "exceeds os.cpu_count()" in str(w.message)]
        assert len(oversub) == 1
        _reset_oversubscription_warning()

    def test_resolve_backend(self):
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 4) in ("process", "thread")
        assert resolve_backend("THREAD", 2) == "thread"
        with pytest.raises(ValueError, match="unknown shard backend"):
            resolve_backend("cluster", 2)


# --------------------------------------------------------------------- #
# cone-aware partitioning
# --------------------------------------------------------------------- #
class TestPartitioning:
    def test_partition_is_exact_and_deterministic(self, tiny_cpu,
                                                  tiny_faults):
        first = partition_faults(tiny_cpu, tiny_faults, 8)
        second = partition_faults(tiny_cpu, tiny_faults, 8)
        assert [s.faults for s in first] == [s.faults for s in second]
        assert [s.index for s in first] == list(range(len(first)))
        scattered = [f for shard in first for f in shard.faults]
        assert sorted(map(str, scattered)) == sorted(map(str, tiny_faults))
        assert len(scattered) == len(tiny_faults)

    def test_faults_sharing_a_cone_share_a_shard(self, tiny_cpu,
                                                 tiny_faults):
        compiled = get_compiled(tiny_cpu)
        shards = partition_faults(tiny_cpu, tiny_faults, 8)
        rep_to_shard = {}
        for shard in shards:
            for fault in shard.faults:
                rep = cone_representative(
                    compiled, resolve_site(compiled, fault))
                assert rep_to_shard.setdefault(rep, shard.index) == shard.index

    def test_single_shard_and_shard_cap(self, tiny_cpu, tiny_faults):
        assert len(partition_faults(tiny_cpu, tiny_faults, 1)) == 1
        assert len(partition_faults(tiny_cpu, tiny_faults, 8)) <= 8

    def test_shards_are_roughly_balanced(self, tiny_cpu, tiny_faults):
        shards = partition_faults(tiny_cpu, tiny_faults, 4)
        costs = [shard.cost for shard in shards]
        assert min(costs) > 0
        # LPT bin packing: no bin more than ~2x the mean.
        assert max(costs) <= 2.5 * (sum(costs) / len(costs))

    def test_cone_size_table_matches_memoised_cones(self, tiny_cpu):
        compiled = get_compiled(tiny_cpu)
        sizes = compiled.fanout_cone_sizes()
        for nid in range(0, compiled.n_nets, 97):  # deterministic sample
            assert sizes[nid] == len(compiled.fanout_ops(nid))


# --------------------------------------------------------------------- #
# the detection frontier
# --------------------------------------------------------------------- #
class TestDetectionFrontier:
    def test_publish_and_snapshot(self, tiny_faults):
        frontier = DetectionFrontier()
        frontier.publish(tiny_faults[0], 3)
        frontier.publish_many([(tiny_faults[1], 5), (tiny_faults[2], 7)])
        assert tiny_faults[0] in frontier
        assert tiny_faults[3] not in frontier
        assert len(frontier) == 3
        assert frontier.detected()[tiny_faults[1]] == 5


# --------------------------------------------------------------------- #
# sharded fault simulation: byte-identical to the serial engine
# --------------------------------------------------------------------- #
class TestShardedFaultSimulator:
    @pytest.mark.parametrize("drop", [True, False])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_to_serial(self, tiny_cpu, tiny_faults, tiny_patterns,
                                 backend, drop):
        sample = tiny_faults[::7]
        reference = FaultSimulator(tiny_cpu).run(sample, tiny_patterns,
                                                 drop_detected=drop)
        sharded = ShardedFaultSimulator(tiny_cpu, jobs=2, backend=backend)
        result = sharded.run(sample, tiny_patterns, drop_detected=drop)
        assert result.detected == reference.detected
        assert result.undetected == reference.undetected
        assert result.detecting_pattern == reference.detecting_pattern

    def test_frontier_records_every_detection(self, tiny_cpu, tiny_faults,
                                              tiny_patterns):
        sample = tiny_faults[::11]
        sharded = ShardedFaultSimulator(tiny_cpu, jobs=2, backend="serial")
        result = sharded.run(sample, tiny_patterns)
        frontier = sharded.last_frontier
        assert frontier is not None
        assert set(frontier.detected()) == result.detected
        assert frontier.detected() == result.detecting_pattern

    def test_explicit_shard_count(self, tiny_cpu, tiny_faults,
                                  tiny_patterns):
        sample = tiny_faults[:200]
        reference = FaultSimulator(tiny_cpu).run(sample, tiny_patterns)
        result = ShardedFaultSimulator(tiny_cpu, jobs=2, backend="serial",
                                       shards=3).run(sample, tiny_patterns)
        assert result.detected == reference.detected
        assert result.detecting_pattern == reference.detecting_pattern


# --------------------------------------------------------------------- #
# sharded classification
# --------------------------------------------------------------------- #
class TestShardedClassify:
    @pytest.mark.parametrize("effort", ["tie", "random"])
    def test_identical_classifications(self, tiny_cpu, tiny_faults, effort):
        reference = StructuralUntestabilityEngine(
            tiny_cpu, effort=effort).classify(tiny_faults)
        sharded = sharded_classify(tiny_cpu, tiny_faults, effort=effort,
                                   jobs=2, backend="process")
        assert sharded.classifications == reference.classifications
        assert sharded.effort == reference.effort

    def test_engine_jobs_knob_delegates(self, tiny_cpu, tiny_faults):
        reference = StructuralUntestabilityEngine(tiny_cpu).classify(
            tiny_faults)
        engine = StructuralUntestabilityEngine(tiny_cpu, jobs=2,
                                               backend="thread")
        assert engine.classify(tiny_faults).classifications == \
            reference.classifications


# --------------------------------------------------------------------- #
# sharded mission-mode fault grading
# --------------------------------------------------------------------- #
class TestShardedFaultGrading:
    @pytest.fixture(scope="class")
    def tiny_captured(self, tiny_soc):
        programs = generate_sbst_suite(tiny_soc.config.cpu)
        return ToggleMonitor(tiny_soc.cpu).run_suite(programs)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grade_identical_to_serial(self, tiny_cpu, tiny_captured,
                                       backend):
        serial = FaultGrader(tiny_cpu).grade(tiny_captured)
        sharded = FaultGrader(tiny_cpu, jobs=2,
                              backend=backend).grade(tiny_captured)
        assert sharded == serial

    def test_compare_with_pruning_identical(self, tiny_cpu, tiny_captured,
                                            tiny_flow_report):
        pruned = tiny_flow_report.online_untestable
        serial = FaultGrader(tiny_cpu).compare_with_pruning(
            tiny_captured, pruned)
        sharded = FaultGrader(tiny_cpu, jobs=2,
                              backend="process").compare_with_pruning(
            tiny_captured, pruned)
        assert (serial.total_faults, serial.detected, serial.pruned,
                serial.detected_after_pruning) == \
               (sharded.total_faults, sharded.detected, sharded.pruned,
                sharded.detected_after_pruning)


# --------------------------------------------------------------------- #
# the pickle path the spawn-based process backend depends on
# --------------------------------------------------------------------- #
class TestNetlistPickling:
    def test_round_trip_preserves_structure(self, tiny_cpu):
        clone = pickle.loads(pickle.dumps(tiny_cpu))
        assert netlist_signature(clone) == netlist_signature(tiny_cpu)
        assert list(clone.nets) == list(tiny_cpu.nets)
        assert clone.ports == tiny_cpu.ports
        assert clone.unobservable_ports == tiny_cpu.unobservable_ports
        assert sorted(clone.annotations) == sorted(tiny_cpu.annotations)

    def test_round_trip_preserves_ties_and_cells(self, tiny_cpu):
        clone = pickle.loads(pickle.dumps(tiny_cpu))
        for name, net in tiny_cpu.nets.items():
            assert clone.nets[name].tied == net.tied
        some = next(iter(tiny_cpu.instances.values()))
        assert clone.instances[some.name].cell is some.cell  # singleton cell


# --------------------------------------------------------------------- #
# the spawn-backend contract: jobs must survive pickling
# --------------------------------------------------------------------- #
class TestJobPickling:
    """On platforms without ``fork`` the pool initializer ships the job by
    pickle; a pickled-and-rebuilt job must compute identical verdicts."""

    def test_plane_sim_job_round_trip(self, tiny_cpu, tiny_faults,
                                      tiny_patterns):
        from repro.simulation.fault_sim import observation_net_names
        from repro.simulation.sharded import _PlaneSimJob, partition_faults

        shards = partition_faults(tiny_cpu, tiny_faults[:300], 3)
        job = _PlaneSimJob(
            tiny_cpu, tuple(shard.faults for shard in shards),
            frozenset(observation_net_names(tiny_cpu)), tiny_patterns, 64)
        job.prepare()
        clone = pickle.loads(pickle.dumps(job))
        for shard in shards:
            task = (shard.index, tuple(range(len(shard.faults))), 0)
            assert clone.run_window(task) == job.run_window(task)

    def test_classify_job_round_trip(self, tiny_cpu, tiny_faults):
        from repro.simulation.sharded import (_DetectClassifyJob,
                                              partition_faults)
        from repro.atpg.engine import AtpgEffort

        shards = partition_faults(tiny_cpu, tiny_faults[:400], 2)
        job = _DetectClassifyJob(tiny_cpu, tuple(s.faults for s in shards),
                                 AtpgEffort.RANDOM, 64, 200, 2013)
        clone = pickle.loads(pickle.dumps(job))
        for shard in shards:
            ours = job.run_shard((shard.index,))
            theirs = clone.run_shard((shard.index,))
            assert ours[1] == theirs[1]  # identical classifications
            assert ours[1]  # the random phase really classified faults


class TestShardedClassifySchedulesTieOnce:
    def test_tie_effort_spawns_no_workers(self, tiny_cpu, tiny_faults,
                                          monkeypatch):
        """At TIE effort the global fixpoint runs once in the caller and
        nothing is farmed out — sharded classify must cost serial time."""
        import repro.simulation.sharded as sharded_mod

        def boom(self, job):
            raise AssertionError("no worker pool expected at TIE effort")

        monkeypatch.setattr(sharded_mod._ShardRunner, "start", boom)
        reference = StructuralUntestabilityEngine(tiny_cpu).classify(
            tiny_faults)
        report = sharded_classify(tiny_cpu, tiny_faults, effort="tie",
                                  jobs=4, backend="process")
        assert report.classifications == reference.classifications
