"""The golden scenario corpus: loading, axis expansion, diff/update cycle."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.corpus import (CorpusError, diff_text, load_corpus,
                              run_corpus)
from repro.api.session import Session

REPO_CORPUS = Path(__file__).resolve().parent.parent / "benchmarks" / "corpus"


def write_spec(directory: Path, name: str, **spec) -> Path:
    path = directory / f"{name}.json"
    path.write_text(json.dumps(spec), encoding="utf-8")
    return path


@pytest.fixture()
def tiny_corpus(tmp_path):
    """A one-entry corpus directory over the tiny core."""
    write_spec(tmp_path, "tiny_full", base="tiny", axes={}, effort="tie")
    return tmp_path


class TestLoading:
    def test_repo_corpus_loads_sorted(self):
        entries = load_corpus(REPO_CORPUS)
        names = [entry.name for entry in entries]
        assert names == sorted(names)
        assert len(entries) >= 6
        assert {"tiny_full", "tiny_nodebug", "tiny_noscan",
                "small_full"} <= set(names)

    def test_every_repo_entry_has_a_committed_golden(self):
        for entry in load_corpus(REPO_CORPUS):
            assert entry.golden_path.is_file(), entry.name

    def test_axes_expand_into_the_config(self):
        by_name = {entry.name: entry for entry in load_corpus(REPO_CORPUS)}
        assert by_name["tiny_nodebug"].build_config().cpu.has_debug is False
        assert by_name["tiny_noscan"].build_config().insert_scan is False
        assert by_name["small_map12"].build_config().cpu.addr_width == 12
        assert by_name["tiny_random"].effort == "random"

    def test_bad_directory_and_bad_spec(self, tmp_path):
        with pytest.raises(CorpusError, match="does not exist"):
            load_corpus(tmp_path / "nope")
        with pytest.raises(CorpusError, match="no \\*\\.json specs"):
            load_corpus(tmp_path)
        write_spec(tmp_path, "broken", base="galactic")
        with pytest.raises(CorpusError, match="'base' must be one of"):
            load_corpus(tmp_path)


class TestRunAndDiff:
    def test_update_then_match_then_diff(self, tiny_corpus):
        session = Session()
        updated = run_corpus(tiny_corpus, update=True, session=session)
        assert [outcome.status for outcome in updated] == ["updated"]
        golden = tiny_corpus / "golden" / "tiny_full.table.txt"
        assert golden.is_file()

        checked = run_corpus(tiny_corpus, session=session)
        assert [outcome.status for outcome in checked] == ["match"]
        assert checked[0].ok

        golden.write_text(golden.read_text().replace("Scan", "Scam"))
        tampered = run_corpus(tiny_corpus, session=session)
        assert [outcome.status for outcome in tampered] == ["diff"]
        assert not tampered[0].ok
        assert "Scam" in diff_text(tampered[0])

    def test_missing_golden_is_reported(self, tiny_corpus):
        outcomes = run_corpus(tiny_corpus)
        assert [outcome.status for outcome in outcomes] == ["missing-golden"]
        assert not outcomes[0].ok

    def test_only_filter_and_unknown_name(self, tiny_corpus):
        run_corpus(tiny_corpus, update=True)
        assert len(run_corpus(tiny_corpus, only=["tiny_full"])) == 1
        with pytest.raises(CorpusError, match="unknown corpus entries"):
            run_corpus(tiny_corpus, only=["missing_entry"])

    def test_sharded_run_matches_the_serial_golden(self, tiny_corpus):
        """The corpus acceptance property in miniature: a --jobs 2 sharded
        run must byte-match a capture produced by the serial path."""
        run_corpus(tiny_corpus, update=True, session=Session())
        outcomes = run_corpus(tiny_corpus, jobs=2, shard_backend="process")
        assert [outcome.status for outcome in outcomes] == ["match"]

    def test_repo_tiny_entries_match_their_goldens(self):
        """Fast subset of the CI corpus job (the full set runs in CI)."""
        outcomes = run_corpus(REPO_CORPUS,
                              only=["tiny_full", "tiny_nodebug"])
        assert all(outcome.status == "match" for outcome in outcomes), [
            (outcome.name, outcome.status) for outcome in outcomes]
