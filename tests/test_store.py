"""The durable artifact store (repro.store) and its tiered-cache wiring.

Covers the store contract in isolation (roundtrip, integrity, version
stamping, retention), the ArtifactCache read-through/write-behind
integration, cross-process single-flight (two racing processes compute a
key exactly once), and the acceptance property of the PR: a fresh
process replays every warm pass from the store without recomputing.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.pipeline.cache import ArtifactCache
from repro.store import (LocalDirStore, StoreEntry, resolve_store,
                         store_key_digest)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def key(n: int = 0, pass_name: str = "pass"):
    return (f"sig{n}", "cfg", pass_name)


@pytest.fixture()
def store(tmp_path) -> LocalDirStore:
    return LocalDirStore(tmp_path / "store")


# --------------------------------------------------------------------- #
# the store contract
# --------------------------------------------------------------------- #
class TestRoundtrip:
    def test_put_get_roundtrip(self, store):
        assert store.put(key(), {"value": [1, 2, 3]})
        assert store.get(key()) == {"value": [1, 2, 3]}
        assert store.stats["hits"] == 1
        assert store.stats["writes"] == 1

    def test_miss_on_absent_key(self, store):
        assert store.get(key(99)) is None
        assert store.stats["misses"] == 1

    def test_unpicklable_value_degrades_to_write_error(self, store):
        assert store.put(key(), lambda: None) is False
        assert store.stats["write_errors"] == 1
        assert store.get(key()) is None

    def test_overwrite_is_idempotent(self, store):
        store.put(key(), "first")
        store.put(key(), "second")
        assert store.get(key()) == "second"
        assert len(store) == 1

    def test_entries_enumerate_keys_and_sizes(self, store):
        store.put(key(1, "fault_list"), list(range(100)))
        store.put(key(2, "baseline"), "small")
        entries = store.entries()
        assert len(entries) == 2
        assert {entry.key for entry in entries} == {key(1, "fault_list"),
                                                    key(2, "baseline")}
        assert all(isinstance(entry, StoreEntry)
                   and entry.size_bytes > 0 for entry in entries)

    def test_digest_is_stable_and_key_sensitive(self):
        assert store_key_digest(key(1)) == store_key_digest(key(1))
        assert store_key_digest(key(1)) != store_key_digest(key(2))
        # Null-joined hashing: shifting a boundary must not collide.
        assert (store_key_digest(("ab", "c", "p"))
                != store_key_digest(("a", "bc", "p")))


class TestIntegrity:
    def _object_file(self, store) -> Path:
        files = [path for path, _ in store._iter_files()]
        assert len(files) == 1
        return files[0]

    def test_truncated_artifact_is_quarantined_and_recomputed(self, store):
        store.put(key(), {"big": "x" * 4096})
        path = self._object_file(store)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 100])  # torn write / bit rot

        assert store.get(key()) is None
        assert store.stats["corruptions"] == 1
        assert store.stats["misses"] == 1
        assert not path.exists()
        quarantined = list((store.root / "v1" / "quarantine").iterdir())
        assert len(quarantined) == 1
        # The caller recomputes and re-publishes over the gap.
        store.put(key(), {"big": "y"})
        assert store.get(key()) == {"big": "y"}

    def test_garbage_header_is_quarantined(self, store):
        store.put(key(), "ok")
        path = self._object_file(store)
        path.write_bytes(b"\x00\xff not json\n garbage")
        assert store.get(key()) is None
        assert store.stats["corruptions"] == 1

    def test_version_mismatch_is_stale_not_corrupt(self, store):
        store.put(key(), "ok")
        path = self._object_file(store)
        header, _, payload = path.read_bytes().partition(b"\n")
        doc = json.loads(header)
        doc["version"] = "0.0.0-older"
        path.write_bytes(json.dumps(doc).encode() + b"\n" + payload)

        assert store.get(key()) is None
        assert store.stats["stale"] == 1
        assert store.stats["corruptions"] == 0
        assert not path.exists()  # dropped, not quarantined


class TestRetention:
    def test_prune_by_age(self, store):
        store.put(key(1), "old")
        store.put(key(2), "new")
        old_path = store._object_path(key(1))
        past = time.time() - 1000
        os.utime(old_path, (past, past))

        result = store.prune(max_age_seconds=500)
        assert result.removed_entries == 1
        assert result.kept_entries == 1
        assert store.get(key(1)) is None
        assert store.get(key(2)) == "new"

    def test_prune_by_size_evicts_least_recently_used(self, store):
        for n in range(4):
            store.put(key(n), "x" * 1000)
            path = store._object_path(key(n))
            stamp = time.time() - 100 + n  # key(0) is oldest
            os.utime(path, (stamp, stamp))
        total = sum(entry.size_bytes for entry in store.entries())

        result = store.prune(max_bytes=total - 1)  # must drop exactly one
        assert result.removed_entries == 1
        assert store.get(key(0)) is None
        assert all(store.get(key(n)) is not None for n in (1, 2, 3))

    def test_gc_collects_quarantine_and_stale_tmp(self, store):
        store.put(key(), "x" * 2048)
        path = store._object_path(key())
        data = path.read_bytes()
        path.write_bytes(data[:-50])
        assert store.get(key()) is None  # quarantines

        stale_tmp = store.root / "v1" / "tmp" / "dead-writer"
        stale_tmp.write_bytes(b"partial")
        past = time.time() - 7200
        os.utime(stale_tmp, (past, past))

        result = store.gc()
        assert result.removed_debris == 2  # quarantine corpse + stale tmp
        assert not stale_tmp.exists()

    def test_clear_drops_everything(self, store):
        for n in range(3):
            store.put(key(n), n)
        store.clear()
        assert len(store) == 0


class TestResolveStore:
    def test_none_stays_none(self):
        assert resolve_store(None) is None

    def test_instance_passes_through(self, store):
        assert resolve_store(store) is store

    def test_path_string_builds_local_store(self, tmp_path):
        resolved = resolve_store(str(tmp_path / "s"))
        assert isinstance(resolved, LocalDirStore)
        assert resolved.root == tmp_path / "s"

    def test_backend_prefix_spec(self, tmp_path):
        resolved = resolve_store(f"local:{tmp_path / 's'}")
        assert isinstance(resolved, LocalDirStore)
        assert resolved.root == tmp_path / "s"

    def test_bad_spec_type_raises(self):
        with pytest.raises(TypeError):
            resolve_store(42)


# --------------------------------------------------------------------- #
# tiered ArtifactCache integration
# --------------------------------------------------------------------- #
class TestTieredCache:
    def test_miss_reads_through_and_promotes(self, tmp_path):
        store_dir = str(tmp_path / "store")
        warm = ArtifactCache(store=store_dir)
        value, hit = warm.get_or_compute(key(), lambda: "computed")
        assert (value, hit) == ("computed", False)
        warm.flush()

        # A fresh cache over the same directory replays without computing.
        cold = ArtifactCache(store=store_dir)
        calls = []
        value, hit = cold.get_or_compute(
            key(), lambda: calls.append(1) or "recomputed")
        assert (value, hit) == ("computed", True)
        assert calls == []
        # ... and the value was promoted into the memory tier.
        assert cold.stats["entries"] == 1
        assert cold.stats["store_hits"] == 1

    def test_persist_false_never_touches_the_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cache = ArtifactCache(store=store_dir)
        value, hit = cache.get_or_compute(key(), lambda: "local-only",
                                          persist=False)
        assert (value, hit) == ("local-only", False)
        cache.flush()
        assert len(cache.store) == 0
        # In-memory tier still serves it.
        assert cache.get_or_compute(key(), lambda: "x")[0] == "local-only"

    def test_factory_failure_releases_the_store_lock(self, tmp_path):
        cache = ArtifactCache(store=str(tmp_path / "store"))
        with pytest.raises(RuntimeError):
            cache.get_or_compute(key(), self._boom)
        # The key's lock must be free again: a retry can compute.
        value, hit = cache.get_or_compute(key(), lambda: "second try")
        assert (value, hit) == ("second try", False)

    @staticmethod
    def _boom():
        raise RuntimeError("factory failed")

    def test_stats_surface_store_counters(self, tmp_path):
        cache = ArtifactCache(store=str(tmp_path / "store"))
        cache.get_or_compute(key(), lambda: "v")
        cache.flush()
        stats = cache.stats
        assert stats["store_writes"] == 1
        assert "store_hits" in stats and "store_corruptions" in stats

    def test_storeless_cache_has_no_store_keys(self):
        stats = ArtifactCache().stats
        assert not any(name.startswith("store_") for name in stats)

    def test_corrupted_artifact_recomputes_through(self, tmp_path):
        store_dir = str(tmp_path / "store")
        warm = ArtifactCache(store=store_dir)
        warm.get_or_compute(key(), lambda: {"payload": "x" * 2048})
        warm.flush()

        # Truncate the only artifact on disk.
        store = resolve_store(store_dir)
        path = store._object_path(key())
        data = path.read_bytes()
        path.write_bytes(data[:-64])

        cold = ArtifactCache(store=store_dir)
        value, hit = cold.get_or_compute(key(), lambda: "recomputed")
        assert (value, hit) == ("recomputed", False)
        cold.flush()
        assert cold.stats["store_corruptions"] == 1
        # The recomputed value healed the store for the next process.
        healed = ArtifactCache(store=store_dir)
        assert healed.get_or_compute(key(), lambda: "x") == ("recomputed",
                                                             True)


# --------------------------------------------------------------------- #
# cross-process single-flight
# --------------------------------------------------------------------- #
def _race_worker(store_dir: str, marker_dir: str, out_path: str) -> None:
    from repro.pipeline.cache import ArtifactCache

    def factory():
        marker = Path(marker_dir) / f"computed-{os.getpid()}"
        marker.write_text("1")
        time.sleep(0.3)  # widen the race window
        return "computed-once"

    cache = ArtifactCache(store=store_dir)
    value, hit = cache.get_or_compute(("race-sig", "cfg", "pass"), factory)
    cache.flush()
    Path(out_path).write_text(json.dumps({"value": value, "hit": hit}))


class TestCrossProcessSingleFlight:
    def test_two_processes_compute_once(self, tmp_path):
        store_dir = str(tmp_path / "store")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        outs = [tmp_path / "out0.json", tmp_path / "out1.json"]

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_race_worker,
                             args=(store_dir, str(marker_dir), str(out)))
                 for out in outs]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0

        # Exactly one process ran the factory; both got the value.
        assert len(list(marker_dir.iterdir())) == 1
        results = [json.loads(out.read_text()) for out in outs]
        assert all(r["value"] == "computed-once" for r in results)
        # The loser observed the winner's publication as a store hit.
        assert sorted(r["hit"] for r in results) == [False, True]


# --------------------------------------------------------------------- #
# acceptance: fresh-process warm replay of a real analysis
# --------------------------------------------------------------------- #
_ANALYZE_SNIPPET = """\
import json, sys
from repro.api import Session

store_dir, effort = sys.argv[1], sys.argv[2]
session = Session(store=store_dir)
report = session.analyze("tiny", effort=effort)
session.cache.flush()
print(json.dumps({"stats": session.cache_stats,
                  "total": report.total_online_untestable}))
"""


def _fresh_process_analyze(store_dir: str, effort: str) -> dict:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _ANALYZE_SNIPPET, store_dir, effort],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestFreshProcessWarmHits:
    def test_second_process_replays_every_pass(self, tmp_path):
        store_dir = str(tmp_path / "store")

        cold = _fresh_process_analyze(store_dir, "tie")
        assert cold["stats"]["store_hits"] == 0
        passes_run = cold["stats"]["misses"]
        assert passes_run >= 6  # the full tie-effort tiny flow
        assert cold["stats"]["store_writes"] == passes_run

        warm = _fresh_process_analyze(store_dir, "tie")
        # Every pass replays from the store: no recomputation at all.
        assert warm["stats"]["store_hits"] == passes_run
        assert warm["stats"]["store_writes"] == 0
        assert warm["total"] == cold["total"]

        # A different effort still replays the effort-blind passes
        # (fault_list, scan_analysis key only on netlist + fault model).
        other = _fresh_process_analyze(store_dir, "random")
        assert other["stats"]["store_hits"] >= 2
        assert other["stats"]["store_hits"] < passes_run
