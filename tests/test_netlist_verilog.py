"""Unit tests for the structural-Verilog writer/parser."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.verilog import VerilogParseError, parse_verilog, write_verilog
from repro.simulation.simulator import CombinationalSimulator

from tests.conftest import all_input_patterns, build_and_or_circuit


SAMPLE = """
// a small hand-written netlist
module sample (a, b, clk, y);
  input a, b, clk;
  output y;

  wire n1;
  wire q;

  AND2 g1 (.A(a), .B(b), .Y(n1));
  DFF  ff1 (.D(n1), .CK(clk), .Q(q));
  INV  g2 (.A(q), .Y(y));
endmodule
"""


class TestParser:
    def test_parse_sample(self):
        netlist = parse_verilog(SAMPLE)
        assert netlist.name == "sample"
        assert set(netlist.input_ports()) == {"a", "b", "clk"}
        assert netlist.output_ports() == ["y"]
        assert set(netlist.instances) == {"g1", "ff1", "g2"}
        assert netlist.instance("ff1").is_sequential

    def test_comments_ignored(self):
        text = SAMPLE.replace("AND2 g1", "/* block\ncomment */ AND2 g1")
        netlist = parse_verilog(text)
        assert "g1" in netlist.instances

    def test_unconnected_pin_allowed(self):
        text = """
        module m (a, y);
          input a;
          output y;
          HA h1 (.A(a), .B(a), .S(y), .CO());
        endmodule
        """
        netlist = parse_verilog(text)
        assert netlist.instance("h1").pin("CO").net is None

    def test_missing_module_raises(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("wire x;")

    def test_missing_endmodule_raises(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m (a); input a;")

    def test_unknown_cell_raises(self):
        text = """
        module m (a, y);
          input a;
          output y;
          MYSTERY g (.A(a), .Y(y));
        endmodule
        """
        with pytest.raises(VerilogParseError):
            parse_verilog(text)


class TestWriterRoundTrip:
    def test_round_trip_structure(self):
        original = build_and_or_circuit()
        text = write_verilog(original)
        parsed = parse_verilog(text)
        assert parsed.name == original.name
        assert parsed.ports == original.ports
        assert set(parsed.instances) == set(original.instances)
        for name, inst in original.instances.items():
            clone = parsed.instance(name)
            assert clone.cell.name == inst.cell.name
            for port, pin in inst.pins.items():
                expected = pin.net.name if pin.net else None
                actual = clone.pin(port).net.name if clone.pin(port).net else None
                assert expected == actual

    def test_round_trip_preserves_behaviour(self):
        original = build_and_or_circuit()
        parsed = parse_verilog(write_verilog(original))
        sim_a = CombinationalSimulator(original)
        sim_b = CombinationalSimulator(parsed)
        for pattern in all_input_patterns(["a", "b", "c"]):
            va = sim_a.evaluate(pattern)
            vb = sim_b.evaluate(pattern)
            assert va["y"] == vb["y"]
            assert va["z"] == vb["z"]

    def test_bus_port_names_survive(self):
        b = NetlistBuilder("busmod")
        data = b.add_input_bus("data", 3)
        y = b.add_output("y")
        b.and_(*data, output=y)
        parsed = parse_verilog(write_verilog(b.build()))
        assert set(parsed.input_ports()) == set(data)

    def test_generated_core_round_trips(self, tiny_soc):
        text = write_verilog(tiny_soc.cpu)
        parsed = parse_verilog(text)
        assert parsed.stats()["instances"] == tiny_soc.cpu.stats()["instances"]
        assert parsed.stats()["pins"] == tiny_soc.cpu.stats()["pins"]
