"""ArtifactCache behaviour: LRU bounding, locking, single-flight."""

from __future__ import annotations

import threading

import pytest

from repro.pipeline.cache import ArtifactCache


def key(n: int):
    return (f"sig{n}", "cfg", "pass")


class TestLruBound:
    def test_unbounded_by_default(self):
        cache = ArtifactCache()
        for n in range(100):
            cache.put(key(n), n)
        assert len(cache) == 100

    def test_eviction_drops_least_recently_used(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(key(1), "a")
        cache.put(key(2), "b")
        assert cache.get(key(1)) == "a"   # refreshes key 1's recency
        cache.put(key(3), "c")            # evicts key 2, not key 1
        assert cache.get(key(2)) is None
        assert cache.get(key(1)) == "a"
        assert cache.get(key(3)) == "c"
        assert len(cache) == 2
        assert cache.stats["evictions"] == 1

    def test_overwrite_does_not_evict(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(key(1), "a")
        cache.put(key(2), "b")
        cache.put(key(1), "a2")
        assert len(cache) == 2
        assert cache.get(key(1)) == "a2"
        assert cache.stats["evictions"] == 0

    def test_clear_resets_accounting(self):
        cache = ArtifactCache(max_entries=1)
        cache.put(key(1), "a")
        cache.get(key(1))
        cache.get(key(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {"entries": 0, "hits": 0, "misses": 0,
                               "evictions": 0}


class TestThreadSafety:
    def test_concurrent_put_get_under_bound(self):
        cache = ArtifactCache(max_entries=32)
        errors = []

        def worker(seed: int) -> None:
            try:
                for n in range(200):
                    cache.put(key((seed * 7 + n) % 64), n)
                    cache.get(key(n % 64))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == 8 * 200

    def test_single_flight_coalesces_concurrent_computations(self):
        cache = ArtifactCache()
        calls = []
        gate = threading.Event()

        def factory():
            calls.append(threading.current_thread().name)
            gate.wait(timeout=5)
            return "value"

        results = []

        def run():
            results.append(cache.get_or_compute(key(1), factory))

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        while not calls:           # one thread entered the factory
            pass
        gate.set()
        for thread in threads:
            thread.join()

        assert len(calls) == 1     # exactly one computation
        assert {value for value, _ in results} == {"value"}
        assert sorted(hit for _, hit in results) == [False, True, True, True]
        assert cache.stats["hits"] == 3
        assert cache.stats["misses"] == 1

    def test_single_flight_failure_hands_over(self):
        cache = ArtifactCache()
        attempts = []

        def failing():
            attempts.append("fail")
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_compute(key(1), failing)
        # The key is released: the next caller computes instead of hanging.
        value, hit = cache.get_or_compute(key(1), lambda: "recovered")
        assert (value, hit) == ("recovered", False)
        assert attempts == ["fail"]
