"""The persistent warm worker-pool runtime (:mod:`repro.runtime`).

Three contracts under test:

* **Byte-identity under any steal order.**  The pooled engines must
  reproduce the serial reference exactly — detected/undetected sets,
  recorded detecting-pattern indices and classification dicts — no matter
  which worker steals which chunk.  Hypothesis sweeps the deterministic
  jitter seed (per-task delays that permute completion order) and the
  chunk granularity, across both fault models and both kernels.
* **Warm re-use.**  Installing job state twice under one content key must
  hit the worker-side cache, and the warm setup path must be dramatically
  cheaper than the cold install.
* **Degradation.**  ``kill -9`` of a worker mid-round must requeue its
  in-flight chunks onto the survivors, spawn a replacement and count a
  ``worker_restarts`` — never hang, never lose or duplicate a result.
"""

from __future__ import annotations

import os
import random
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.faultlist import generate_fault_list
from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.netlist.compiled import get_compiled
from repro.runtime import (MONSTER_RATIO, PoolClosedError, WorkerPool,
                           build_chunks, content_key, default_chunk_size,
                           get_pool, pool_stats, resolve_pool_mode,
                           shutdown_pools)
from repro.simulation.fault_sim import FaultSimulator, resolve_site
from repro.simulation.kernels import numpy_available
from repro.simulation.sharded import (ShardedFaultSimulator,
                                      cone_representative, sharded_classify)

KERNELS = ("int",) + (("numpy",) if numpy_available() else ())

# These tests pin jobs=2 to exercise two genuine workers even on boxes
# whose cpu_count would cap the request; the cap warning is expected.
pytestmark = pytest.mark.filterwarnings(
    "ignore:jobs=.* exceeds os.cpu_count")


@pytest.fixture(scope="module")
def tiny_cpu(tiny_soc):
    return tiny_soc.cpu


@pytest.fixture(scope="module")
def tiny_faults(tiny_cpu):
    return generate_fault_list(tiny_cpu).faults()


@pytest.fixture(scope="module")
def transition_faults(tiny_cpu):
    return generate_fault_list(tiny_cpu, model="transition").faults()


@pytest.fixture(scope="module")
def tiny_patterns(tiny_cpu):
    rng = random.Random(2013)
    sim = FaultSimulator(tiny_cpu)
    controllable = [p for p in tiny_cpu.input_ports()
                    if tiny_cpu.net(p).tied is None]
    controllable += sim.sim.state_nets
    return [{net: (LOGIC_1 if rng.getrandbits(1) else LOGIC_0)
             for net in controllable}
            for _ in range(70)]


# --------------------------------------------------------------------- #
# content addressing
# --------------------------------------------------------------------- #
class TestContentKey:
    def test_stable_and_tagged(self, tiny_cpu):
        first = content_key("job", tiny_cpu, "int", 64)
        second = content_key("job", tiny_cpu, "int", 64)
        assert first == second
        assert first.startswith("job:")

    def test_sensitive_to_every_part(self, tiny_cpu):
        base = content_key("job", tiny_cpu, "int", 64)
        assert content_key("job", tiny_cpu, "numpy", 64) != base
        assert content_key("job", tiny_cpu, "int", 32) != base
        assert content_key("grade", tiny_cpu, "int", 64) != base

    def test_sensitive_to_the_netlist(self, tiny_cpu):
        # A structurally identical clone shares the signature, so a warm
        # pool can serve it from the worker-side cache.
        clone = tiny_cpu.clone(tiny_cpu.name)
        assert (content_key("job", clone, 1)
                == content_key("job", tiny_cpu, 1))
        renamed = tiny_cpu.clone("renamed")
        assert (content_key("job", renamed, 1)
                != content_key("job", tiny_cpu, 1))

    def test_resolve_pool_mode(self):
        assert resolve_pool_mode(None) is None
        assert resolve_pool_mode("persistent") == "persistent"
        assert resolve_pool_mode(" Ephemeral ") == "ephemeral"
        pool = WorkerPool(1)
        try:
            assert resolve_pool_mode(pool) is pool
        finally:
            pool.close()
        with pytest.raises(ValueError, match="unknown pool mode"):
            resolve_pool_mode("forever")


# --------------------------------------------------------------------- #
# the work-stealing chunk scheduler
# --------------------------------------------------------------------- #
class TestChunkScheduler:
    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(4, 0) == 1
        assert default_chunk_size(1, 1) == 1
        assert 1 <= default_chunk_size(4, 10_000) <= 64
        assert default_chunk_size(2, 100_000) == 64

    def test_chunks_are_exact_and_deterministic(self, tiny_cpu,
                                                tiny_faults):
        first = build_chunks(tiny_cpu, tiny_faults, 16)
        second = build_chunks(tiny_cpu, tiny_faults, 16)
        assert first == second
        scattered = sorted(p for chunk in first for p in chunk)
        assert scattered == list(range(len(tiny_faults)))

    def test_positions_ascend_within_chunks(self, tiny_cpu, tiny_faults):
        for chunk in build_chunks(tiny_cpu, tiny_faults, 16):
            assert list(chunk) == sorted(chunk)

    def test_monsters_lead_the_dispatch_order(self, tiny_cpu, tiny_faults):
        compiled = get_compiled(tiny_cpu)
        sizes = compiled.fanout_cone_sizes()

        def cost(position):
            rep = cone_representative(
                compiled, resolve_site(compiled, tiny_faults[position]))
            return sizes[rep] + 1 if rep >= 0 else 1

        costs = [cost(p) for p in range(len(tiny_faults))]
        mean = sum(costs) / len(costs)
        monsters = {p for p, c in enumerate(costs)
                    if c >= MONSTER_RATIO * mean}
        chunks = build_chunks(tiny_cpu, tiny_faults, 16)
        seen_regular = False
        for chunk in chunks:
            if len(chunk) == 1 and chunk[0] in monsters:
                assert not seen_regular, (
                    "monster singleton dispatched after a packed chunk")
            else:
                seen_regular = True
        for monster in monsters:
            assert (monster,) in chunks

    def test_chunk_size_is_respected_outside_monsters(self, tiny_cpu,
                                                      tiny_faults):
        compiled = get_compiled(tiny_cpu)
        sizes = compiled.fanout_cone_sizes()
        costs = []
        for fault in tiny_faults:
            rep = cone_representative(compiled,
                                      resolve_site(compiled, fault))
            costs.append(sizes[rep] + 1 if rep >= 0 else 1)
        mean = sum(costs) / len(costs)
        chunks = build_chunks(tiny_cpu, tiny_faults, 8)
        for chunk in chunks:
            if len(chunk) == 1 and costs[chunk[0]] >= MONSTER_RATIO * mean:
                continue
            assert len(chunk) <= 8


# --------------------------------------------------------------------- #
# pool lifecycle + content-addressed installs
# --------------------------------------------------------------------- #
class TestPoolLifecycle:
    def test_install_then_warm_hit(self, tiny_cpu, tiny_faults,
                                   tiny_patterns):
        pool = WorkerPool(2)
        try:
            sim = ShardedFaultSimulator(tiny_cpu, jobs=2, pool=pool)
            sample = tiny_faults[::7][:40]
            first = sim.run(sample, tiny_patterns)
            installs = pool.stats["installs"]
            assert installs >= 2  # the netlist + the job
            assert pool.stats["install_hits"] == 0
            second = sim.run(sample, tiny_patterns)
            assert pool.stats["installs"] == installs  # nothing new
            assert pool.stats["install_hits"] == 1
            # The warm re-entry's setup is a cache hit: microseconds.
            assert pool.stats["last_setup_seconds"] < 0.05
            assert second.detected == first.detected
            assert second.detecting_pattern == first.detecting_pattern
        finally:
            pool.close()

    def test_closed_pool_raises(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(PoolClosedError):
            pool.ensure_job("job:x", lambda: None)

    def test_registry_reuses_and_recreates(self):
        shutdown_pools()
        first = get_pool(1)
        assert get_pool(1) is first
        assert any(s["workers"] == 1 for s in pool_stats())
        first.close()
        second = get_pool(1)
        assert second is not first
        shutdown_pools()

    def test_exception_inside_session_clears_run_state(self, tiny_cpu,
                                                       tiny_faults,
                                                       tiny_patterns):
        pool = WorkerPool(2)
        try:
            sim = ShardedFaultSimulator(tiny_cpu, jobs=2, pool=pool)
            sample = tiny_faults[::9][:30]
            reference = FaultSimulator(tiny_cpu).run(sample, tiny_patterns)
            key = "probe:abort"
            pool.ensure_job(key, lambda: _EchoJob(tiny_cpu))
            with pytest.raises(RuntimeError, match="deliberate"):
                with pool.session(key) as run:
                    run.submit("run", (0, 1), tag=0)
                    raise RuntimeError("deliberate")
            # The aborted run must not leak tasks into the next one.
            result = sim.run(sample, tiny_patterns)
            assert result.detected == reference.detected
            assert result.detecting_pattern == reference.detecting_pattern
        finally:
            pool.close()


class _EchoJob:
    """Trivial installable job (used by the abort + death tests)."""

    def __init__(self, netlist, delay: float = 0.0) -> None:
        self.netlist = netlist
        self.delay = delay

    def run(self, task):
        chunk_id, value = task
        if self.delay:
            time.sleep(self.delay)
        return chunk_id, value * 2, os.getpid()


# --------------------------------------------------------------------- #
# byte-identity under randomized steal interleavings
# --------------------------------------------------------------------- #
def _identity_case(netlist, faults, patterns, kernel, jitter_seed, chunk,
                   drop_detected=True):
    serial = FaultSimulator(netlist).run(faults, patterns,
                                         drop_detected=drop_detected)
    pool = WorkerPool(2, jitter_seed=jitter_seed)
    try:
        sharded = ShardedFaultSimulator(netlist, jobs=2, kernel=kernel,
                                        pool=pool, chunk=chunk,
                                        drop_detected=drop_detected)
        pooled = sharded.run(faults, patterns)
    finally:
        pool.close()
    assert pooled.detected == serial.detected
    assert pooled.undetected == serial.undetected
    assert pooled.detecting_pattern == serial.detecting_pattern


class TestStealOrderIdentity:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(jitter_seed=st.integers(min_value=0, max_value=2**31),
           chunk=st.integers(min_value=1, max_value=9))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_stuck_at_identity(self, tiny_cpu, tiny_faults, tiny_patterns,
                               kernel, jitter_seed, chunk):
        sample = tiny_faults[::5][:60]
        _identity_case(tiny_cpu, sample, tiny_patterns, kernel,
                       jitter_seed, chunk)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(jitter_seed=st.integers(min_value=0, max_value=2**31),
           chunk=st.integers(min_value=1, max_value=9))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_transition_identity(self, tiny_cpu, transition_faults,
                                 tiny_patterns, kernel, jitter_seed, chunk):
        sample = transition_faults[::5][:60]
        _identity_case(tiny_cpu, sample, tiny_patterns, kernel,
                       jitter_seed, chunk)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_no_drop_identity(self, tiny_cpu, tiny_faults, tiny_patterns,
                              kernel):
        sample = tiny_faults[::11][:40]
        _identity_case(tiny_cpu, sample, tiny_patterns, kernel,
                       jitter_seed=7, chunk=3, drop_detected=False)

    def test_classify_identity_across_jitter(self, tiny_cpu, tiny_faults):
        from repro.atpg.engine import AtpgEffort

        sample = tiny_faults[::13][:40]
        reference = sharded_classify(tiny_cpu, sample,
                                     effort=AtpgEffort.RANDOM, jobs=1,
                                     backend="serial", random_patterns=32)
        for jitter_seed in (1, 23):
            pool = WorkerPool(2, jitter_seed=jitter_seed)
            try:
                pooled = sharded_classify(tiny_cpu, sample,
                                          effort=AtpgEffort.RANDOM,
                                          jobs=2, pool=pool, chunk=4,
                                          random_patterns=32)
            finally:
                pool.close()
            assert pooled.classifications == reference.classifications

    def test_spawn_start_method_identity(self, tiny_cpu, tiny_faults,
                                         tiny_patterns):
        sample = tiny_faults[::7][:40]
        serial = FaultSimulator(tiny_cpu).run(sample, tiny_patterns)
        pool = WorkerPool(2, start_method="spawn")
        try:
            sharded = ShardedFaultSimulator(tiny_cpu, jobs=2, pool=pool)
            pooled = sharded.run(sample, tiny_patterns)
        finally:
            pool.close()
        assert pooled.detected == serial.detected
        assert pooled.undetected == serial.undetected
        assert pooled.detecting_pattern == serial.detecting_pattern


# --------------------------------------------------------------------- #
# worker death mid-round
# --------------------------------------------------------------------- #
class TestWorkerDeath:
    def test_kill_9_requeues_and_restarts(self, tiny_cpu):
        pool = WorkerPool(2, start_method="fork")
        try:
            key = pool.ensure_job("probe:sleepy",
                                  lambda: _EchoJob(tiny_cpu, delay=0.03))
            results = []
            killed = False
            with pool.session(key) as run:
                for i in range(14):
                    run.submit("run", (i, i), tag=i)
                for _tag, _task, outcome in run.results():
                    results.append(outcome)
                    if not killed:
                        victim = pool.worker_pids()[0]
                        os.kill(victim, signal.SIGKILL)
                        killed = True
            # Every chunk completed exactly once with the right value...
            assert sorted(cid for cid, _, _ in results) == list(range(14))
            assert all(doubled == cid * 2
                       for cid, doubled, _ in results)
            # ... and the death was surfaced, not hung over.
            assert pool.stats["worker_restarts"] >= 1
        finally:
            pool.close()

    def test_death_during_grading_keeps_identity(self, tiny_cpu,
                                                 tiny_faults,
                                                 tiny_patterns):
        sample = tiny_faults[::3]
        serial = FaultSimulator(tiny_cpu).run(sample, tiny_patterns)
        pool = WorkerPool(2, start_method="fork", jitter_seed=3)
        try:
            sharded = ShardedFaultSimulator(tiny_cpu, jobs=2, pool=pool,
                                            chunk=2)
            # Prime the pool, then murder a worker between rounds: the
            # replacement must be re-provisioned from the payload cache.
            pids = pool.worker_pids()
            os.kill(pids[-1], signal.SIGKILL)
            time.sleep(0.05)
            pooled = sharded.run(sample, tiny_patterns)
        finally:
            pool.close()
        assert pooled.detected == serial.detected
        assert pooled.undetected == serial.undetected
        assert pooled.detecting_pattern == serial.detecting_pattern
        assert pool.stats["worker_restarts"] >= 1
