"""Unit tests for constant propagation and the implication engine."""

import pytest

from repro.atpg.implication import ImplicationEngine, implied_constants
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1

from tests.conftest import build_and_or_circuit


class TestImpliedConstants:
    def test_no_ties_means_only_structural_constants(self, and_or_circuit):
        constants = implied_constants(and_or_circuit)
        assert constants == {}

    def test_tie_propagates_through_or(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        constants = implied_constants(and_or_circuit)
        assert constants["c"] == LOGIC_1
        assert constants["y"] == LOGIC_1        # OR with a controlling 1
        assert constants["z"] == LOGIC_0        # inverter of c
        and_net = and_or_circuit.instance("and2_0").pin("Y").net.name
        assert and_net not in constants         # still depends on a, b

    def test_tie_zero_does_not_control_or(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_0
        constants = implied_constants(and_or_circuit)
        assert constants["c"] == LOGIC_0
        assert "y" not in constants

    def test_extra_constants_parameter(self, and_or_circuit):
        constants = implied_constants(and_or_circuit, extra_constants={"a": LOGIC_0})
        and_net = and_or_circuit.instance("and2_0").pin("Y").net.name
        assert constants[and_net] == LOGIC_0

    def test_tie_cells_produce_constants(self):
        b = NetlistBuilder("m")
        y = b.add_output("y")
        one = b.tie1()
        a = b.add_input("a")
        b.gate("AND2", one, a, output=y)
        constants = implied_constants(b.build())
        assert constants[one] == LOGIC_1
        assert "y" not in constants


class TestImplicationEngine:
    def test_can_take_respects_constants(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        engine = ImplicationEngine(and_or_circuit)
        assert engine.constant_of("y") == LOGIC_1
        assert engine.can_take("y", LOGIC_1)
        assert not engine.can_take("y", LOGIC_0)
        assert engine.can_take("a", LOGIC_0) and engine.can_take("a", LOGIC_1)

    def test_propagation_blocked_by_controlling_side_input(self, and_or_circuit):
        # Tie c to 1: the OR gate's other input (the AND output) is blocked.
        and_or_circuit.net("c").tied = LOGIC_1
        engine = ImplicationEngine(and_or_circuit)
        or_gate = and_or_circuit.instance("or2_0")
        assert engine.propagation_blocked(or_gate, "A")
        # The inverter is never blocked.
        inv = and_or_circuit.instance("inv_0")
        assert not engine.propagation_blocked(inv, "A")

    def test_and_gate_blocking(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        c = b.add_input("b")
        y = b.add_output("y")
        b.gate("AND2", a, c, output=y)
        netlist = b.build()
        netlist.net("b").tied = LOGIC_0
        engine = ImplicationEngine(netlist)
        assert engine.propagation_blocked(netlist.instance("and2_0"), "A")
        netlist.net("b").tied = LOGIC_1
        engine = ImplicationEngine(netlist)
        assert not engine.propagation_blocked(netlist.instance("and2_0"), "A")

    def test_mux_blocking(self):
        b = NetlistBuilder("m")
        s = b.add_input("s")
        d0 = b.add_input("d0")
        d1 = b.add_input("d1")
        y = b.add_output("y")
        b.mux(s, d0, d1, output=y)
        netlist = b.build()
        netlist.net("s").tied = LOGIC_0
        engine = ImplicationEngine(netlist)
        mux = netlist.instance("mux2_0")
        assert engine.propagation_blocked(mux, "D1")
        assert not engine.propagation_blocked(mux, "D0")

    def test_mux_select_blocked_when_data_equal_constants(self):
        b = NetlistBuilder("m")
        s = b.add_input("s")
        y = b.add_output("y")
        zero_a = b.tie0()
        zero_b = b.tie0()
        b.mux(s, zero_a, zero_b, output=y)
        engine = ImplicationEngine(b.build())
        mux = [i for i in engine.netlist.instances.values() if i.cell.name == "MUX2"][0]
        assert engine.propagation_blocked(mux, "S")

    def test_scan_cell_blocking(self, scan_cell_circuit):
        # SE tied to the functional value (0) blocks the SI leg.
        scan_cell_circuit.net("se").tied = LOGIC_0
        engine = ImplicationEngine(scan_cell_circuit)
        cell = scan_cell_circuit.instance("u_sdff")
        assert engine.propagation_blocked(cell, "SI")
        assert not engine.propagation_blocked(cell, "D")
        # SE tied to 1 blocks the functional leg instead.
        scan_cell_circuit.net("se").tied = LOGIC_1
        engine = ImplicationEngine(scan_cell_circuit)
        assert engine.propagation_blocked(cell, "D")
        assert not engine.propagation_blocked(cell, "SI")

    def test_debug_cell_blocking(self, debug_cell_circuit):
        debug_cell_circuit.net("de").tied = LOGIC_0
        engine = ImplicationEngine(debug_cell_circuit)
        cell = debug_cell_circuit.instance("u_dbgff")
        assert engine.propagation_blocked(cell, "DI")
        assert not engine.propagation_blocked(cell, "D")

    def test_reset_active_blocks_data(self, constant_dff_circuit):
        constant_dff_circuit.net("rst_n").tied = LOGIC_0
        engine = ImplicationEngine(constant_dff_circuit)
        ff = constant_dff_circuit.instance("u_addr_ff")
        assert engine.propagation_blocked(ff, "D")
