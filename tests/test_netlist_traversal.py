"""Unit tests for netlist traversal: levelisation, cones, reachability."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import INPUT, OUTPUT, Netlist
from repro.netlist.traversal import (
    CombinationalLoopError,
    combinational_levels,
    fanin_cone,
    fanout_cone,
    pseudo_primary_inputs,
    pseudo_primary_outputs,
    reachable_output_ports,
    topological_instances,
)


def chain_circuit():
    """a -> INV -> AND(with b) -> DFF -> INV -> y"""
    b = NetlistBuilder("chain")
    a = b.add_input("a")
    bb = b.add_input("b")
    clk = b.add_input("clk")
    y = b.add_output("y")
    n1 = b.inv(a)
    n2 = b.gate("AND2", n1, bb)
    q = b.dff(n2, clk, name="ff")
    b.inv(q, output=y)
    return b.build()


class TestTopological:
    def test_order_respects_dependencies(self):
        netlist = chain_circuit()
        order = [i.name for i in topological_instances(netlist)]
        assert order.index("inv_0") < order.index("and2_0")
        assert "ff" not in order  # sequential cells excluded

    def test_levels_monotonic(self):
        netlist = chain_circuit()
        levels = combinational_levels(netlist)
        assert levels["inv_0"] == 0
        assert levels["and2_0"] == 1

    def test_loop_detection(self):
        netlist = Netlist("loop")
        netlist.add_port("a", INPUT)
        netlist.add_instance("g1", "AND2", {"A": "a", "B": "n2", "Y": "n1"})
        netlist.add_instance("g2", "INV", {"A": "n1", "Y": "n2"})
        with pytest.raises(CombinationalLoopError):
            topological_instances(netlist)

    def test_sequential_break_no_loop(self):
        # A feedback path through a flip-flop is not a combinational loop.
        netlist = Netlist("seqloop")
        netlist.add_port("clk", INPUT)
        netlist.add_port("a", INPUT)
        netlist.add_instance("g1", "AND2", {"A": "a", "B": "q", "Y": "d"})
        netlist.add_instance("ff", "DFF", {"D": "d", "CK": "clk", "Q": "q"})
        assert len(topological_instances(netlist)) == 1


class TestPseudoPrimary:
    def test_pseudo_inputs_include_ports_and_ff_outputs(self):
        netlist = chain_circuit()
        names = {net.name for net in pseudo_primary_inputs(netlist)}
        assert {"a", "b", "clk"} <= names
        assert any(name.startswith("q") for name in names)

    def test_pseudo_outputs_include_ports_and_ff_inputs(self):
        netlist = chain_circuit()
        points = pseudo_primary_outputs(netlist)
        port_points = [p for p in points if isinstance(p, str)]
        pin_points = [p for p in points if not isinstance(p, str)]
        assert "y" in port_points
        assert any(p.instance.name == "ff" for p in pin_points)

    def test_unobservable_port_excluded(self):
        netlist = chain_circuit()
        netlist.unobservable_ports.add("y")
        assert "y" not in pseudo_primary_outputs(netlist)
        assert "y" in pseudo_primary_outputs(netlist, include_unobservable=True)


class TestCones:
    def test_fanin_cone_stops_at_ff(self):
        netlist = chain_circuit()
        cone = fanin_cone(netlist, "y")
        assert "ff" in cone
        assert "and2_0" not in cone  # behind the flip-flop

    def test_fanin_cone_through_sequential(self):
        netlist = chain_circuit()
        cone = fanin_cone(netlist, "y", through_sequential=True)
        assert "and2_0" in cone and "inv_0" in cone

    def test_fanout_cone_stops_at_ff(self):
        netlist = chain_circuit()
        cone = fanout_cone(netlist, "a")
        assert "inv_0" in cone and "and2_0" in cone and "ff" in cone
        assert "inv_1" not in cone

    def test_fanout_cone_through_sequential(self):
        netlist = chain_circuit()
        cone = fanout_cone(netlist, "a", through_sequential=True)
        assert "inv_1" in cone

    def test_reachable_output_ports(self):
        netlist = chain_circuit()
        assert reachable_output_ports(netlist, "a") == {"y"}
        netlist.unobservable_ports.add("y")
        # reachable_output_ports reports structural reachability to ports
        # regardless of observability annotations.
        assert reachable_output_ports(netlist, "a") == {"y"}
