"""Integration tests: the full paper flow on generated cores, cross-module
consistency, and soundness of the identified on-line untestable faults."""

import pytest

from repro.atpg.podem import Podem, PodemStatus
from repro.core.flow import FlowConfig, OnlineUntestableFlow
from repro.faults.categories import OnlineUntestableSource
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.disconnect import disconnect_output_port
from repro.manipulation.tie import tie_port
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.scan.chain_tracer import trace_scan_chains
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


class TestSmallCoreFlow:
    @pytest.fixture(scope="class")
    def small_report(self, small_soc):
        return OnlineUntestableFlow(small_soc).run()

    def test_small_core_proportions(self, small_soc, small_report):
        """On the mid-size core the Table-I shape emerges: scan is the largest
        source and the total lands in the 5%-30% band."""
        report = small_report
        scan = report.source_count(OnlineUntestableSource.SCAN)
        assert scan == max(s.count for s in report.sources)
        fraction = report.total_online_untestable / report.total_faults
        assert 0.05 < fraction < 0.30

    def test_debug_split_reported(self, small_report):
        ctrl = small_report.source_count(OnlineUntestableSource.DEBUG_CONTROL)
        obs = small_report.source_count(OnlineUntestableSource.DEBUG_OBSERVE)
        assert ctrl > 0 and obs > 0

    def test_scan_count_matches_chain_structure(self, small_soc, small_report):
        chains = trace_scan_chains(small_soc.cpu)
        cells = sum(c.length for c in chains)
        scan_identified = len(small_report.scan_result.untestable)
        # 3 cell-pin faults per scan cell plus path-buffer and port faults.
        assert scan_identified >= 3 * cells

    def test_report_runtime_reasonable(self, small_report):
        # The paper stresses the analysis itself is fast (< 1 s on the
        # industrial design with TetraMax); our pure-Python engine should
        # stay within interactive bounds on the mid-size core.
        assert sum(small_report.runtimes.values()) < 120.0


class TestSoundnessOnTinyCore:
    """Every fault the flow prunes must be genuinely untestable: PODEM on the
    appropriately manipulated circuit must fail to generate a test."""

    @pytest.fixture(scope="class")
    def mission_netlist(self, tiny_soc):
        """The tiny core with its full mission configuration applied."""
        netlist = tiny_soc.cpu.clone("mission_view")
        interface = tiny_soc.debug_interface
        for port, value in interface.control_inputs.items():
            tie_port(netlist, port, value)
        for port in interface.observation_outputs:
            disconnect_output_port(netlist, port)
        # Scan is unusable in the field: scan enable held in functional mode,
        # scan-in pins grounded.
        scan = tiny_soc.cpu.annotations["scan_insertion"]
        tie_port(netlist, scan["scan_enable_port"], 0)
        for port in scan["scan_in_ports"]:
            tie_port(netlist, port, 0)
        for port in scan["scan_out_ports"]:
            disconnect_output_port(netlist, port)
        # Frozen address bits: as in §3.3 of the paper, both the input and the
        # output of every flip-flop storing a frozen bit are tied (the mission
        # software never generates addresses outside the memory map).
        from repro.memory.analysis import constant_address_bits

        constants = constant_address_bits(tiny_soc.memory_map)
        for record in tiny_soc.cpu.annotations["address_registers"]:
            for ff, q_net, bit in zip(record["ff_instances"], record["q_nets"],
                                      record["address_bits"]):
                if bit not in constants:
                    continue
                value = constants[bit]
                if netlist.nets[q_net].tied is None:
                    netlist.nets[q_net].tied = value
                ff_inst = netlist.instance(ff)
                data_pin_name = ff_inst.cell.role_pin("data")
                data_net = ff_inst.pin(data_pin_name).net
                if data_net is not None and data_net.tied is None:
                    data_net.tied = value
        return netlist

    def test_sampled_pruned_faults_are_untestable_in_mission_view(
            self, tiny_soc, tiny_flow_report, mission_netlist):
        podem = Podem(mission_netlist, backtrack_limit=2000)
        pruned = sorted(tiny_flow_report.online_untestable)
        sample = pruned[:: max(1, len(pruned) // 60)][:60]
        for fault in sample:
            result = podem.generate(fault)
            assert result.status in (PodemStatus.UNTESTABLE, PodemStatus.ABORTED), (
                f"{fault} was pruned but PODEM found a test in the mission view")


class TestCrossModuleConsistency:
    def test_flow_on_verilog_round_tripped_core(self, tiny_soc, tiny_flow_report):
        """Writing the core to Verilog, parsing it back and re-running the flow
        must identify the same number of faults per source (annotations are
        re-attached to the parsed netlist)."""
        parsed = parse_verilog(write_verilog(tiny_soc.cpu))
        parsed.annotations = dict(tiny_soc.cpu.annotations)
        report = OnlineUntestableFlow(parsed, memory_map=tiny_soc.memory_map).run()
        for source in OnlineUntestableSource:
            if source is OnlineUntestableSource.STRUCTURAL:
                continue
            assert (report.source_count(source)
                    == tiny_flow_report.source_count(source)), source

    def test_fault_universe_sizes_agree(self, tiny_soc, tiny_flow_report):
        assert tiny_flow_report.total_faults == len(generate_fault_list(tiny_soc.cpu))

    def test_building_twice_gives_identical_netlists(self):
        first = build_soc(SoCConfig.tiny())
        second = build_soc(SoCConfig.tiny())
        assert first.cpu.stats() == second.cpu.stats()
        assert set(first.cpu.instances) == set(second.cpu.instances)
        assert set(first.cpu.nets) == set(second.cpu.nets)
