"""Unit tests for the D-algebra and the PODEM test generator."""

import itertools

import pytest

from repro.atpg.d_algebra import (
    FIVE_D,
    FIVE_DBAR,
    FIVE_ONE,
    FIVE_X,
    FIVE_ZERO,
    evaluate_cell,
    from_logic,
    is_definite,
    is_faulted,
    label,
)
from repro.atpg.podem import Podem, PodemStatus
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1, standard_library
from repro.simulation.fault_sim import FaultSimulator

from tests.conftest import all_input_patterns, build_and_or_circuit


class TestDAlgebra:
    def test_predicates(self):
        assert is_faulted(FIVE_D) and is_faulted(FIVE_DBAR)
        assert not is_faulted(FIVE_ONE) and not is_faulted(FIVE_X)
        assert is_definite(FIVE_ZERO) and not is_definite(FIVE_X)

    def test_labels(self):
        assert label(FIVE_D) == "D"
        assert label(FIVE_DBAR) == "D'"
        assert label(FIVE_ONE) == "1"
        assert label(FIVE_X) == "X"
        assert label((LOGIC_0, 2)) == "0/X"

    def test_from_logic(self):
        assert from_logic(LOGIC_1) == FIVE_ONE

    def test_d_propagation_through_and(self):
        cell = standard_library().get("AND2")
        out = evaluate_cell(cell, {"A": FIVE_D, "B": FIVE_ONE})["Y"]
        assert out == FIVE_D
        out = evaluate_cell(cell, {"A": FIVE_D, "B": FIVE_ZERO})["Y"]
        assert out == FIVE_ZERO

    def test_d_inversion_through_inv(self):
        cell = standard_library().get("INV")
        assert evaluate_cell(cell, {"A": FIVE_D})["Y"] == FIVE_DBAR

    def test_d_collision_in_xor(self):
        cell = standard_library().get("XOR2")
        assert evaluate_cell(cell, {"A": FIVE_D, "B": FIVE_D})["Y"] == FIVE_ZERO


def redundant_circuit():
    """y = (a & b) | (a & ~b) | a  — the last OR input makes part of the logic
    redundant: the fault "extra AND output s-a-0" cannot be observed."""
    b = NetlistBuilder("redundant")
    a = b.add_input("a")
    bb = b.add_input("b")
    y = b.add_output("y")
    nb = b.inv(bb)
    t1 = b.gate("AND2", a, bb, name="u_t1")
    t2 = b.gate("AND2", a, nb, name="u_t2")
    stage = b.gate("OR2", t1, t2, name="u_or1")
    b.gate("OR2", stage, a, output=y, name="u_or2")
    return b.build()


class TestPodemDetection:
    def test_generates_tests_for_irredundant_circuit(self, and_or_circuit):
        podem = Podem(and_or_circuit)
        sim = FaultSimulator(and_or_circuit)
        faults = generate_fault_list(and_or_circuit, include_ports=False).faults()
        for fault in faults:
            result = podem.generate(fault)
            assert result.status is PodemStatus.DETECTED, f"{fault} not detected"
            # The produced pattern must actually detect the fault.
            pattern = {p: result.pattern.get(p, 0) for p in ("a", "b", "c")}
            assert sim.detects(fault, pattern), f"pattern fails for {fault}"

    def test_detects_fault_behind_reconvergence(self):
        netlist = redundant_circuit()
        podem = Podem(netlist)
        # a s-a-0 is clearly detectable (set a=1, observe y).
        result = podem.generate(StuckAtFault("a", SA0))
        assert result.status is PodemStatus.DETECTED

    def test_pattern_uses_controllable_points_only(self, and_or_circuit):
        podem = Podem(and_or_circuit)
        result = podem.generate(StuckAtFault("or2_0/A", SA1))
        assert result.status is PodemStatus.DETECTED
        assert set(result.pattern) <= {"a", "b", "c"}

    def test_ff_outputs_are_controllable(self):
        b = NetlistBuilder("m")
        clk = b.add_input("clk")
        d = b.add_input("d")
        y = b.add_output("y")
        q = b.dff(d, clk, name="ff")
        b.inv(q, output=y)
        podem = Podem(b.build())
        result = podem.generate(StuckAtFault("inv_0/A", SA0))
        assert result.status is PodemStatus.DETECTED
        assert q in result.pattern


class TestPodemUntestable:
    def test_redundant_fault_proven_untestable(self):
        netlist = redundant_circuit()
        podem = Podem(netlist, backtrack_limit=1000)
        # With y = (a&b) | (a&~b) | a == a, the first-stage OR output s-a-1
        # can never be distinguished (the direct "a" input dominates when the
        # stage could be excited): u_or1/Y s-a-1 requires a=0 to excite, but
        # then the fault effect is masked by... a=0 on the other OR leg makes
        # it propagate -- instead check the classic undetectable fault:
        # u_t1/Y stuck-at-0 is detectable; u_or1/Y s-a-0 requires the stage
        # to be 1 (a=1) but then the parallel direct "a" leg masks it.
        result = podem.generate(StuckAtFault("u_or1/Y", SA0))
        assert result.status is PodemStatus.UNTESTABLE

    def test_tied_fault_site_is_untestable(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        podem = Podem(and_or_circuit)
        result = podem.generate(StuckAtFault("c", SA1))
        assert result.status is PodemStatus.UNTESTABLE

    def test_blocked_propagation_untestable(self, and_or_circuit):
        # c tied to 1 controls the OR: faults on the AND cone cannot propagate.
        and_or_circuit.net("c").tied = LOGIC_1
        podem = Podem(and_or_circuit)
        result = podem.generate(StuckAtFault("and2_0/A", SA0))
        assert result.status is PodemStatus.UNTESTABLE

    def test_unconnected_site_untestable(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        y = b.add_output("y")
        b.cell("HA", {"A": a, "B": a, "S": y}, name="u_ha")  # CO unconnected
        podem = Podem(b.build())
        result = podem.generate(StuckAtFault("u_ha/CO", SA1))
        assert result.status is PodemStatus.UNTESTABLE

    def test_unobservable_output_makes_cone_untestable(self, and_or_circuit):
        and_or_circuit.unobservable_ports.update({"y", "z"})
        podem = Podem(and_or_circuit)
        result = podem.generate(StuckAtFault("and2_0/A", SA0))
        assert result.status is PodemStatus.UNTESTABLE


class TestPodemAgainstExhaustiveSimulation:
    def test_podem_verdicts_match_exhaustive_fault_simulation(self):
        """For a small reconvergent circuit, PODEM's DETECTED/UNTESTABLE verdicts
        must agree with exhaustive fault simulation over all input patterns."""
        netlist = redundant_circuit()
        podem = Podem(netlist, backtrack_limit=5000)
        sim = FaultSimulator(netlist)
        patterns = list(all_input_patterns(["a", "b"]))
        faults = generate_fault_list(netlist, include_ports=False).faults()
        for fault in faults:
            detectable = any(sim.detects(fault, p) for p in patterns)
            result = podem.generate(fault)
            if detectable:
                assert result.status is PodemStatus.DETECTED, fault
            else:
                assert result.status is PodemStatus.UNTESTABLE, fault
