"""JSON round-trips of OnlineUntestableReport (and facet-aware cache keys)."""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from repro.core.results import OnlineUntestableReport, SourceSummary
from repro.faults.categories import OnlineUntestableSource
from repro.faults.fault import StuckAtFault
from repro.pipeline import DEFAULT_REGISTRY
from repro.pipeline.context import CONFIG_FACETS, PipelineContext


@pytest.fixture(scope="module")
def tiny_report(tiny_soc):
    return Session().analyze(tiny_soc)


class TestReportRoundTrip:
    def test_round_trip_preserves_the_table(self, tiny_report):
        restored = OnlineUntestableReport.from_json(tiny_report.to_json())
        assert restored.netlist_name == tiny_report.netlist_name
        assert restored.total_faults == tiny_report.total_faults
        assert restored.baseline_untestable == tiny_report.baseline_untestable
        assert restored.online_untestable == tiny_report.online_untestable
        assert restored.table_rows() == tiny_report.table_rows()
        assert restored.runtimes.keys() == tiny_report.runtimes.keys()
        for ours, theirs in zip(restored.sources, tiny_report.sources):
            assert ours.source is theirs.source
            assert ours.identified == theirs.identified
            assert ours.attributed == theirs.attributed

    def test_detail_objects_are_not_serialized(self, tiny_report):
        assert tiny_report.scan_result is not None
        restored = OnlineUntestableReport.from_json(tiny_report.to_json())
        assert restored.scan_result is None

    def test_json_document_shape(self, tiny_report):
        document = json.loads(tiny_report.to_json())
        assert document["schema"] == 1
        assert document["total_online_untestable"] == (
            tiny_report.total_online_untestable)
        assert all(" s-a-" in text
                   for text in document["baseline_untestable"][:5])
        assert document["table"] == tiny_report.table_rows()

    def test_custom_source_labels_survive(self):
        report = OnlineUntestableReport(netlist_name="n", total_faults=4)
        report.sources.append(SourceSummary(
            source=OnlineUntestableSource.SCAN,
            identified={StuckAtFault("a/B", 0)},
            attributed={StuckAtFault("a/B", 0)}))
        report.sources.append(SourceSummary(
            source="reset_tree",  # a custom pass source, not an enum member
            identified={StuckAtFault("rst", 1)},
            attributed={StuckAtFault("rst", 1)}))
        restored = OnlineUntestableReport.from_json(report.to_json())
        assert restored.sources[0].source is OnlineUntestableSource.SCAN
        assert restored.sources[1].source == "reset_tree"
        assert restored.online_untestable == report.online_untestable


class TestFacetKeys:
    def test_effort_blind_passes_share_keys_across_efforts(self, tiny_soc):
        from repro.core.results import FlowConfig
        from repro.atpg.engine import AtpgEffort

        tie = PipelineContext(tiny_soc.cpu,
                              config=FlowConfig(effort=AtpgEffort.TIE),
                              memory_map=tiny_soc.memory_map)
        full = PipelineContext(tiny_soc.cpu,
                               config=FlowConfig(effort=AtpgEffort.FULL),
                               memory_map=tiny_soc.memory_map)
        scan = DEFAULT_REGISTRY.get("scan_analysis")
        fault_list = DEFAULT_REGISTRY.get("fault_list")
        baseline = DEFAULT_REGISTRY.get("baseline")

        # Effort-blind passes replay across efforts; baseline must not.
        assert tie.cache_key(scan) == full.cache_key(scan)
        assert tie.cache_key(fault_list) == full.cache_key(fault_list)
        assert tie.cache_key(baseline) != full.cache_key(baseline)

        # Plain-name keys keep the always-safe full configuration key.
        assert tie.cache_key("anything")[1] == tie.config_key

    def test_unknown_facet_is_rejected(self, tiny_soc):
        ctx = PipelineContext(tiny_soc.cpu)
        with pytest.raises(ValueError, match="unknown cache facet"):
            ctx.config_key_for(("voltage",))
        assert ctx.config_key_for(CONFIG_FACETS) == ctx.config_key
