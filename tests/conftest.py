"""Shared fixtures: small hand-built circuits and generated cores.

The expensive generated objects (tiny/small SoCs, their fault lists and flow
reports) are session-scoped so the many tests that need them share one build.
"""

from __future__ import annotations

import itertools

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import standard_library
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


@pytest.fixture(scope="session")
def library():
    return standard_library()


def build_and_or_circuit():
    """y = (a & b) | c with an inverter tap on c — a tiny reference circuit."""
    b = NetlistBuilder("and_or")
    a = b.add_input("a")
    bb = b.add_input("b")
    c = b.add_input("c")
    y = b.add_output("y")
    z = b.add_output("z")
    ab = b.gate("AND2", a, bb)
    b.gate("OR2", ab, c, output=y)
    b.inv(c, output=z)
    return b.build()


def build_mux_scan_cell_circuit():
    """A single mux-scan flip-flop with its pins exposed (paper Fig. 2)."""
    b = NetlistBuilder("scan_cell")
    d = b.add_input("fi")
    si = b.add_input("si")
    se = b.add_input("se")
    clk = b.add_input("clk")
    q = b.add_output("fo")
    b.cell("SDFF", {"D": d, "SI": si, "SE": se, "CK": clk, "Q": q}, name="u_sdff")
    return b.build()


def build_debug_cell_circuit():
    """A single debug-controllable flip-flop (paper Fig. 4)."""
    b = NetlistBuilder("debug_cell")
    d = b.add_input("fi")
    di = b.add_input("di")
    de = b.add_input("de")
    clk = b.add_input("clk")
    q = b.add_output("fo")
    do = b.add_output("do")
    b.cell("DBGFF", {"D": d, "DI": di, "DE": de, "CK": clk, "Q": q}, name="u_dbgff")
    b.buf(q, output=do, name="u_do_buf")
    netlist = b.build()
    netlist.annotations["debug_interface"] = {
        "control_inputs": {"di": 0, "de": 0},
        "observation_outputs": ["do"],
    }
    return netlist


def build_constant_dff_circuit():
    """A resettable DFF whose data input is frozen (paper Fig. 5 / Fig. 6)."""
    b = NetlistBuilder("constant_dff")
    d = b.add_input("d")
    rst_n = b.add_input("rst_n")
    clk = b.add_input("clk")
    other = b.add_input("other")
    y = b.add_output("y")
    q = b.dff(d, clk, reset_n=rst_n, name="u_addr_ff")
    b.gate("AND2", q, other, output=y)
    return b.build()


def build_small_adder_circuit(width: int = 4):
    """A ripple adder with registered output — used by simulation tests."""
    from repro.soc.generators import ripple_adder

    b = NetlistBuilder(f"adder{width}")
    a = b.add_input_bus("a", width)
    c = b.add_input_bus("b", width)
    clk = b.add_input("clk")
    s_ports = b.add_output_bus("s", width)
    co_port = b.add_output("co")
    total, carry = ripple_adder(b, a, c)
    for i in range(width):
        b.dff(total[i], clk, q=b.new_net(f"sr{i}"), name=f"sreg{i}")
        b.buf(total[i], output=s_ports[i])
    b.buf(carry, output=co_port)
    return b.build()


@pytest.fixture()
def and_or_circuit():
    return build_and_or_circuit()


@pytest.fixture()
def scan_cell_circuit():
    return build_mux_scan_cell_circuit()


@pytest.fixture()
def debug_cell_circuit():
    return build_debug_cell_circuit()


@pytest.fixture()
def constant_dff_circuit():
    return build_constant_dff_circuit()


@pytest.fixture()
def adder_circuit():
    return build_small_adder_circuit()


@pytest.fixture(scope="session")
def tiny_soc():
    return build_soc(SoCConfig.tiny())


@pytest.fixture(scope="session")
def small_soc():
    return build_soc(SoCConfig.small())


@pytest.fixture(scope="session")
def tiny_flow_report(tiny_soc):
    from repro.core.flow import OnlineUntestableFlow

    return OnlineUntestableFlow(tiny_soc).run()


def all_input_patterns(port_names):
    """Every 0/1 assignment over the given ports (for exhaustive checks)."""
    for values in itertools.product((0, 1), repeat=len(port_names)):
        yield dict(zip(port_names, values))
