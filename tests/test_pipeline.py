"""Tests for the composable analysis-pass pipeline (repro.pipeline).

Covers the registry (registration, lookup, duplicates), dependency
resolution (transitive providers, missing providers, cycle detection),
pass skipping, caching, and — the acceptance criterion of the refactor —
fault-for-fault equivalence of the pipeline (serial and parallel) with the
legacy ``OnlineUntestableFlow`` report.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.flow import FlowConfig, OnlineUntestableFlow
from repro.faults.categories import OnlineUntestableSource
from repro.pipeline import (AnalysisPass, ArtifactCache, DependencyCycleError,
                            FunctionPass, PassRegistrationError, PassRegistry,
                            PassResult, Pipeline, PipelineError,
                            analysis_pass, default_pass_names,
                            netlist_signature)


def make_pass(name, requires=(), provides=(), source=None, fn=None, when=None):
    return FunctionPass(fn or (lambda ctx: PassResult(
        artifacts={key: name for key in provides})),
        name=name, source=source, requires=requires, provides=provides,
        when=when)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_register_and_lookup(self):
        registry = PassRegistry()
        pass_ = make_pass("p1", provides=("a",))
        registry.register(pass_)
        assert registry.get("p1") is pass_
        assert "p1" in registry
        assert registry.names() == ["p1"]

    def test_duplicate_name_rejected(self):
        registry = PassRegistry()
        registry.register(make_pass("p1"))
        with pytest.raises(PassRegistrationError):
            registry.register(make_pass("p1"))

    def test_unknown_name_lists_known_passes(self):
        registry = PassRegistry()
        registry.register(make_pass("known"))
        with pytest.raises(KeyError, match="known"):
            registry.get("unknown")

    def test_decorator_registers_function_pass(self):
        registry = PassRegistry()

        @analysis_pass("deco", provides=("x",), registry=registry)
        def deco(ctx):
            return PassResult(artifacts={"x": 42})

        assert isinstance(deco, FunctionPass)
        assert isinstance(deco, AnalysisPass)  # protocol check
        assert registry.get("deco") is deco

    def test_provider_lookup(self):
        registry = PassRegistry()
        pass_ = make_pass("p1", provides=("a", "b"))
        registry.register(pass_)
        assert registry.provider_of("b") is pass_
        assert registry.provider_of("zzz") is None

    def test_builtin_passes_registered(self):
        for name in ("fault_list", "baseline", "scan_analysis",
                     "debug_control", "debug_observe", "memory_analysis"):
            from repro.pipeline import DEFAULT_REGISTRY
            assert name in DEFAULT_REGISTRY


# --------------------------------------------------------------------- #
# dependency resolution
# --------------------------------------------------------------------- #
class TestResolution:
    def test_topological_order(self):
        registry = PassRegistry()
        registry.register(make_pass("c", requires=("b_out",), provides=("c_out",)))
        registry.register(make_pass("a", provides=("a_out",)))
        registry.register(make_pass("b", requires=("a_out",), provides=("b_out",)))
        pipeline = Pipeline(["c", "a", "b"], registry=registry)
        order = pipeline.pass_names
        assert order.index("a") < order.index("b") < order.index("c")

    def test_transitive_providers_pulled_in(self):
        """Selecting only the leaf pass pulls in its whole provider chain."""
        registry = PassRegistry()
        registry.register(make_pass("a", provides=("a_out",)))
        registry.register(make_pass("b", requires=("a_out",), provides=("b_out",)))
        registry.register(make_pass("c", requires=("b_out",), provides=("c_out",)))
        pipeline = Pipeline(["c"], registry=registry)
        assert pipeline.pass_names == ["a", "b", "c"]

    def test_missing_provider_is_an_error(self):
        registry = PassRegistry()
        registry.register(make_pass("lonely", requires=("nothing_makes_this",)))
        with pytest.raises(PipelineError, match="nothing_makes_this"):
            Pipeline(["lonely"], registry=registry)

    def test_cycle_detection(self):
        registry = PassRegistry()
        registry.register(make_pass("x", requires=("y_out",), provides=("x_out",)))
        registry.register(make_pass("y", requires=("x_out",), provides=("y_out",)))
        with pytest.raises(DependencyCycleError, match="x.*y|y.*x"):
            Pipeline(["x", "y"], registry=registry)

    def test_duplicate_artifact_provider_is_an_error(self):
        registry = PassRegistry()
        registry.register(make_pass("p1", provides=("dup",)))
        registry.register(make_pass("p2", provides=("dup",)))
        with pytest.raises(PipelineError, match="dup"):
            Pipeline(["p1", "p2"], registry=registry)

    def test_default_pass_names_honour_flow_config(self):
        config = FlowConfig(run_scan=False, run_memory_map=False)
        names = default_pass_names(config)
        assert "scan_analysis" not in names
        assert "memory_analysis" not in names
        assert "debug_control" in names and "baseline" in names


# --------------------------------------------------------------------- #
# execution & skipping
# --------------------------------------------------------------------- #
class TestExecution:
    def test_memory_pass_skipped_without_memory_map(self, tiny_soc):
        clone = tiny_soc.cpu.clone("no_memmap")
        clone.annotations.pop("memory_map", None)
        pipeline = Pipeline(["fault_list", "baseline", "memory_analysis"])
        result = pipeline.run(clone)
        assert "memory_analysis" in result.skipped
        assert result.report.memory_result is None
        assert OnlineUntestableSource.MEMORY_MAP not in {
            s.source for s in result.report.sources}

    def test_dependents_of_skipped_pass_are_skipped(self):
        registry = PassRegistry()
        registry.register(make_pass("gate", provides=("gate_out",),
                                    when=lambda ctx: False))
        registry.register(make_pass("child", requires=("gate_out",),
                                    provides=("child_out",)))
        pipeline = Pipeline(["gate", "child"], registry=registry)

        from repro.netlist.builder import NetlistBuilder
        b = NetlistBuilder("trivial")
        b.buf(b.add_input("a"), output=b.add_output("y"))
        result = pipeline.run(b.build())
        assert "gate" in result.skipped
        assert "child" in result.skipped

    def test_pass_must_provide_declared_artifacts(self):
        registry = PassRegistry()
        registry.register(FunctionPass(
            lambda ctx: PassResult(),  # provides nothing
            name="liar", provides=("promised",)))
        pipeline = Pipeline(["liar"], registry=registry)
        from repro.netlist.builder import NetlistBuilder
        b = NetlistBuilder("trivial")
        b.buf(b.add_input("a"), output=b.add_output("y"))
        with pytest.raises(PipelineError, match="promised"):
            pipeline.run(b.build())

    def test_events_and_runtimes_recorded(self, tiny_soc):
        result = Pipeline().run(tiny_soc)
        completed = {e.pass_name for e in result.events
                     if e.status == "completed"}
        assert completed == set(result.order)
        assert set(result.runtimes) == completed
        assert all(runtime >= 0 for runtime in result.runtimes.values())


# --------------------------------------------------------------------- #
# caching
# --------------------------------------------------------------------- #
class TestCaching:
    def test_second_run_replays_from_cache(self, tiny_soc):
        cache = ArtifactCache()
        pipeline = Pipeline(cache=cache)
        first = pipeline.run(tiny_soc)
        second = pipeline.run(tiny_soc)
        assert not first.cached
        assert set(second.cached) == set(second.order)
        assert (second.report.online_untestable
                == first.report.online_untestable)
        assert [s.count for s in second.report.sources] == [
            s.count for s in first.report.sources]

    def test_structural_clone_hits_the_cache(self, tiny_soc):
        assert (netlist_signature(tiny_soc.cpu)
                == netlist_signature(tiny_soc.cpu.clone(tiny_soc.cpu.name)))

    def test_tie_changes_the_signature(self, tiny_soc):
        clone = tiny_soc.cpu.clone(tiny_soc.cpu.name)
        some_net = next(iter(clone.nets))
        clone.nets[some_net].tied = 0
        assert netlist_signature(clone) != netlist_signature(tiny_soc.cpu)


# --------------------------------------------------------------------- #
# equivalence with the legacy flow (the refactor's acceptance criterion)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def small_legacy_report(small_soc):
    return OnlineUntestableFlow(small_soc).run()


def _assert_reports_equivalent(report, legacy):
    assert report.netlist_name == legacy.netlist_name
    assert report.total_faults == legacy.total_faults
    assert report.baseline_untestable == legacy.baseline_untestable
    assert [s.source for s in report.sources] == [
        s.source for s in legacy.sources]
    for mine, theirs in zip(report.sources, legacy.sources):
        assert mine.identified == theirs.identified
        assert mine.attributed == theirs.attributed
    assert report.online_untestable == legacy.online_untestable
    # Byte-identical Table I (the percent column is derived from counts).
    assert ([{k: v for k, v in row.items() if k != "percent"}
             for row in report.table_rows()]
            == [{k: v for k, v in row.items() if k != "percent"}
                for row in legacy.table_rows()])
    assert report.to_table() == legacy.to_table()
    assert sorted(report.runtimes) == sorted(legacy.runtimes)


class TestLegacyEquivalence:
    def test_serial_pipeline_matches_legacy(self, small_soc,
                                            small_legacy_report):
        result = Pipeline().run(small_soc)
        _assert_reports_equivalent(result.report, small_legacy_report)

    def test_parallel_pipeline_matches_legacy(self, small_soc,
                                              small_legacy_report):
        result = Pipeline(parallel=True).run(small_soc)
        _assert_reports_equivalent(result.report, small_legacy_report)

    def test_analyze_entry_point_matches_legacy(self, small_soc,
                                                small_legacy_report):
        report = repro.analyze(small_soc, parallel=2)
        _assert_reports_equivalent(report, small_legacy_report)

    def test_flow_facade_with_restricted_universe(self, tiny_soc):
        from repro.faults.faultlist import generate_fault_list
        universe = [f for f in generate_fault_list(tiny_soc.cpu).faults()
                    if not f.is_port_fault][:1500]
        legacy = OnlineUntestableFlow(tiny_soc).run(faults=universe)
        report = repro.analyze(tiny_soc, faults=universe)
        _assert_reports_equivalent(report, legacy)

    def test_public_api_exports(self):
        assert set(repro.__all__) >= {
            "analyze", "Pipeline", "AnalysisPass",
            "OnlineUntestableFlow", "FlowConfig"}
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None
