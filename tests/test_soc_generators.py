"""Functional correctness tests for the parametric datapath generators.

Each generator is checked against its integer/boolean reference over either
an exhaustive or a pseudo-random operand set, simulated with the levelised
combinational simulator.
"""

import itertools
import random

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import check_netlist
from repro.simulation.simulator import CombinationalSimulator
from repro.soc.generators import (
    array_multiplier,
    barrel_shifter,
    binary_decoder,
    buffer_tree,
    equality_comparator,
    incrementer,
    mux_tree_word,
    register_word,
    ripple_adder,
    shift_register,
    subtractor,
    synthesize_function,
    zero_detector,
)
from repro.utils.bitvec import mask, to_bits


def _drive(width, name, value):
    return {f"{name}[{i}]": (value >> i) & 1 for i in range(width)}


def _read(values, nets):
    return sum(values[net] << i for i, net in enumerate(nets))


class TestArithmetic:
    def _build_binary(self, width, generator):
        b = NetlistBuilder("m")
        a = b.add_input_bus("a", width)
        c = b.add_input_bus("b", width)
        outputs = generator(b, a, c)
        netlist = b.build()
        return netlist, CombinationalSimulator(netlist), outputs

    def test_ripple_adder_exhaustive(self):
        netlist, sim, (total, carry) = self._build_binary(
            3, lambda b, a, c: ripple_adder(b, a, c))
        for x, y in itertools.product(range(8), repeat=2):
            values = sim.evaluate({**_drive(3, "a", x), **_drive(3, "b", y)})
            assert _read(values, total) + (values[carry] << 3) == x + y

    def test_subtractor_exhaustive(self):
        netlist, sim, (diff, _) = self._build_binary(
            3, lambda b, a, c: subtractor(b, a, c))
        for x, y in itertools.product(range(8), repeat=2):
            values = sim.evaluate({**_drive(3, "a", x), **_drive(3, "b", y)})
            assert _read(values, diff) == (x - y) & 0b111

    def test_incrementer_exhaustive(self):
        b = NetlistBuilder("m")
        a = b.add_input_bus("a", 4)
        total, carry = incrementer(b, a)
        sim = CombinationalSimulator(b.build())
        for x in range(16):
            values = sim.evaluate(_drive(4, "a", x))
            assert _read(values, total) + (values[carry] << 4) == x + 1

    def test_multiplier_random(self):
        rng = random.Random(7)
        b = NetlistBuilder("m")
        a = b.add_input_bus("a", 6)
        c = b.add_input_bus("b", 6)
        product = array_multiplier(b, a, c)
        sim = CombinationalSimulator(b.build())
        for _ in range(60):
            x, y = rng.randrange(64), rng.randrange(64)
            values = sim.evaluate({**_drive(6, "a", x), **_drive(6, "b", y)})
            assert _read(values, product) == x * y

    def test_multiplier_truncated_result(self):
        b = NetlistBuilder("m")
        a = b.add_input_bus("a", 4)
        c = b.add_input_bus("b", 4)
        product = array_multiplier(b, a, c, result_width=4)
        sim = CombinationalSimulator(b.build())
        for x, y in itertools.product(range(16), repeat=2):
            values = sim.evaluate({**_drive(4, "a", x), **_drive(4, "b", y)})
            assert _read(values, product) == (x * y) & 0xF

    def test_equality_comparator(self):
        netlist, sim, eq = self._build_binary(
            3, lambda b, a, c: equality_comparator(b, a, c))
        for x, y in itertools.product(range(8), repeat=2):
            values = sim.evaluate({**_drive(3, "a", x), **_drive(3, "b", y)})
            assert values[eq] == int(x == y)

    def test_zero_detector(self):
        b = NetlistBuilder("m")
        a = b.add_input_bus("a", 5)
        z = zero_detector(b, a)
        sim = CombinationalSimulator(b.build())
        for x in range(32):
            assert sim.evaluate(_drive(5, "a", x))[z] == int(x == 0)

    def test_adder_width_mismatch_rejected(self):
        b = NetlistBuilder("m")
        a = b.add_input_bus("a", 3)
        c = b.add_input_bus("b", 2)
        with pytest.raises(ValueError):
            ripple_adder(b, a, c)


class TestSteering:
    def test_mux_tree_word_selects_correct_word(self):
        b = NetlistBuilder("m")
        words = [b.add_input_bus(f"w{k}", 2) for k in range(3)]
        select = b.add_input_bus("s", 2)
        out = mux_tree_word(b, select, words)
        sim = CombinationalSimulator(b.build())
        data = {f"w{k}[{i}]": (k >> i) & 1 for k in range(3) for i in range(2)}
        for sel in range(3):
            values = sim.evaluate({**data, **_drive(2, "s", sel)})
            assert _read(values, out) == sel

    def test_mux_tree_word_empty_rejected(self):
        with pytest.raises(ValueError):
            mux_tree_word(NetlistBuilder("m"), ["s"], [])

    def test_binary_decoder_one_hot(self):
        b = NetlistBuilder("m")
        select = b.add_input_bus("s", 3)
        enable = b.add_input("en")
        outputs = binary_decoder(b, select, enable=enable)
        sim = CombinationalSimulator(b.build())
        for sel in range(8):
            values = sim.evaluate({**_drive(3, "s", sel), "en": 1})
            assert [values[o] for o in outputs] == [int(i == sel) for i in range(8)]
            values = sim.evaluate({**_drive(3, "s", sel), "en": 0})
            assert all(values[o] == 0 for o in outputs)

    def test_barrel_shifter_left(self):
        b = NetlistBuilder("m")
        data = b.add_input_bus("d", 8)
        amount = b.add_input_bus("amt", 3)
        out = barrel_shifter(b, data, amount, left=True)
        sim = CombinationalSimulator(b.build())
        for value, shift in itertools.product((0xA5, 0x3C, 0x01), range(8)):
            values = sim.evaluate({**_drive(8, "d", value), **_drive(3, "amt", shift)})
            assert _read(values, out) == (value << shift) & 0xFF

    def test_barrel_shifter_right(self):
        b = NetlistBuilder("m")
        data = b.add_input_bus("d", 8)
        amount = b.add_input_bus("amt", 3)
        out = barrel_shifter(b, data, amount, left=False)
        sim = CombinationalSimulator(b.build())
        for value, shift in itertools.product((0xA5, 0x81), range(8)):
            values = sim.evaluate({**_drive(8, "d", value), **_drive(3, "amt", shift)})
            assert _read(values, out) == (value >> shift) & 0xFF

    def test_synthesize_function_arbitrary_truth_table(self):
        def truth(code):
            return int(bin(code).count("1") % 2 == 1)  # parity

        b = NetlistBuilder("m")
        inputs = b.add_input_bus("x", 4)
        out = synthesize_function(b, inputs, truth)
        sim = CombinationalSimulator(b.build())
        for code in range(16):
            values = sim.evaluate(_drive(4, "x", code))
            assert values[out] == truth(code)


class TestStorage:
    def test_register_word_load_and_hold(self):
        b = NetlistBuilder("m")
        clk = b.add_input("clk")
        d = b.add_input_bus("d", 4)
        en = b.add_input("en")
        q = register_word(b, d, clk, en, prefix="r")
        outs = b.add_output_bus("q", 4)
        for i in range(4):
            b.buf(q[i], output=outs[i])
        from repro.simulation.sequential import SequentialSimulator

        sim = SequentialSimulator(b.build())
        sim.step({**_drive(4, "d", 0b1010), "en": 1})
        values = sim.step({**_drive(4, "d", 0b0101), "en": 0})
        assert _read(values, [f"q[{i}]" for i in range(4)]) == 0b1010

    def test_shift_register_shifts_only_when_enabled(self):
        b = NetlistBuilder("m")
        clk = b.add_input("clk")
        si = b.add_input("si")
        en = b.add_input("en")
        q = shift_register(b, si, clk, en, length=3, prefix="sr")
        from repro.simulation.sequential import SequentialSimulator

        sim = SequentialSimulator(b.build())
        sim.step({"si": 1, "en": 1})
        sim.step({"si": 0, "en": 0})   # hold
        sim.step({"si": 0, "en": 1})
        assert sim.peek(q[0]) == 0 and sim.peek(q[1]) == 1

    def test_buffer_tree_structure(self):
        b = NetlistBuilder("m")
        srcs = b.add_input_bus("s", 4)
        outs = buffer_tree(b, srcs, stages=3)
        assert len(outs) == 4
        buffers = [i for i in b.netlist.instances.values() if i.cell.name == "BUF"]
        assert len(buffers) == 12
