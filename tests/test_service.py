"""The analysis service (repro.service): protocol, job lifecycle, limits.

Most tests inject a synthetic runner so the full client/server round
trip (admission, quotas, backpressure, streaming, cancellation, drain)
runs in milliseconds; two end-to-end tests drive the default runner
against the real tiny core and pin the served Table I to the corpus
golden capture.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.service import (AnalysisService, JobCancelled, ServiceClient,
                           ServiceError, ServiceUnavailable)
from repro.service import protocol

GOLDEN_TINY = (Path(__file__).resolve().parent.parent / "benchmarks"
               / "corpus" / "golden" / "tiny_full.table.txt")


# --------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------- #
class ServiceHarness:
    """A service on an ephemeral port in a background thread."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self.service = AnalysisService(**kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self.service.run,
            kwargs={"ready": lambda svc: self._ready.set()},
            daemon=True)

    def __enter__(self) -> "ServiceHarness":
        self._thread.start()
        assert self._ready.wait(10), "service did not start"
        return self

    def __exit__(self, *exc_info) -> None:
        if self._thread.is_alive():
            try:
                self.client().shutdown(drain=False)
            except ServiceError:
                pass
            self._thread.join(timeout=10)

    def client(self, **kwargs) -> ServiceClient:
        kwargs.setdefault("timeout", 10.0)
        return ServiceClient(port=self.service.port, **kwargs)

    def join(self, timeout: float = 10.0) -> bool:
        self._thread.join(timeout=timeout)
        return not self._thread.is_alive()


#: Named gates the echo runner blocks on — spec values must survive the
#: JSON protocol, so tests plant a *name* and park the Event here.
GATES: dict = {}


def gate(name: str) -> threading.Event:
    return GATES.setdefault(name, threading.Event())


@pytest.fixture(autouse=True)
def _fresh_gates():
    GATES.clear()
    yield
    for event in GATES.values():
        event.set()  # never leave a runner thread parked


def echo_runner(job, emit):
    """Instant runner: returns the spec, honouring an optional delay and
    a named gate planted in the spec by the test."""
    if job.spec.get("gate"):
        assert gate(job.spec["gate"]).wait(10)
    if job.spec.get("sleep"):
        time.sleep(job.spec["sleep"])
    if job.spec.get("fail"):
        raise ValueError(job.spec["fail"])
    for event in job.spec.get("events", ()):
        emit(dict(event))
    if job.spec.get("poll_cancel"):
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)
            time.sleep(0.01)
        raise AssertionError("cancel never arrived")
    return {"echo": dict(job.spec)}


# --------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "spec": {"axes": {"effort": ["tie"]}}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            protocol.decode(b"[1, 2, 3]\n")

    def test_error_carries_retry_after(self):
        err = protocol.error(protocol.ERR_QUEUE_FULL, "full",
                             retry_after=1.23456)
        assert err == {"ok": False, "error": "queue_full", "detail": "full",
                       "retry_after": 1.235}


# --------------------------------------------------------------------- #
# request/response ops
# --------------------------------------------------------------------- #
class TestOps:
    def test_ping(self):
        with ServiceHarness(runner=echo_runner) as harness:
            response = harness.client().ping()
            assert response["version"] == protocol.PROTOCOL_VERSION

    def test_submit_run_result_roundtrip(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            job = client.submit("analyze", {"design": "tiny"})
            assert job["state"] == "queued"
            final = client.wait(job["id"], timeout=10)
            assert final["state"] == "done"
            outcome = client.result(job["id"])
            assert outcome["result"] == {"echo": {"design": "tiny"}}

    def test_failed_job_reports_error(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            job = client.submit("analyze", {"fail": "engine exploded"})
            final = client.wait(job["id"], timeout=10)
            assert final["state"] == "failed"
            assert "engine exploded" in final["error"]

    def test_result_of_running_job_is_not_done(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            job = client.submit("analyze", {"gate": "not-done"})
            with pytest.raises(ServiceError) as excinfo:
                client.result(job["id"])
            assert excinfo.value.code == protocol.ERR_NOT_DONE
            assert excinfo.value.retry_after > 0
            gate("not-done").set()
            client.wait(job["id"], timeout=10)

    def test_unknown_job_and_unknown_op(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            with pytest.raises(ServiceError) as excinfo:
                client.status("job-9999")
            assert excinfo.value.code == protocol.ERR_UNKNOWN_JOB
            with pytest.raises(ServiceError) as excinfo:
                client.request("frobnicate")
            assert excinfo.value.code == protocol.ERR_UNKNOWN_OP

    def test_malformed_line_gets_bad_request(self):
        with ServiceHarness(runner=echo_runner) as harness:
            import socket
            with socket.create_connection(
                    ("127.0.0.1", harness.service.port), timeout=5) as sock:
                sock.sendall(b"this is not json\n")
                with sock.makefile("rb") as stream:
                    response = protocol.decode(stream.readline())
            assert response["error"] == protocol.ERR_BAD_REQUEST

    def test_jobs_listing_and_stats(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            ids = [client.submit("analyze", {"n": n})["id"]
                   for n in range(2)]
            for job_id in ids:
                client.wait(job_id, timeout=10)
            listed = client.jobs()
            assert [job["id"] for job in listed] == ids
            stats = client.stats()
            assert stats["jobs"]["done"] == 2
            assert stats["finished_jobs"] == 2

    def test_unreachable_endpoint_raises_unavailable(self):
        client = ServiceClient(port=1, timeout=0.5)
        with pytest.raises(ServiceUnavailable):
            client.ping()


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
class TestBackpressureAndQuotas:
    def test_queue_full_rejects_with_retry_after(self):
        with ServiceHarness(runner=echo_runner, max_queue=1,
                            max_jobs_per_client=10) as harness:
            client = harness.client()
            running = client.submit("analyze", {"gate": "qf"})
            # Wait for the worker to pick it up so the queue is empty.
            deadline = time.monotonic() + 5
            while client.status(running["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queued = client.submit("analyze", {"gate": "qf"})  # fills queue
            with pytest.raises(ServiceError) as excinfo:
                client.submit("analyze", {})
            assert excinfo.value.code == protocol.ERR_QUEUE_FULL
            assert excinfo.value.retry_after > 0
            gate("qf").set()
            for job in (running, queued):
                assert client.wait(job["id"], timeout=10)["state"] == "done"
            # Capacity freed: submissions are accepted again.
            assert client.submit("analyze", {})["state"] == "queued"

    def test_per_client_quota_isolates_clients(self):
        with ServiceHarness(runner=echo_runner, max_queue=8,
                            max_jobs_per_client=1) as harness:
            noisy = harness.client(client_id="noisy")
            polite = harness.client(client_id="polite")
            held = noisy.submit("analyze", {"gate": "quota"})
            with pytest.raises(ServiceError) as excinfo:
                noisy.submit("analyze", {})
            assert excinfo.value.code == protocol.ERR_QUOTA_EXCEEDED
            # Another client is unaffected by the noisy one's quota.
            other = polite.submit("analyze", {"gate": "quota"})
            gate("quota").set()
            noisy.wait(held["id"], timeout=10)
            polite.wait(other["id"], timeout=10)

    def test_submit_with_retry_rides_out_backpressure(self):
        with ServiceHarness(runner=echo_runner, max_queue=8,
                            max_jobs_per_client=1) as harness:
            client = harness.client(client_id="retrier")
            first = client.submit("analyze", {"sleep": 0.2})
            second = client.submit_with_retry("analyze", {}, attempts=20)
            assert second["id"] != first["id"]

    def test_bad_kind_is_rejected(self):
        with ServiceHarness(runner=echo_runner) as harness:
            with pytest.raises(ServiceError) as excinfo:
                harness.client().submit("transmogrify", {})
            assert excinfo.value.code == protocol.ERR_BAD_REQUEST


# --------------------------------------------------------------------- #
# streaming & cancellation
# --------------------------------------------------------------------- #
class TestStreamingAndCancel:
    def test_stream_replays_history_then_live_events(self):
        events = [{"event": "scenario", "index": 0, "label": "a"},
                  {"event": "scenario", "index": 1, "label": "b"}]
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            job = client.submit("sweep", {"events": events})
            seen = list(client.stream(job["id"]))
            kinds = [event["event"] for event in seen]
            assert kinds.count("scenario") == 2
            assert kinds[-1] == "done"
            assert seen[-1]["state"] == "done"
            # A late subscriber replays the identical history.
            again = list(client.stream(job["id"]))
            assert [e["event"] for e in again] == kinds

    def test_cancel_queued_job(self):
        with ServiceHarness(runner=echo_runner, max_queue=4) as harness:
            client = harness.client(client_id="c1")
            blocker = client.submit("analyze", {"gate": "cq"})
            victim = harness.client(client_id="c2").submit("analyze", {})
            cancelled = client.cancel(victim["id"])
            assert cancelled["state"] == "cancelled"
            gate("cq").set()
            assert client.wait(blocker["id"], timeout=10)["state"] == "done"

    def test_cancel_running_job_lands_cancelled(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            job = client.submit("analyze", {"poll_cancel": True})
            deadline = time.monotonic() + 5
            while client.status(job["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            client.cancel(job["id"])
            final = client.wait(job["id"], timeout=10)
            assert final["state"] == "cancelled"

    def test_cancel_terminal_job_is_noop(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            job = client.submit("analyze", {})
            client.wait(job["id"], timeout=10)
            assert client.cancel(job["id"])["state"] == "done"


# --------------------------------------------------------------------- #
# graceful shutdown
# --------------------------------------------------------------------- #
class TestShutdown:
    def test_drain_finishes_admitted_work_and_rejects_new(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client()
            slow = client.submit("analyze", {"gate": "drain"})
            assert client.shutdown(drain=True)["state"] == "draining"
            # New work is refused while draining (a structured rejection if
            # the listener still answers, a refused connection once closed).
            with pytest.raises(ServiceError) as excinfo:
                client.submit("analyze", {})
            if not isinstance(excinfo.value, ServiceUnavailable):
                assert excinfo.value.code == protocol.ERR_SHUTTING_DOWN
            # ... but the admitted job still completes before exit.
            gate("drain").set()
            assert harness.join(timeout=10)
            manager = harness.service.manager
            assert manager.get(slow["id"]).state.value == "done"

    def test_abort_cancels_queued_jobs(self):
        with ServiceHarness(runner=echo_runner) as harness:
            client = harness.client(client_id="c1")
            running = client.submit("analyze",
                                    {"gate": "abort", "poll_cancel": True})
            queued = harness.client(client_id="c2").submit("analyze", {})
            gate("abort").set()
            client.shutdown(drain=False)
            assert harness.join(timeout=10)
            manager = harness.service.manager
            assert manager.get(queued["id"]).state.value == "cancelled"
            assert manager.get(running["id"]).state.value == "cancelled"


# --------------------------------------------------------------------- #
# end to end: the default runner against the real tiny core
# --------------------------------------------------------------------- #
class TestEndToEnd:
    def test_served_analyze_matches_corpus_golden(self, tmp_path):
        with ServiceHarness(store=str(tmp_path / "store")) as harness:
            client = harness.client(timeout=120.0)
            job = client.submit("analyze",
                                {"design": "tiny", "effort": "tie"})
            assert client.wait(job["id"], timeout=120)["state"] == "done"
            outcome = client.result(job["id"])
            served = outcome["result"]["table"] + "\n"
            assert served == GOLDEN_TINY.read_text(encoding="utf-8")
            # The analysis went through the session's durable store.
            stats = client.stats()
            assert stats["cache"]["store_writes"] >= 6

    def test_served_sweep_streams_each_scenario_table(self):
        with ServiceHarness() as harness:
            client = harness.client(timeout=120.0)
            job = client.submit(
                "sweep", {"base": "tiny", "axes": {"effort": ["tie"]}})
            events = list(client.stream(job["id"]))
            scenarios = [e for e in events if e["event"] == "scenario"]
            assert len(scenarios) == 1
            assert scenarios[0]["ok"] is True
            streamed = scenarios[0]["table"] + "\n"
            assert streamed == GOLDEN_TINY.read_text(encoding="utf-8")
            assert events[-1]["state"] == "done"
            # The aggregated sweep report is the terminal result.
            outcome = client.result(job["id"])
            assert "Scenario sweep" in outcome["result"]["table"]
