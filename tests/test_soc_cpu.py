"""Tests for the CPU sub-blocks, the core generator and the SoC builder."""

import itertools

import pytest

from repro.debug.interface import discover_debug_interface
from repro.isa.opcodes import Opcode, control_signals_for, encode_instruction
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import check_netlist
from repro.simulation.sequential import SequentialSimulator
from repro.simulation.simulator import CombinationalSimulator
from repro.soc.alu import build_alu
from repro.soc.btb import build_btb
from repro.soc.config import CpuConfig, SoCConfig
from repro.soc.cpu import build_cpu_core
from repro.soc.debug_logic import DEBUG_CONTROL_PORTS
from repro.soc.decoder import build_decoder
from repro.soc.regfile import build_register_file
from repro.soc.soc_builder import build_soc
from repro.utils.bitvec import bit, mask


def _drive(width, name, value):
    return {f"{name}[{i}]": (value >> i) & 1 for i in range(width)}


def _read(values, nets):
    return sum(values[net] << i for i, net in enumerate(nets))


class TestDecoder:
    def test_matches_control_table(self):
        b = NetlistBuilder("dec")
        opcode = b.add_input_bus("op", 5)
        controls = build_decoder(b, opcode)
        sim = CombinationalSimulator(b.build())
        for code in range(32):
            values = sim.evaluate(_drive(5, "op", code))
            expected = control_signals_for(code).as_dict()
            for name, value in expected.items():
                assert values[controls[name]] == value, (code, name)

    def test_requires_five_bits(self):
        b = NetlistBuilder("dec")
        with pytest.raises(ValueError):
            build_decoder(b, b.add_input_bus("op", 4))


class TestAlu:
    @pytest.fixture(scope="class")
    def alu_sim(self):
        b = NetlistBuilder("alu")
        a = b.add_input_bus("a", 8)
        c = b.add_input_bus("b", 8)
        op = b.add_input_bus("op", 3)
        alu = build_alu(b, a, c, op, mult_width=4, has_barrel_shifter=True)
        return CombinationalSimulator(b.build()), alu

    REFERENCE = {
        0: lambda x, y: (x + y) & 0xFF,
        1: lambda x, y: (x - y) & 0xFF,
        2: lambda x, y: x & y,
        3: lambda x, y: x | y,
        4: lambda x, y: x ^ y,
        5: lambda x, y: (x << (y & 0x7)) & 0xFF,
        6: lambda x, y: ((x & 0xF) * (y & 0xF)) & 0xFF,
        7: lambda x, y: y,
    }

    @pytest.mark.parametrize("op", list(range(8)))
    def test_operations(self, alu_sim, op):
        sim, alu = alu_sim
        for x, y in ((0, 0), (5, 3), (0xAA, 0x55), (0xFF, 0x01), (17, 9)):
            values = sim.evaluate({**_drive(8, "a", x), **_drive(8, "b", y),
                                   **_drive(3, "op", op)})
            assert _read(values, alu.result) == self.REFERENCE[op](x, y), (op, x, y)

    def test_zero_flag(self, alu_sim):
        sim, alu = alu_sim
        values = sim.evaluate({**_drive(8, "a", 5), **_drive(8, "b", 5),
                               **_drive(3, "op", 1)})
        assert values[alu.zero_flag] == 1
        values = sim.evaluate({**_drive(8, "a", 5), **_drive(8, "b", 4),
                               **_drive(3, "op", 1)})
        assert values[alu.zero_flag] == 0

    def test_operand_width_mismatch_rejected(self):
        b = NetlistBuilder("alu")
        with pytest.raises(ValueError):
            build_alu(b, b.add_input_bus("a", 4), b.add_input_bus("b", 5),
                      b.add_input_bus("op", 3))


class TestRegisterFile:
    def test_write_then_read(self):
        b = NetlistBuilder("rf")
        clk = b.add_input("clk")
        wdata = b.add_input_bus("wd", 4)
        waddr = b.add_input_bus("wa", 2)
        we = b.add_input("we")
        ra = b.add_input_bus("ra", 2)
        rb = b.add_input_bus("rb", 2)
        rf = build_register_file(b, clk, 4, 4, wdata, waddr, we, ra, rb)
        outs_a = b.add_output_bus("qa", 4)
        for i in range(4):
            b.buf(rf.read_data_a[i], output=outs_a[i])
        sim = SequentialSimulator(b.build())

        # Write 0b1001 to r2, then read it back on port A.
        sim.step({**_drive(4, "wd", 0b1001), **_drive(2, "wa", 2), "we": 1,
                  **_drive(2, "ra", 0), **_drive(2, "rb", 0)})
        values = sim.step({**_drive(4, "wd", 0), **_drive(2, "wa", 0), "we": 0,
                           **_drive(2, "ra", 2), **_drive(2, "rb", 1)})
        assert _read(values, [f"qa[{i}]" for i in range(4)]) == 0b1001

    def test_write_disabled_preserves_contents(self):
        b = NetlistBuilder("rf")
        clk = b.add_input("clk")
        wdata = b.add_input_bus("wd", 2)
        waddr = b.add_input_bus("wa", 1)
        we = b.add_input("we")
        ra = b.add_input_bus("ra", 1)
        rb = b.add_input_bus("rb", 1)
        rf = build_register_file(b, clk, 2, 2, wdata, waddr, we, ra, rb)
        sim = SequentialSimulator(b.build())
        sim.step({**_drive(2, "wd", 0b11), **_drive(1, "wa", 1), "we": 1,
                  **_drive(1, "ra", 1), **_drive(1, "rb", 0)})
        sim.step({**_drive(2, "wd", 0b00), **_drive(1, "wa", 1), "we": 0,
                  **_drive(1, "ra", 1), **_drive(1, "rb", 0)})
        stored = [sim.peek(q) for q in rf.registers[1]]
        assert stored == [1, 1]


class TestBtb:
    def test_update_then_hit(self):
        b = NetlistBuilder("btb")
        clk = b.add_input("clk")
        rst = b.add_input("rst_n")
        pc = b.add_input_bus("pc", 6)
        target = b.add_input_bus("tgt", 6)
        update = b.add_input("upd")
        btb = build_btb(b, clk, rst, pc, target, update, n_entries=4)
        hit_port = b.add_output("hit")
        b.buf(btb.hit, output=hit_port)
        pred_ports = b.add_output_bus("pred", 6)
        for i in range(6):
            b.buf(btb.predicted_target[i], output=pred_ports[i])
        sim = SequentialSimulator(b.build())

        base = {"rst_n": 1, "upd": 0}
        # Miss before any update.
        values = sim.step({**base, **_drive(6, "pc", 0b000101), **_drive(6, "tgt", 0)})
        assert values["hit"] == 0
        # Record target 0b110011 for this PC.
        sim.step({**base, "upd": 1, **_drive(6, "pc", 0b000101),
                  **_drive(6, "tgt", 0b110011)})
        # Look it up again: hit with the stored target.
        values = sim.step({**base, **_drive(6, "pc", 0b000101), **_drive(6, "tgt", 0)})
        assert values["hit"] == 1
        assert _read(values, [f"pred[{i}]" for i in range(6)]) == 0b110011
        # A different tag at the same index misses.
        values = sim.step({**base, **_drive(6, "pc", 0b111101), **_drive(6, "tgt", 0)})
        assert values["hit"] == 0

    def test_address_registers_recorded(self):
        b = NetlistBuilder("btb")
        clk = b.add_input("clk")
        rst = b.add_input("rst_n")
        pc = b.add_input_bus("pc", 6)
        target = b.add_input_bus("tgt", 6)
        update = b.add_input("upd")
        btb = build_btb(b, clk, rst, pc, target, update, n_entries=2)
        names = {record.name for record in btb.address_registers}
        assert names == {"btb_t0", "btb_t1", "btb_g0", "btb_g1"}


class TestCpuCore:
    @pytest.mark.parametrize("config_name", ["tiny", "small"])
    def test_structure_is_clean(self, config_name, tiny_soc, small_soc):
        soc = {"tiny": tiny_soc, "small": small_soc}[config_name]
        assert check_netlist(soc.cpu) == []
        stats = soc.cpu.stats()
        assert stats["sequential"] > 0
        assert stats["combinational"] > stats["sequential"]

    def test_ports_present(self, tiny_soc):
        cpu = tiny_soc.cpu
        cfg = tiny_soc.config.cpu
        for i in range(cfg.addr_width):
            assert f"mem_addr[{i}]" in cpu.ports
        for i in range(cfg.data_width):
            assert f"mem_wdata[{i}]" in cpu.ports
            assert f"dbg_gpr_obs[{i}]" in cpu.ports
        for port in DEBUG_CONTROL_PORTS:
            assert port in cpu.ports

    def test_annotations(self, tiny_soc):
        cpu = tiny_soc.cpu
        records = cpu.annotations["address_registers"]
        names = {r["name"] for r in records}
        assert "agu_pc" in names and "agu_mar" in names
        assert any(name.startswith("btb_") for name in names)
        for record in records:
            assert len(record["ff_instances"]) == len(record["address_bits"])
            for ff_name in record["ff_instances"]:
                assert ff_name in cpu.instances
            for q_net in record["q_nets"]:
                assert q_net in cpu.nets
        assert cpu.annotations["core_config"].name == "tiny_core"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CpuConfig(data_width=2).validate()
        with pytest.raises(ValueError):
            CpuConfig(instr_width=8).validate()
        with pytest.raises(ValueError):
            CpuConfig(mult_width=64).validate()

    def test_no_debug_variant(self):
        from dataclasses import replace

        config = replace(CpuConfig.tiny(), has_debug=False)
        cpu = build_cpu_core(config)
        assert "jtag_tck" not in cpu.ports
        assert "debug_interface" not in cpu.annotations
        assert check_netlist(cpu) == []

    def test_core_executes_instruction_stream(self, tiny_soc):
        """Functional smoke test: a MOVI reaches the register file and the
        halted output asserts after a HALT instruction."""
        cfg = tiny_soc.config.cpu
        cpu = tiny_soc.cpu
        sim = SequentialSimulator(cpu)
        movi = encode_instruction(Opcode.MOVI, rd=1, imm=5,
                                  instr_width=cfg.instr_width,
                                  register_select_bits=cfg.register_select_bits)
        halt = encode_instruction(Opcode.HALT, instr_width=cfg.instr_width,
                                  register_select_bits=cfg.register_select_bits)
        base = {p: 0 for p in cpu.input_ports()}
        base["rst_n"] = 1

        def instruction_inputs(word):
            inputs = dict(base)
            for i in range(cfg.instr_width):
                inputs[f"instr_in[{i}]"] = bit(word, i)
            return inputs

        halted = []
        for word in (movi, movi, halt, halt):
            values = sim.step(instruction_inputs(word))
            halted.append(values["cpu_halted"])
        # The HALT instruction is captured into the IR one cycle after it is
        # presented, so the halted flag rises on the final cycle.
        assert halted[-1] == 1
        assert halted[0] == 0
        # The MOVI destination register now holds the immediate value.
        r1 = [sim.peek(q) for q in _register_q_nets(cpu, 1)]
        assert sum(v << i for i, v in enumerate(r1)) == 5


def _register_q_nets(cpu, index):
    width = cpu.annotations["core_config"].data_width
    return [cpu.instance(f"rf_r{index}_ff{i}").pin("Q").net.name
            for i in range(width)]


class TestSoCBuilder:
    def test_default_is_date13(self):
        config = SoCConfig.date13()
        assert config.cpu.data_width == 32
        assert config.memory_map is not None

    def test_tiny_soc_contents(self, tiny_soc):
        assert tiny_soc.scan is not None
        assert tiny_soc.scan.total_cells > 0
        assert tiny_soc.memory_map is not None
        assert tiny_soc.debug_interface is not None
        stats = tiny_soc.stats()
        assert stats["scan_cells"] == tiny_soc.scan.total_cells
        assert tiny_soc.structural_problems() == []

    def test_scan_disabled(self):
        soc = build_soc(SoCConfig(cpu=CpuConfig.tiny(), insert_scan=False))
        assert soc.scan is None
        assert "scan_enable" not in soc.cpu.ports

    def test_scaled_memory_map_for_narrow_bus(self, tiny_soc):
        memory_map = tiny_soc.memory_map
        assert memory_map.address_width == tiny_soc.config.cpu.addr_width
        from repro.memory.analysis import free_address_bits

        free = free_address_bits(memory_map)
        assert free and free != set(range(memory_map.address_width))

    def test_with_cpu_override(self):
        config = SoCConfig.tiny().with_cpu(n_registers=8)
        assert config.cpu.n_registers == 8
        assert config.cpu.data_width == CpuConfig.tiny().data_width
