"""Unit tests for netlist validation and dead-logic clean-up."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import INPUT, OUTPUT, Netlist
from repro.netlist.optimize import dangling_instances, remove_dangling_logic
from repro.netlist.validate import NetlistValidationError, check_netlist, validate_netlist

from tests.conftest import build_and_or_circuit


class TestValidate:
    def test_clean_circuit_passes(self):
        assert check_netlist(build_and_or_circuit()) == []
        validate_netlist(build_and_or_circuit())

    def test_undriven_input_reported(self):
        netlist = Netlist("m")
        netlist.add_port("y", OUTPUT)
        netlist.add_instance("g", "INV", {"A": "floating", "Y": "y"})
        problems = check_netlist(netlist)
        assert any("floating" in p for p in problems)
        with pytest.raises(NetlistValidationError):
            validate_netlist(netlist)

    def test_allow_floating_inputs(self):
        netlist = Netlist("m")
        netlist.add_port("y", OUTPUT)
        netlist.add_instance("g", "INV", {"A": "floating", "Y": "y"})
        assert check_netlist(netlist, allow_floating_inputs=True) == []

    def test_undriven_output_port_reported(self):
        netlist = Netlist("m")
        netlist.add_port("a", INPUT)
        netlist.add_port("y", OUTPUT)
        problems = check_netlist(netlist)
        assert any("output port 'y'" in p for p in problems)

    def test_tied_net_counts_as_driven(self):
        netlist = Netlist("m")
        netlist.add_port("y", OUTPUT)
        netlist.add_instance("g", "INV", {"A": "n1", "Y": "y"})
        netlist.net("n1").tied = 1
        assert check_netlist(netlist) == []

    def test_combinational_loop_reported(self):
        netlist = Netlist("m")
        netlist.add_port("a", INPUT)
        netlist.add_instance("g1", "AND2", {"A": "a", "B": "n2", "Y": "n1"})
        netlist.add_instance("g2", "INV", {"A": "n1", "Y": "n2"})
        assert any("loop" in p for p in check_netlist(netlist))

    def test_generated_cores_are_clean(self, tiny_soc, small_soc):
        assert check_netlist(tiny_soc.cpu) == []
        assert check_netlist(small_soc.cpu) == []


class TestOptimize:
    def _circuit_with_dangling(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        c = b.add_input("b")
        y = b.add_output("y")
        b.gate("AND2", a, c, output=y)
        # Dangling chain: two gates whose result is never used.
        n1 = b.inv(a)
        b.inv(n1)
        return b.build()

    def test_dangling_detected_and_removed(self):
        netlist = self._circuit_with_dangling()
        assert len(dangling_instances(netlist)) == 1  # only the chain tail at first
        removed = remove_dangling_logic(netlist)
        assert removed == 2
        assert len(netlist.instances) == 1
        assert dangling_instances(netlist) == []

    def test_sequential_cells_never_removed(self):
        b = NetlistBuilder("m")
        clk = b.add_input("clk")
        d = b.add_input("d")
        b.dff(d, clk, name="ff")  # Q drives nothing
        netlist = b.build()
        assert remove_dangling_logic(netlist) == 0
        assert "ff" in netlist.instances

    def test_output_port_drivers_kept(self):
        netlist = build_and_or_circuit()
        assert remove_dangling_logic(netlist) == 0
        assert len(netlist.instances) == 3

    def test_orphan_nets_removed(self):
        netlist = self._circuit_with_dangling()
        before = set(netlist.nets)
        remove_dangling_logic(netlist)
        after = set(netlist.nets)
        assert after < before
        assert {"a", "b", "y"} <= after
