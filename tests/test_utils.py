"""Unit tests for repro.utils (bit vectors, tables, timing)."""

import time

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitvec import (
    bit,
    bits_of,
    count_ones,
    from_bits,
    mask,
    rotate_left,
    rotate_right,
    sign_extend,
    to_bits,
)
from repro.utils.tables import Table
from repro.utils.timing import Stopwatch


class TestBitvec:
    def test_mask_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_mask_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)

    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 3) == 1

    def test_bit_negative_index_raises(self):
        with pytest.raises(ValueError):
            bit(1, -1)

    def test_to_bits_lsb_first(self):
        assert to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_from_bits_roundtrip(self):
        assert from_bits([1, 0, 1, 1]) == 0b1101

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_to_from_bits_roundtrip_property(self, value):
        assert from_bits(to_bits(value, 32)) == value

    def test_bits_of_width(self):
        assert bits_of(5, 8) == "00000101"
        assert bits_of(0x1FF, 8) == "11111111"  # truncated to width

    def test_count_ones(self):
        assert count_ones(0) == 0
        assert count_ones(0b10110) == 3

    def test_count_ones_negative_raises(self):
        with pytest.raises(ValueError):
            count_ones(-5)

    def test_sign_extend_positive(self):
        assert sign_extend(0b0101, 4, 8) == 0b0101

    def test_sign_extend_negative(self):
        assert sign_extend(0b1101, 4, 8) == 0b11111101

    def test_rotate_left_and_right_are_inverse(self):
        value = 0x12345678
        assert rotate_right(rotate_left(value, 7, 32), 7, 32) == value

    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=64))
    def test_rotate_preserves_popcount(self, value, amount):
        assert count_ones(rotate_left(value, amount, 16)) == count_ones(value)


class TestTable:
    def test_render_contains_headers_and_rows(self):
        table = Table(["Source", "#"], title="demo")
        table.add_row(["Scan", 19142])
        text = table.render()
        assert "demo" in text
        assert "Source" in text
        assert "19,142" in text

    def test_row_length_mismatch_raises(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row([3.14159])
        assert "3.14" in table.render()

    def test_str_matches_render(self):
        table = Table(["x"])
        table.add_row([1])
        assert str(table) == table.render()


class TestStopwatch:
    def test_accumulates_named_laps(self):
        watch = Stopwatch()
        watch.start("a")
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed > 0
        assert watch.elapsed("a") >= elapsed * 0.99
        assert watch.elapsed("missing") == 0.0

    def test_start_stops_previous_phase(self):
        watch = Stopwatch()
        watch.start("a")
        watch.start("b")
        watch.stop()
        assert "a" in watch.laps and "b" in watch.laps

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager_records_total(self):
        with Stopwatch() as watch:
            time.sleep(0.001)
        assert watch.total() > 0
