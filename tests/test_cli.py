"""CLI subcommands (analyze / sweep / report) and the pre-subcommand form."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestAnalyzeCommand:
    def test_explicit_subcommand_json(self, capsys):
        code, out = run(capsys, "analyze", "tiny", "--json")
        assert code == 0
        document = json.loads(out)
        assert document["config"] == "tiny"
        assert document["netlist"] == "tiny_core"
        assert document["total_online_untestable"] > 0
        assert [row["source"] for row in document["table"]] == [
            "Original", "Scan", "Debug", "Memory", "TOTAL"]

    def test_legacy_form_defaults_to_analyze(self, capsys):
        code, out = run(capsys, "tiny")
        assert code == 0
        assert "TOTAL" in out

    def test_list_passes(self, capsys):
        code, out = run(capsys, "--list-passes")
        assert code == 0
        assert "scan_analysis" in out

    def test_unknown_pass_is_reported(self, capsys):
        assert main(["analyze", "tiny", "--passes", "nope"]) == 2


class TestSweepCommand:
    def test_sweep_json_and_report_round_trip(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        code, out = run(capsys, "sweep", "--base", "tiny",
                        "--axis", "debug=on,off", "--executor", "thread",
                        "--quiet", "--json", "--out", str(out_file))
        assert code == 0
        document = json.loads(out)
        assert len(document["scenarios"]) == 2
        assert document["executor"] == "thread"
        assert json.loads(out_file.read_text()) == document

        code, rendered = run(capsys, "report", str(out_file))
        assert code == 0
        assert "tiny[debug=on]" in rendered
        assert "tiny[debug=off]" in rendered

        code, csv_text = run(capsys, "report", str(out_file), "--csv")
        assert code == 0
        assert csv_text.splitlines()[0].startswith("scenario,")
        assert len(csv_text.splitlines()) == 3

    def test_bad_axis_spec(self, capsys):
        assert main(["sweep", "--axis", "debug"]) == 2

    def test_report_missing_file(self, capsys):
        assert main(["report", "/nonexistent/sweep.json"]) == 2


class TestShardingFlags:
    def test_analyze_jobs_matches_serial_table(self, capsys):
        code, serial_out = run(capsys, "analyze", "tiny", "--json")
        assert code == 0
        code, sharded_out = run(capsys, "analyze", "tiny", "--jobs", "2",
                                "--backend", "thread", "--json")
        assert code == 0
        serial = json.loads(serial_out)
        sharded = json.loads(sharded_out)
        assert sharded["table"] == serial["table"]
        assert sharded["total_online_untestable"] == \
            serial["total_online_untestable"]

    def test_bad_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "tiny", "--jobs", "2", "--backend", "cluster"])


class TestCorpusCommand:
    @pytest.fixture()
    def tiny_corpus(self, tmp_path):
        spec = {"base": "tiny", "axes": {}, "effort": "tie"}
        (tmp_path / "tiny_full.json").write_text(json.dumps(spec),
                                                 encoding="utf-8")
        return tmp_path

    def test_update_check_and_diff_cycle(self, capsys, tiny_corpus):
        code, out = run(capsys, "corpus", "--dir", str(tiny_corpus),
                        "--update", "--quiet")
        assert code == 0
        assert "1 entries updated, 0 failures" in out

        code, out = run(capsys, "corpus", "--dir", str(tiny_corpus),
                        "--quiet")
        assert code == 0
        assert "0 failures" in out

        golden = tiny_corpus / "golden" / "tiny_full.table.txt"
        golden.write_text(golden.read_text().replace("TOTAL", "TOTAS"))
        code, out = run(capsys, "corpus", "--dir", str(tiny_corpus),
                        "--quiet")
        assert code == 1
        assert "1 failures" in out

    def test_missing_golden_fails(self, capsys, tiny_corpus):
        code, out = run(capsys, "corpus", "--dir", str(tiny_corpus),
                        "--quiet")
        assert code == 1

    def test_sharded_corpus_matches_serial_golden(self, capsys, tiny_corpus):
        assert main(["corpus", "--dir", str(tiny_corpus), "--update",
                     "--quiet"]) == 0
        capsys.readouterr()  # drain the update run's summary line
        code, out = run(capsys, "corpus", "--dir", str(tiny_corpus),
                        "--jobs", "2", "--backend", "thread", "--quiet",
                        "--json")
        assert code == 0
        document = json.loads(out)
        assert [entry["status"] for entry in document] == ["match"]

    def test_bad_directory_reported(self, capsys):
        assert main(["corpus", "--dir", "/nonexistent/corpus"]) == 2
