"""Unit tests for the shared ISA definition (opcodes, encoding, control table)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import (
    ALU_ADD,
    ALU_PASS_B,
    ALU_SUB,
    CONTROL_SIGNAL_NAMES,
    ControlSignals,
    Opcode,
    control_signals_for,
    decode_fields,
    encode_instruction,
    field_layout,
)


class TestOpcodeTable:
    def test_all_opcodes_have_control_signals(self):
        for opcode in Opcode:
            signals = control_signals_for(int(opcode))
            assert isinstance(signals, ControlSignals)

    def test_undefined_opcode_behaves_like_nop(self):
        assert control_signals_for(31) == ControlSignals()

    def test_arithmetic_opcodes_write_registers(self):
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.ADDI, Opcode.MOVI):
            assert control_signals_for(int(opcode)).reg_we == 1

    def test_memory_opcodes(self):
        load = control_signals_for(int(Opcode.LOAD))
        store = control_signals_for(int(Opcode.STORE))
        assert load.mem_re == 1 and load.wb_from_mem == 1 and load.reg_we == 1
        assert store.mem_we == 1 and store.reg_we == 0

    def test_branch_opcodes_do_not_write(self):
        for opcode in (Opcode.BEQ, Opcode.BNE, Opcode.JUMP):
            signals = control_signals_for(int(opcode))
            assert signals.reg_we == 0 and signals.mem_we == 0

    def test_halt(self):
        assert control_signals_for(int(Opcode.HALT)).halt == 1

    def test_alu_op_encoding_in_dict(self):
        signals = control_signals_for(int(Opcode.SUB)).as_dict()
        assert (signals["alu_op0"], signals["alu_op1"], signals["alu_op2"]) == (1, 0, 0)
        assert ALU_SUB == 1

    def test_control_signal_names_stable(self):
        assert "reg_we" in CONTROL_SIGNAL_NAMES
        assert "alu_op2" in CONTROL_SIGNAL_NAMES
        assert len(CONTROL_SIGNAL_NAMES) == 12


class TestEncoding:
    def test_field_layout_partition(self):
        layout = field_layout(32, 5)
        assert layout["opcode"] == (27, 5)
        assert layout["rd"] == (22, 5)
        assert layout["imm"] == (0, 12)
        # Fields are disjoint and cover the word.
        total = sum(width for _, width in layout.values())
        assert total == 32

    def test_encode_decode_roundtrip(self):
        word = encode_instruction(Opcode.ADDI, rd=3, rs1=1, rs2=0, imm=42,
                                  instr_width=32, register_select_bits=5)
        fields = decode_fields(word, 32, 5)
        assert fields["opcode"] == int(Opcode.ADDI)
        assert fields["rd"] == 3 and fields["rs1"] == 1 and fields["imm"] == 42

    @given(st.sampled_from(list(Opcode)),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=255))
    def test_roundtrip_property_small_word(self, opcode, rd, rs1, rs2, imm):
        word = encode_instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                                  instr_width=24, register_select_bits=3)
        fields = decode_fields(word, 24, 3)
        assert fields["opcode"] == int(opcode)
        assert fields["rd"] == rd and fields["rs1"] == rs1 and fields["rs2"] == rs2
        assert fields["imm"] == imm & ((1 << (24 - 5 - 9)) - 1)

    def test_immediate_truncation(self):
        word = encode_instruction(Opcode.MOVI, rd=1, imm=0xFFFFF,
                                  instr_width=16, register_select_bits=2)
        fields = decode_fields(word, 16, 2)
        assert fields["imm"] == 0xFFFFF & 0x1F  # 5 immediate bits remain
