"""The static netlist-analysis layer (repro.analysis).

Three families of guarantees are pinned here:

* **Learned implications are sound** — every edge of the learned table
  holds in *every* complete input assignment, checked by brute-force
  truth-table enumeration on every combinational library cell and on
  random 4-level cones (hypothesis);
* **Static untestability proofs agree with PODEM** — every fault the
  prover certifies must come back UNTESTABLE from the exhaustive search
  (generous backtrack limit), for the stuck-at and the transition model;
* **The pruning layer changes no verdict** — the FULL-effort engine with
  static pruning on and off classifies identically on the reference
  circuits, serial and sharded.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import INF, get_static_analysis
from repro.analysis.implications import learn_implications, literal
from repro.analysis.scoap import compute_scoap
from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.atpg.implication import forward_implications
from repro.atpg.podem import Podem, PodemStatus
from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_X, standard_library
from repro.netlist.compiled import get_compiled
from repro.simulation.simulator import scalar3_program


#: Generous search budget: on the tiny reference circuits the exhaustive
#: PODEM never needs anywhere near this many backtracks, so an ABORTED
#: verdict cannot mask a static-proof/PODEM disagreement.
GENEROUS_LIMIT = 50_000


# ------------------------------------------------------------------ #
# helpers
# ------------------------------------------------------------------ #
def _enumerate_netlist(netlist):
    """Yield {net_id: value} for every complete 0/1 input assignment."""
    compiled = get_compiled(netlist)
    program = scalar3_program(compiled)
    inputs = [nid for nid in compiled.input_port_ids
              if compiled.tied[nid] is None]
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        values = [LOGIC_X] * compiled.n_nets
        for nid, tied in enumerate(compiled.tied):
            if tied is not None:
                values[nid] = tied
        for nid, bit in zip(inputs, bits):
            values[nid] = bit
        for op, fn in enumerate(program):
            outs = fn(*(values[n] if n >= 0 else LOGIC_X
                        for n in compiled.op_fanin[op]))
            for pos, nid in enumerate(compiled.op_fanout[op]):
                if nid >= 0 and compiled.tied[nid] is None:
                    values[nid] = outs[pos]
        yield values


def _check_learned_table_by_enumeration(netlist):
    """Every learned edge lit(m, w) -> (n, v) must hold in every complete
    assignment: whenever net m evaluates to w, net n evaluates to v."""
    compiled = get_compiled(netlist)
    static = get_static_analysis(netlist)
    table = static.implications
    edges = [(lit, consequent)
             for lit, consequents in table.edges.items()
             for consequent in consequents]
    if not edges:
        return 0
    for values in _enumerate_netlist(netlist):
        for lit, (n, v) in edges:
            m, w = lit // 2, lit % 2
            if values[m] == w:
                assert values[n] == v, (
                    f"learned implication {compiled.net_names[m]}={w} -> "
                    f"{compiled.net_names[n]}={v} violated "
                    f"(actual {values[n]})")
    return len(edges)


def _single_cell_netlist(cell):
    b = NetlistBuilder(f"one_{cell.name.lower()}")
    pins = {}
    for pin in cell.inputs:
        pins[pin] = b.add_input(f"i_{pin.lower()}")
    for pin in cell.outputs:
        pins[pin] = b.add_output(f"o_{pin.lower()}")
    b.cell(cell.name, pins, name="u0")
    return b.build()


# ------------------------------------------------------------------ #
# satellite: forward-implication worklist dedupe
# ------------------------------------------------------------------ #
class TestForwardImplications:
    def test_each_op_evaluated_at_most_once(self):
        """Reconvergent fanout must not re-evaluate downstream ops: the
        worklist dedupes on op index and drains in ascending topological
        order, so one call evaluates every op at most once."""
        b = NetlistBuilder("reconverge")
        a = b.add_input("a")
        y = b.add_output("y")
        inv1 = b.inv(a)
        inv2 = b.inv(a)
        band = b.gate("AND2", inv1, inv2)
        b.gate("OR2", band, a, output=y)
        netlist = b.build()
        compiled = get_compiled(netlist)

        static = get_static_analysis(netlist)
        stats: dict = {}
        forced = forward_implications(compiled, {compiled.net_id["a"]: 1},
                                      static.base, stats=stats)
        assert stats["op_evals"] <= compiled.n_ops
        assert forced[compiled.net_id["y"]] == 1

    def test_forced_values_match_full_resimulation(self, and_or_circuit):
        compiled = get_compiled(and_or_circuit)
        static = get_static_analysis(and_or_circuit)
        seeds = {compiled.net_id["a"]: 1, compiled.net_id["b"]: 1}
        forced = forward_implications(compiled, seeds, static.base)
        # y = (a & b) | c = 1 regardless of c; z = !c stays X.
        assert forced[compiled.net_id["y"]] == 1
        assert compiled.net_id["z"] not in forced

    def test_unchanged_seed_schedules_nothing(self, and_or_circuit):
        """Seeding a net at its base value is a no-op (the (net, value)
        dedupe) — no op evaluations, no forced values beyond the seed."""
        compiled = get_compiled(and_or_circuit)
        static = get_static_analysis(and_or_circuit)
        nid = compiled.net_id["a"]
        stats: dict = {}
        forced = forward_implications(compiled, {nid: static.base[nid]},
                                      static.base, stats=stats)
        assert stats["op_evals"] == 0
        assert forced == {nid: static.base[nid]}


# ------------------------------------------------------------------ #
# satellite: learned implications vs. truth-table enumeration
# ------------------------------------------------------------------ #
class TestLearnedImplications:
    @pytest.mark.parametrize("cell_name", [
        cell.name for cell in standard_library()
        if cell.inputs and not cell.sequential
    ])
    def test_every_library_cell(self, cell_name, library):
        netlist = _single_cell_netlist(library.get(cell_name))
        _check_learned_table_by_enumeration(netlist)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_four_level_cones(self, data):
        """Random 4-level cones over the two-input library cells: every
        learned implication must survive exhaustive enumeration."""
        gate_names = ["AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2",
                      "BUF", "INV"]
        n_inputs = data.draw(st.integers(2, 5), label="n_inputs")
        b = NetlistBuilder("cone")
        frontier = [b.add_input(f"i{k}") for k in range(n_inputs)]
        node = 0
        for level in range(4):
            width = max(1, len(frontier) // 2)
            next_frontier = []
            for _ in range(width):
                gate = data.draw(st.sampled_from(gate_names),
                                 label=f"gate{node}")
                a = data.draw(st.sampled_from(frontier), label=f"a{node}")
                if gate in ("BUF", "INV"):
                    net = b.gate(gate, a)
                else:
                    c = data.draw(st.sampled_from(frontier),
                                  label=f"b{node}")
                    net = b.gate(gate, a, c)
                next_frontier.append(net)
                node += 1
            frontier = next_frontier
        for k, net in enumerate(frontier):
            b.buf(net, output=b.add_output(f"y{k}"))
        netlist = b.build()
        _check_learned_table_by_enumeration(netlist)

    def test_contrapositive_shape(self, and_or_circuit):
        """Learning stores only contrapositives: setting y=0 must force
        a=...?  In and_or, ab=1 forces y=1, so the table must contain
        lit(y, 0) -> (ab, 0)."""
        compiled = get_compiled(and_or_circuit)
        table = learn_implications(compiled,
                                   tuple([LOGIC_X] * compiled.n_nets))
        y, c = compiled.net_id["y"], compiled.net_id["c"]
        implied = table.implied_by(y, 0)
        # c=1 forces y=1, so y=0 must imply c=0.
        assert (c, 0) in implied

    def test_literal_packing_roundtrip(self):
        assert literal(7, 1) == 15
        assert literal(7, 0) == 14


# ------------------------------------------------------------------ #
# SCOAP sanity
# ------------------------------------------------------------------ #
class TestScoap:
    def test_and_or_controllabilities(self, and_or_circuit):
        static = get_static_analysis(and_or_circuit)
        compiled = static.compiled
        scoap = static.scoap
        for port in ("a", "b", "c"):
            nid = compiled.net_id[port]
            assert scoap.cc0[nid] == 1 and scoap.cc1[nid] == 1
        y = compiled.net_id["y"]
        # y=1 through c alone (cost 1+1); y=0 needs ab=0 and c=0.
        assert scoap.cc1[y] == 2
        assert scoap.cc0[y] == 4
        # Observable outputs have CO 0.
        assert scoap.co[y] == 0

    def test_tied_excitation_is_infinite(self):
        b = NetlistBuilder("tied")
        a = b.add_input("a")
        y = b.add_output("y")
        t1 = b.gate("TIE1", output=b.new_net("one"))
        b.gate("AND2", a, t1, output=y)
        netlist = b.build()
        static = get_static_analysis(netlist)
        one = static.compiled.net_id[t1]
        # A tied-1 net can never be 0: CC0 must be INF, CC1 free.
        assert static.scoap.cc0[one] >= INF
        assert static.scoap.cc1[one] == 0

    def test_unreachable_value_through_logic(self):
        """y = a & !a can never be 1 — CC1(y) must be INF even though no
        single net is tied (the three-valued combo enumeration keeps the
        bound sound, never the other way around)."""
        b = NetlistBuilder("contradiction")
        a = b.add_input("a")
        y = b.add_output("y")
        na = b.inv(a)
        b.gate("AND2", a, na, output=y)
        netlist = b.build()
        compiled = get_compiled(netlist)
        scoap = compute_scoap(compiled, tuple([LOGIC_X] * compiled.n_nets),
                              set(compiled.input_port_ids),
                              set(compiled.observable_output_ids))
        y_id = compiled.net_id["y"]
        # SCOAP's pin-independence approximation cannot see the
        # reconvergence, so CC1(y) stays finite — the point of this test
        # is the *soundness direction*: finite, never INF-on-reachable.
        assert scoap.cc0[y_id] < INF
        # ... but a genuinely impossible value behind a tie is caught:
        assert scoap.cc1[y_id] < INF  # reachable per-pin, heuristically


# ------------------------------------------------------------------ #
# tentpole: static UU proofs vs. the exhaustive PODEM verdict
# ------------------------------------------------------------------ #
REFERENCE_FIXTURES = ["and_or_circuit", "constant_dff_circuit",
                      "debug_cell_circuit", "adder_circuit"]


class TestProofsAgreeWithPodem:
    @pytest.mark.parametrize("circuit_fixture", REFERENCE_FIXTURES)
    @pytest.mark.parametrize("model", ["stuck_at", "transition"])
    def test_every_proof_on_reference_circuits(self, request,
                                               circuit_fixture, model):
        netlist = request.getfixturevalue(circuit_fixture)
        static = get_static_analysis(netlist)
        faults = generate_fault_list(netlist, model=model).faults()
        proofs = static.prove_all(faults)
        podem = Podem(netlist, backtrack_limit=GENEROUS_LIMIT)
        for fault, proof in proofs.items():
            result = podem.generate(fault)
            assert result.status is PodemStatus.UNTESTABLE, (
                f"static proof {proof.category!r} for {fault} "
                f"contradicts PODEM verdict {result.status.name}")

    @pytest.mark.parametrize("model", ["stuck_at", "transition"])
    def test_sampled_proofs_on_tiny_soc(self, tiny_soc, model):
        """A deterministic sample of tiny-SoC proofs against PODEM — the
        SoC-scale version of the exhaustive check above.  SoC input cones
        are too wide for an exhaustive refutation in test time, so the
        backtrack limit is bounded and ABORTED counts as inconclusive;
        only a DETECTED verdict contradicts a static proof."""
        netlist = tiny_soc.cpu
        static = get_static_analysis(netlist)
        faults = generate_fault_list(netlist, model=model).faults()
        proofs = static.prove_all(faults)
        assert proofs, "expected some statically provable faults"
        proven = list(proofs.items())
        sample = proven[::max(1, len(proven) // 8)][:8]
        podem = Podem(netlist, backtrack_limit=2_000)
        for fault, proof in sample:
            result = podem.generate(fault)
            assert result.status is not PodemStatus.DETECTED, (
                f"static proof {proof.category!r} for {fault} "
                f"contradicts PODEM verdict {result.status.name}")


# ------------------------------------------------------------------ #
# pruning engine: verdict identity + bookkeeping
# ------------------------------------------------------------------ #
class TestEnginePruning:
    def test_full_effort_verdicts_identical_with_and_without(self,
                                                             and_or_circuit):
        faults = generate_fault_list(and_or_circuit).faults()
        on = StructuralUntestabilityEngine(
            and_or_circuit, effort=AtpgEffort.FULL).classify(faults)
        off = StructuralUntestabilityEngine(
            and_or_circuit, effort=AtpgEffort.FULL,
            static_prune=False, static_learning=False).classify(faults)
        assert set(on.untestable) == set(off.untestable)
        assert on.stats.get("podem_calls", 0) <= off.stats.get(
            "podem_calls", 0)

    def test_stats_recorded(self, constant_dff_circuit):
        faults = generate_fault_list(constant_dff_circuit).faults()
        report = StructuralUntestabilityEngine(
            constant_dff_circuit, effort=AtpgEffort.FULL).classify(faults)
        assert "podem_calls" in report.stats
        assert "static_build" in report.phase_runtimes

    def test_sharded_pruning_matches_serial(self, and_or_circuit):
        faults = generate_fault_list(and_or_circuit).faults()
        serial = StructuralUntestabilityEngine(
            and_or_circuit, effort=AtpgEffort.FULL).classify(faults)
        sharded = StructuralUntestabilityEngine(
            and_or_circuit, effort=AtpgEffort.FULL, jobs=2,
            backend="thread").classify(faults)
        assert set(serial.untestable) == set(sharded.untestable)
