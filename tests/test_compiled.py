"""Tests for the compiled netlist IR and its signature-keyed build cache."""

from __future__ import annotations

import pytest

import repro
from repro.manipulation.tie import tie_net
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import (NO_NET, compile_netlist, compile_stats,
                                    get_compiled, reset_compile_stats)
from repro.netlist.traversal import topological_instances
from repro.simulation.simulator import CombinationalSimulator


@pytest.fixture
def small_circuit():
    """y = (a & b) | c with a DFF capturing y."""
    b = NetlistBuilder("compiled_demo")
    a = b.add_input("a")
    bb = b.add_input("b")
    c = b.add_input("c")
    n_and = b.gate("AND2", a, bb, name="u_and")
    n_or = b.gate("OR2", n_and, c, name="u_or")
    b.gate("DFF", n_or, b.add_input("ck"), name="u_ff")
    b.buf(n_or, output=b.add_output("y"), name="u_buf")
    return b.build()


class TestCompiledStructure:
    def test_net_ids_are_dense_and_invertible(self, small_circuit):
        compiled = compile_netlist(small_circuit)
        assert compiled.n_nets == len(small_circuit.nets)
        assert sorted(compiled.net_id.values()) == list(range(compiled.n_nets))
        for name, nid in compiled.net_id.items():
            assert compiled.net_names[nid] == name

    def test_ops_are_levelized(self, small_circuit):
        compiled = compile_netlist(small_circuit)
        assert len(compiled.instances) == len(
            topological_instances(small_circuit))
        # Every fanin driven by another op must come from a lower level.
        for i, fanin in enumerate(compiled.op_fanin):
            for nid in fanin:
                if nid >= 0 and compiled.net_driver_op[nid] >= 0:
                    driver = compiled.net_driver_op[nid]
                    assert compiled.op_level[driver] < compiled.op_level[i]
                    assert driver < i  # topological index order

    def test_connectivity_tables(self, small_circuit):
        compiled = compile_netlist(small_circuit)
        and_op = compiled.op_of_instance["u_and"]
        or_op = compiled.op_of_instance["u_or"]
        and_out = compiled.op_fanout[and_op][0]
        assert (or_op, 0) in compiled.net_load_ops[and_out]
        # The OR output feeds both the DFF (sequential) and the output buffer.
        or_out = compiled.op_fanout[or_op][0]
        seq_loads = compiled.net_load_seqs[or_out]
        assert seq_loads and seq_loads[0][0] == compiled.seq_of_instance["u_ff"]

    def test_pin_ref_round_trip(self, small_circuit):
        compiled = compile_netlist(small_circuit)
        kind, index, pos, is_input = compiled.pin_ref("u_or/A")
        assert (kind, is_input) == ("op", True)
        assert compiled.op_cell[index].inputs[pos] == "A"
        kind, index, pos, is_input = compiled.pin_ref("u_ff/D")
        assert (kind, is_input) == ("seq", True)
        with pytest.raises(KeyError):
            compiled.pin_ref("nonexistent/A")
        with pytest.raises(ValueError):
            compiled.pin_ref("not_a_pin_name")

    def test_fanout_cones(self, small_circuit):
        compiled = compile_netlist(small_circuit)
        a = compiled.net_id["a"]
        cone = compiled.fanout_ops(a)
        assert compiled.op_of_instance["u_and"] in cone
        assert compiled.op_of_instance["u_or"] in cone
        assert list(cone) == sorted(cone)  # topological order
        nets = compiled.fanout_nets(a)
        assert compiled.net_id["y"] in nets


class TestCompileCache:
    def test_object_cache_hit(self, small_circuit):
        reset_compile_stats(clear_cache=True)
        first = get_compiled(small_circuit)
        second = get_compiled(small_circuit)
        assert first is second
        stats = compile_stats()
        assert stats["builds"] == 1
        assert stats["object_hits"] >= 1

    def test_structural_clone_shares_one_build(self, small_circuit):
        reset_compile_stats(clear_cache=True)
        compiled = get_compiled(small_circuit)
        clone = small_circuit.clone()
        assert get_compiled(clone) is compiled
        stats = compile_stats()
        assert stats["builds"] == 1
        assert stats["signature_hits"] == 1

    def test_mutation_invalidates(self, small_circuit):
        reset_compile_stats(clear_cache=True)
        sim = CombinationalSimulator(small_circuit)
        pattern = {"a": LOGIC_1, "b": LOGIC_1, "c": LOGIC_0}
        assert sim.evaluate(pattern)["y"] == LOGIC_1
        # Tie the OR output: the same simulator must honour the new constant
        # (ties are applied directly on the graph by the manipulation step).
        tied_net = small_circuit.instance("u_or").pin("Y").net.name
        tie_net(small_circuit, tied_net, LOGIC_0)
        assert sim.evaluate(pattern)["y"] == LOGIC_0
        assert compile_stats()["builds"] == 2

    def test_structural_edit_invalidates(self, small_circuit):
        reset_compile_stats(clear_cache=True)
        compiled = get_compiled(small_circuit)
        small_circuit.add_instance("u_extra", "INV",
                                   {"A": "a", "Y": "extra_out"})
        recompiled = get_compiled(small_circuit)
        assert recompiled is not compiled
        assert "u_extra" in recompiled.op_of_instance

    def test_session_sweep_compiles_once_per_signature(self):
        """An effort-only sweep rebuilds the SoC per scenario, but all
        scenario netlists share one signature — and one compile."""
        reset_compile_stats(clear_cache=True)
        session = repro.Session()
        grid = repro.ScenarioGrid("tiny").axis("effort", ["tie", "tie"])
        report = session.sweep(grid)
        assert len(report.results) == 2
        assert all(result.ok for result in report.results)
        stats = compile_stats()
        # One build for the shared base netlist; the flow's manipulated
        # clones (debug-tied, observe-floated, ...) have their own
        # signatures, each also compiled exactly once thanks to the
        # signature cache + the artifact cache replaying sibling passes.
        assert stats["builds"] <= 5
        assert stats["signature_hits"] + stats["object_hits"] >= 1
        # Re-sweeping must not compile anything new.
        before = compile_stats()["builds"]
        session.sweep(grid)
        assert compile_stats()["builds"] == before


class TestPlaneAlgebra:
    def test_plane_ops_match_cell_models_exhaustively(self):
        """Every hand-written plane function — combinational and sequential —
        must agree with the library cell's 3-valued model on all 3^k input
        combinations, including every X case and the positional pin order."""
        import itertools

        from repro.netlist.cells import standard_library
        from repro.simulation.simulator import (_DECODE, _PLANE_OPS,
                                                _SEQ_PLANE_OPS)

        covered = set()
        for cell in standard_library():
            if cell.sequential:
                fn = _SEQ_PLANE_OPS[cell.name]
                outputs = ("__next__",)
            else:
                fn = _PLANE_OPS[cell.name]
                outputs = cell.outputs
            covered.add(cell.name)
            for combo in itertools.product(
                    (LOGIC_0, LOGIC_1, LOGIC_X), repeat=len(cell.inputs)):
                expected = cell.evaluate(dict(zip(cell.inputs, combo)))
                flat = []
                for value in combo:
                    p1, p0 = _DECODE[value]
                    flat.extend((p1, p0))
                out = fn(1, *flat)
                for pos, port in enumerate(outputs):
                    got = (LOGIC_1 if out[2 * pos] else
                           (LOGIC_0 if out[2 * pos + 1] else LOGIC_X))
                    assert got == expected.get(port, LOGIC_X), (
                        f"{cell.name} mismatch on {combo} pin {port}")
        # Every hand-written table entry corresponds to a library cell.
        assert set(_PLANE_OPS) | set(_SEQ_PLANE_OPS) <= covered


class TestCompiledSemantics:
    def test_evaluate_matches_legacy_reference(self, small_circuit):
        from repro.simulation.legacy import LegacyCombinationalSimulator

        sim = CombinationalSimulator(small_circuit)
        legacy = LegacyCombinationalSimulator(small_circuit)
        for a in (LOGIC_0, LOGIC_1, LOGIC_X):
            for b in (LOGIC_0, LOGIC_1, LOGIC_X):
                for c in (LOGIC_0, LOGIC_1, LOGIC_X):
                    pattern = {"a": a, "b": b, "c": c}
                    assert sim.evaluate(pattern) == legacy.evaluate(pattern)

    def test_overrides_and_unknown_keys(self, small_circuit):
        sim = CombinationalSimulator(small_circuit)
        values = sim.evaluate({"a": LOGIC_1, "b": LOGIC_1},
                              overrides={"n0": LOGIC_0, "phantom": LOGIC_1})
        # The overridden AND output stays forced and propagates.
        and_out = small_circuit.instance("u_and").pin("Y").net.name
        forced = sim.evaluate({"a": LOGIC_1, "b": LOGIC_1},
                              overrides={and_out: LOGIC_0, "ghost": LOGIC_1})
        assert forced[and_out] == LOGIC_0
        assert forced["ghost"] == LOGIC_1  # unknown override keys round-trip
        assert values["phantom"] == LOGIC_1

    def test_state_nets_match_sequential_outputs(self, small_circuit):
        sim = CombinationalSimulator(small_circuit)
        expected = [pin.net.name
                    for inst in small_circuit.sequential_instances()
                    for pin in inst.output_pins() if pin.net is not None]
        assert sim.state_nets == expected
