"""Unit tests for the standard-cell library and its three-valued semantics."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.netlist.cells import (
    LOGIC_0,
    LOGIC_1,
    LOGIC_X,
    standard_library,
    v_and,
    v_buf,
    v_mux,
    v_not,
    v_or,
    v_xor,
)

LOGIC = (LOGIC_0, LOGIC_1, LOGIC_X)


class TestPrimitives:
    def test_not_truth_table(self):
        assert v_not(LOGIC_0) == LOGIC_1
        assert v_not(LOGIC_1) == LOGIC_0
        assert v_not(LOGIC_X) == LOGIC_X

    def test_and_controlling_zero_dominates_x(self):
        assert v_and(LOGIC_0, LOGIC_X) == LOGIC_0
        assert v_and(LOGIC_X, LOGIC_1) == LOGIC_X
        assert v_and(LOGIC_1, LOGIC_1, LOGIC_1) == LOGIC_1

    def test_or_controlling_one_dominates_x(self):
        assert v_or(LOGIC_1, LOGIC_X) == LOGIC_1
        assert v_or(LOGIC_X, LOGIC_0) == LOGIC_X
        assert v_or(LOGIC_0, LOGIC_0) == LOGIC_0

    def test_xor_with_x_is_x(self):
        assert v_xor(LOGIC_X, LOGIC_0) == LOGIC_X
        assert v_xor(LOGIC_1, LOGIC_1) == LOGIC_0
        assert v_xor(LOGIC_1, LOGIC_0, LOGIC_1) == LOGIC_0

    def test_mux_select_known(self):
        assert v_mux(LOGIC_0, LOGIC_1, LOGIC_0) == LOGIC_1
        assert v_mux(LOGIC_1, LOGIC_1, LOGIC_0) == LOGIC_0

    def test_mux_select_x_agreeing_inputs(self):
        assert v_mux(LOGIC_X, LOGIC_1, LOGIC_1) == LOGIC_1
        assert v_mux(LOGIC_X, LOGIC_1, LOGIC_0) == LOGIC_X

    def test_buf_identity(self):
        for value in LOGIC:
            assert v_buf(value) == value

    @given(st.lists(st.sampled_from(LOGIC), min_size=1, max_size=6))
    def test_and_or_duality(self, values):
        """De Morgan: NOT(AND(x)) == OR(NOT(x))."""
        assert v_not(v_and(*values)) == v_or(*[v_not(v) for v in values])


class TestLibrary:
    def test_standard_library_is_cached(self):
        assert standard_library() is standard_library()

    def test_expected_cells_present(self, library):
        for name in ("BUF", "INV", "AND2", "NAND3", "OR4", "XOR2", "MUX2",
                     "FA", "HA", "DFF", "DFFR", "SDFF", "SDFFR", "DBGFF",
                     "TIE0", "TIE1"):
            assert name in library

    def test_unknown_cell_raises(self, library):
        with pytest.raises(KeyError):
            library.get("NAND9")

    def test_duplicate_cell_rejected(self, library):
        from repro.netlist.cells import Cell, Library

        lib = Library("dup")
        cell = Cell("X1", ("A",), ("Y",), lambda v: {"Y": v["A"]})
        lib.add(cell)
        with pytest.raises(ValueError):
            lib.add(cell)

    def test_cell_pin_helpers(self, library):
        cell = library.get("MUX2")
        assert cell.is_input("S") and cell.is_output("Y")
        assert cell.pins == ("D0", "D1", "S", "Y")

    def test_sequential_roles(self, library):
        sdff = library.get("SDFF")
        assert sdff.sequential
        assert sdff.role_pin("scan_in") == "SI"
        assert sdff.role_pin("scan_enable") == "SE"
        assert sdff.role_value("scan_enable_active") == LOGIC_1
        dbg = library.get("DBGFF")
        assert dbg.role_pin("debug_in") == "DI"
        assert dbg.role_pin("debug_enable") == "DE"

    def test_invalid_logic_value_rejected(self, library):
        with pytest.raises(ValueError):
            library.get("INV").evaluate({"A": 7})


class TestCombinationalTruth:
    """Exhaustive two-valued truth tables for every combinational cell."""

    REFERENCE = {
        "AND": lambda vals: int(all(vals)),
        "NAND": lambda vals: int(not all(vals)),
        "OR": lambda vals: int(any(vals)),
        "NOR": lambda vals: int(not any(vals)),
    }

    @pytest.mark.parametrize("family", ["AND", "NAND", "OR", "NOR"])
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_gate_families(self, library, family, arity):
        cell = library.get(f"{family}{arity}")
        reference = self.REFERENCE[family]
        for values in itertools.product((0, 1), repeat=arity):
            inputs = dict(zip(cell.inputs, values))
            assert cell.evaluate(inputs)["Y"] == reference(values)

    def test_xor_xnor(self, library):
        for a, b in itertools.product((0, 1), repeat=2):
            assert library.get("XOR2").evaluate({"A": a, "B": b})["Y"] == (a ^ b)
            assert library.get("XNOR2").evaluate({"A": a, "B": b})["Y"] == (1 - (a ^ b))

    def test_mux2(self, library):
        for d0, d1, s in itertools.product((0, 1), repeat=3):
            expected = d1 if s else d0
            assert library.get("MUX2").evaluate(
                {"D0": d0, "D1": d1, "S": s})["Y"] == expected

    def test_full_adder(self, library):
        for a, b, ci in itertools.product((0, 1), repeat=3):
            out = library.get("FA").evaluate({"A": a, "B": b, "CI": ci})
            assert out["S"] == (a + b + ci) % 2
            assert out["CO"] == (a + b + ci) // 2

    def test_half_adder(self, library):
        for a, b in itertools.product((0, 1), repeat=2):
            out = library.get("HA").evaluate({"A": a, "B": b})
            assert out["S"] == (a + b) % 2
            assert out["CO"] == (a + b) // 2

    def test_aoi_oai(self, library):
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert library.get("AO21").evaluate({"A": a, "B": b, "C": c})["Y"] == ((a & b) | c)
            assert library.get("AOI21").evaluate({"A": a, "B": b, "C": c})["Y"] == 1 - ((a & b) | c)
            assert library.get("OA21").evaluate({"A": a, "B": b, "C": c})["Y"] == ((a | b) & c)
            assert library.get("OAI21").evaluate({"A": a, "B": b, "C": c})["Y"] == 1 - ((a | b) & c)

    def test_tie_cells(self, library):
        assert library.get("TIE0").evaluate({})["Y"] == LOGIC_0
        assert library.get("TIE1").evaluate({})["Y"] == LOGIC_1


class TestSequentialCells:
    def test_dff_captures_d(self, library):
        cell = library.get("DFF")
        assert cell.evaluate({"D": 1, "CK": 0})["__next__"] == 1
        assert cell.evaluate({"D": 0, "CK": 1})["__next__"] == 0

    def test_dffr_reset_dominates(self, library):
        cell = library.get("DFFR")
        assert cell.evaluate({"D": 1, "CK": 0, "RN": 0})["__next__"] == 0
        assert cell.evaluate({"D": 1, "CK": 0, "RN": 1})["__next__"] == 1
        assert cell.evaluate({"D": 1, "CK": 0, "RN": LOGIC_X})["__next__"] == LOGIC_X

    def test_sdff_scan_mux(self, library):
        cell = library.get("SDFF")
        # SE=0 -> functional input, SE=1 -> serial input (paper Fig. 2).
        assert cell.evaluate({"D": 1, "SI": 0, "SE": 0, "CK": 0})["__next__"] == 1
        assert cell.evaluate({"D": 1, "SI": 0, "SE": 1, "CK": 0})["__next__"] == 0

    def test_sdffr_reset_dominates_scan(self, library):
        cell = library.get("SDFFR")
        assert cell.evaluate(
            {"D": 1, "SI": 1, "SE": 1, "CK": 0, "RN": 0})["__next__"] == 0

    def test_dbgff_debug_mux(self, library):
        cell = library.get("DBGFF")
        # DE=0 -> mission data, DE=1 -> debugger-forced value (paper Fig. 4).
        assert cell.evaluate({"D": 0, "DI": 1, "DE": 0, "CK": 0})["__next__"] == 0
        assert cell.evaluate({"D": 0, "DI": 1, "DE": 1, "CK": 0})["__next__"] == 1

    @given(st.sampled_from(LOGIC), st.sampled_from(LOGIC), st.sampled_from(LOGIC))
    def test_sdff_equals_mux_then_dff(self, library, d, si, se):
        """SDFF next-state must equal MUX2(D, SI, SE) feeding a DFF."""
        mux_out = library.get("MUX2").evaluate({"D0": d, "D1": si, "S": se})["Y"]
        sdff_next = library.get("SDFF").evaluate(
            {"D": d, "SI": si, "SE": se, "CK": 0})["__next__"]
        assert sdff_next == mux_out
