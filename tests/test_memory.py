"""Unit tests for the memory-map model and address-bit analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.analysis import (
    analyze_address_bits,
    constant_address_bits,
    free_address_bits,
)
from repro.memory.memory_map import MemoryMap, MemoryRegion


class TestMemoryRegion:
    def test_bounds_and_contains(self):
        region = MemoryRegion("sram", 0x1000, 0x100)
        assert region.end == 0x10FF
        assert region.contains(0x1000) and region.contains(0x10FF)
        assert not region.contains(0x1100)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion("bad", -1, 16)
        with pytest.raises(ValueError):
            MemoryRegion("bad", 0, 0)

    def test_overlap_detection(self):
        a = MemoryRegion("a", 0, 0x100)
        b = MemoryRegion("b", 0x80, 0x100)
        c = MemoryRegion("c", 0x100, 0x100)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)


class TestMemoryMap:
    def test_add_and_lookup(self):
        memory_map = MemoryMap(16, [MemoryRegion("a", 0, 256)])
        memory_map.add_region(MemoryRegion("b", 0x8000, 256))
        assert memory_map.is_legal(0x80) and memory_map.is_legal(0x8010)
        assert not memory_map.is_legal(0x4000)
        assert memory_map.region_of(0x80).name == "a"
        with pytest.raises(KeyError):
            memory_map.region_of(0x4000)
        assert memory_map.mapped_bytes() == 512
        assert len(memory_map) == 2

    def test_overlapping_region_rejected(self):
        memory_map = MemoryMap(16, [MemoryRegion("a", 0, 256)])
        with pytest.raises(ValueError):
            memory_map.add_region(MemoryRegion("b", 128, 256))

    def test_region_outside_address_space_rejected(self):
        with pytest.raises(ValueError):
            MemoryMap(8, [MemoryRegion("big", 0, 512)])

    def test_str_contains_regions(self):
        text = str(MemoryMap.date13_case_study())
        assert "flash" in text and "sram" in text


class TestAddressBitAnalysis:
    def test_date13_case_study_free_bits(self):
        """The benchmark memory map frees exactly bits 0..17 and bit 30,
        matching the constraint set reported in §4 of the paper."""
        free = free_address_bits(MemoryMap.date13_case_study())
        assert free == set(range(18)) | {30}

    def test_date13_verbatim_free_bits(self):
        """The ranges exactly as printed in the paper yield bits 0..18 and 30
        under the union criterion (one more than the paper's statement —
        discussed in EXPERIMENTS.md)."""
        free = free_address_bits(MemoryMap.date13_verbatim())
        assert free == set(range(19)) | {30}

    def test_constant_bits_complement_free_bits(self):
        memory_map = MemoryMap.date13_case_study()
        free = free_address_bits(memory_map)
        constants = constant_address_bits(memory_map)
        assert set(constants) | free == set(range(32))
        assert set(constants) & free == set()
        # Bit 31 is always 0; bit 30 is free, bits 18..29 are 0.
        assert constants[31] == 0
        assert all(constants[b] == 0 for b in range(18, 30))

    def test_constant_value_follows_region_base(self):
        memory_map = MemoryMap(8, [MemoryRegion("only", 0xC0, 16)])
        constants = constant_address_bits(memory_map)
        assert constants[7] == 1 and constants[6] == 1
        assert constants[5] == 0

    def test_background_example(self):
        """§3.3's explanatory example: a 1K RAM and 4K flash mapped from 0."""
        analysis = analyze_address_bits(MemoryMap.background_example())
        assert analysis.address_width == 32
        assert analysis.used_bit_count <= 13
        assert max(analysis.free_bits) <= 12
        assert analysis.frozen_bit_count >= 19

    def test_summary_and_bit_vector(self):
        analysis = analyze_address_bits(MemoryMap.date13_case_study())
        assert "free" in analysis.summary()
        vector = dict(analysis.bit_vector())
        assert vector[0] == "free"
        assert vector[31] == "0"

    @given(st.integers(min_value=0, max_value=2**12 - 1),
           st.integers(min_value=1, max_value=2**10))
    def test_free_bits_match_brute_force(self, base, size):
        """Property: analytical free-bit computation equals brute-force
        enumeration of the region's addresses."""
        if base + size > 2**12:
            size = 2**12 - base
        memory_map = MemoryMap(12, [MemoryRegion("r", base, size)])
        free = free_address_bits(memory_map)
        brute = set()
        addresses = range(base, base + size)
        for bit in range(12):
            values = {(a >> bit) & 1 for a in addresses}
            if values == {0, 1}:
                brute.add(bit)
        assert free == brute

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                              st.integers(min_value=1, max_value=64)),
                    min_size=1, max_size=3))
    def test_multi_region_free_bits_match_brute_force(self, raw_regions):
        """Property: the union criterion over several regions matches
        brute-force enumeration (overlapping candidates are skipped)."""
        memory_map = MemoryMap(10)
        for index, (base, size) in enumerate(raw_regions):
            region = MemoryRegion(f"r{index}", base, min(size, 1024 - base))
            try:
                memory_map.add_region(region)
            except ValueError:
                continue
        if not memory_map.regions:
            return
        addresses = [a for r in memory_map for a in range(r.base, r.end + 1)]
        brute = set()
        for bit in range(10):
            values = {(a >> bit) & 1 for a in addresses}
            if values == {0, 1}:
                brute.add(bit)
        assert free_address_bits(memory_map) == brute
