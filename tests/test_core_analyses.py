"""Unit tests for the §3 analyses: scan, debug control, debug observe, memory map."""

import pytest

from repro.core.debug_control import compute_baseline_untestable, identify_debug_control_untestable
from repro.core.debug_observe import identify_debug_observe_untestable
from repro.core.memory_analysis import identify_memory_map_untestable
from repro.core.scan_analysis import identify_scan_untestable, verify_scan_faults_with_engine
from repro.debug.interface import DebugInterface
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.memory.memory_map import MemoryMap, MemoryRegion
from repro.netlist.builder import NetlistBuilder
from repro.scan.insertion import insert_scan


class TestScanAnalysis:
    def test_single_cell_matches_fig2(self, scan_cell_circuit):
        # Expose the cell through a one-cell chain: si/se are already ports.
        result = identify_scan_untestable(scan_cell_circuit, scan_in_ports=["si"])
        assert len(result.chains) == 1
        assert result.chains[0].cells == ["u_sdff"]
        assert StuckAtFault("u_sdff/SI", SA0) in result.serial_input_faults
        assert StuckAtFault("u_sdff/SI", SA1) in result.serial_input_faults
        # Only the functional-mode stuck value on SE is pruned.
        assert StuckAtFault("u_sdff/SE", SA0) in result.scan_enable_faults
        assert StuckAtFault("u_sdff/SE", SA1) not in result.scan_enable_faults
        # The functional pins are never pruned.
        assert all(f.pin_name != "D" for f in result.untestable if not f.is_port_fault)

    def test_counts_on_generated_core(self, tiny_soc):
        result = identify_scan_untestable(tiny_soc.cpu)
        counts = result.counts()
        n_cells = tiny_soc.scan.total_cells
        assert counts["cells"] == n_cells
        assert counts["serial_input"] == 2 * n_cells
        assert counts["scan_enable"] == n_cells
        # Path buffers contribute 4 faults each (2 pins x 2 polarities).
        assert counts["path"] == 4 * len(tiny_soc.scan.path_buffers)
        assert counts["total"] == len(result.untestable)

    def test_all_pruned_faults_exist_in_universe(self, tiny_soc):
        universe = set(generate_fault_list(tiny_soc.cpu).faults())
        result = identify_scan_untestable(tiny_soc.cpu)
        assert result.untestable <= universe

    def test_engine_cross_check(self, tiny_soc):
        """The paper's §4 sanity check: tieing SE makes the pruned SI faults
        come back as untestable-due-to-tied-value from the engine."""
        result = identify_scan_untestable(tiny_soc.cpu)
        sample = sorted(result.serial_input_faults)[:40]
        agreement = verify_scan_faults_with_engine(tiny_soc.cpu, result, sample)
        assert all(agreement.values())

    def test_clock_pin_option(self, scan_cell_circuit):
        with_clock = identify_scan_untestable(scan_cell_circuit,
                                              scan_in_ports=["si"],
                                              include_clock_pins=True)
        without = identify_scan_untestable(scan_cell_circuit, scan_in_ports=["si"])
        assert len(with_clock.untestable) == len(without.untestable) + 2


class TestDebugControlAnalysis:
    def test_fig4_cell(self, debug_cell_circuit):
        result = identify_debug_control_untestable(debug_cell_circuit)
        assert result.tied_ports == {"di": 0, "de": 0}
        new = result.newly_untestable
        assert StuckAtFault("de", SA0) in new
        assert StuckAtFault("di", SA0) in new
        assert StuckAtFault("u_dbgff/DE", SA0) in new
        # The mission data path is untouched.
        assert StuckAtFault("u_dbgff/D", SA0) not in new
        assert StuckAtFault("u_dbgff/D", SA1) not in new

    def test_no_interface_is_a_noop(self, and_or_circuit):
        result = identify_debug_control_untestable(and_or_circuit)
        assert result.newly_untestable == set()

    def test_explicit_interface_overrides_annotation(self, and_or_circuit):
        interface = DebugInterface(control_inputs={"c": 1})
        result = identify_debug_control_untestable(and_or_circuit, interface=interface)
        assert result.tied_ports == {"c": 1}
        assert StuckAtFault("c", SA1) in result.newly_untestable

    def test_original_netlist_not_mutated(self, tiny_soc):
        before = {n: net.tied for n, net in tiny_soc.cpu.nets.items()}
        identify_debug_control_untestable(tiny_soc.cpu)
        after = {n: net.tied for n, net in tiny_soc.cpu.nets.items()}
        assert before == after

    def test_generated_core_counts(self, tiny_soc):
        result = identify_debug_control_untestable(tiny_soc.cpu)
        assert result.counts()["tied_ports"] == 17
        assert len(result.newly_untestable) > 100


class TestDebugObserveAnalysis:
    def test_fig4_observation(self, debug_cell_circuit):
        result = identify_debug_observe_untestable(debug_cell_circuit)
        assert result.floated_ports == ["do"]
        new = result.newly_untestable
        assert StuckAtFault("u_do_buf/A", SA0) in new
        assert StuckAtFault("u_do_buf/Y", SA1) in new
        assert StuckAtFault("do", SA0) in new
        # The flip-flop remains observable through the functional output.
        assert StuckAtFault("u_dbgff/Q", SA0) not in new

    def test_generated_core_counts(self, tiny_soc):
        result = identify_debug_observe_untestable(tiny_soc.cpu)
        dw = tiny_soc.config.cpu.data_width
        assert len(result.floated_ports) == 2 * dw
        # At least the dedicated observation buffers and ports become untestable.
        assert len(result.newly_untestable) >= 2 * dw * 2

    def test_no_observation_outputs_is_noop(self, and_or_circuit):
        result = identify_debug_observe_untestable(and_or_circuit)
        assert result.newly_untestable == set()


class TestMemoryMapAnalysis:
    def _single_register_netlist(self):
        """A 4-bit address register feeding an adder-like AND stage."""
        b = NetlistBuilder("addr")
        clk = b.add_input("clk")
        rst = b.add_input("rst_n")
        d = b.add_input_bus("d", 4)
        other = b.add_input_bus("o", 4)
        y = b.add_output_bus("y", 4)
        q_nets = []
        for i in range(4):
            q = b.dff(d[i], clk, reset_n=rst, name=f"addr_ff{i}")
            q_nets.append(q)
            b.gate("AND2", q, other[i], output=y[i])
        netlist = b.build()
        netlist.annotations["address_registers"] = [{
            "name": "addr",
            "ff_instances": [f"addr_ff{i}" for i in range(4)],
            "q_nets": q_nets,
            "address_bits": list(range(4)),
        }]
        return netlist

    def test_fig5_fig6_behaviour(self):
        netlist = self._single_register_netlist()
        # Map only 4 addresses: bits 2 and 3 are frozen at 0.
        memory_map = MemoryMap(4, [MemoryRegion("ram", 0, 4)])
        result = identify_memory_map_untestable(netlist, memory_map=memory_map)
        assert set(result.constant_bits) == {2, 3}
        assert set(result.tied_flops) == {"addr_ff2", "addr_ff3"}
        new = result.newly_untestable
        # Fig. 5: the frozen flip-flops lose their stuck-at-0 faults.
        assert StuckAtFault("addr_ff2/D", SA0) in new
        assert StuckAtFault("addr_ff2/Q", SA0) in new
        assert StuckAtFault("addr_ff2/D", SA1) not in new
        # Fig. 6: the tie propagates into the downstream AND gates.
        assert any(f.instance_name and f.instance_name.startswith("and2")
                   for f in new)
        # Free bits keep all their faults.
        assert StuckAtFault("addr_ff0/D", SA0) not in new

    def test_tie_outputs_ablation(self):
        """Tieing only the flip-flop inputs (stopping at the FF boundary)
        finds strictly fewer faults than also tieing the outputs (Fig. 6)."""
        netlist = self._single_register_netlist()
        memory_map = MemoryMap(4, [MemoryRegion("ram", 0, 4)])
        full = identify_memory_map_untestable(netlist, memory_map=memory_map,
                                              tie_flop_outputs=True)
        inputs_only = identify_memory_map_untestable(netlist, memory_map=memory_map,
                                                     tie_flop_outputs=False)
        assert inputs_only.newly_untestable < full.newly_untestable

    def test_missing_memory_map_raises(self):
        netlist = self._single_register_netlist()
        with pytest.raises(ValueError):
            identify_memory_map_untestable(netlist)

    def test_fully_free_map_is_noop(self):
        netlist = self._single_register_netlist()
        memory_map = MemoryMap(4, [MemoryRegion("all", 0, 16)])
        result = identify_memory_map_untestable(netlist, memory_map=memory_map)
        assert result.newly_untestable == set()
        assert result.tied_flops == []

    def test_generated_core(self, tiny_soc):
        result = identify_memory_map_untestable(tiny_soc.cpu,
                                                memory_map=tiny_soc.memory_map)
        assert result.tied_flops
        assert result.newly_untestable
        # Only address-register flops are tied.
        allowed_prefixes = ("agu_", "btb_", "spr_epc")
        assert all(name.startswith(allowed_prefixes) for name in result.tied_flops)


class TestBaseline:
    def test_baseline_is_stable(self, tiny_soc):
        faults = generate_fault_list(tiny_soc.cpu).faults()
        first = compute_baseline_untestable(tiny_soc.cpu, faults)
        second = compute_baseline_untestable(tiny_soc.cpu, faults)
        assert first == second

    def test_baseline_small_relative_to_universe(self, tiny_soc):
        faults = generate_fault_list(tiny_soc.cpu).faults()
        baseline = compute_baseline_untestable(tiny_soc.cpu, faults)
        assert len(baseline) < 0.1 * len(faults)
