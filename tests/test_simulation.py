"""Unit tests for combinational and sequential simulation."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.simulation.sequential import SequentialSimulator
from repro.simulation.simulator import CombinationalSimulator

from tests.conftest import all_input_patterns, build_and_or_circuit, build_small_adder_circuit


class TestCombinationalSimulator:
    def test_and_or_truth_table(self, and_or_circuit):
        sim = CombinationalSimulator(and_or_circuit)
        for pattern in all_input_patterns(["a", "b", "c"]):
            values = sim.evaluate(pattern)
            assert values["y"] == ((pattern["a"] & pattern["b"]) | pattern["c"])
            assert values["z"] == 1 - pattern["c"]

    def test_missing_inputs_default_to_x(self, and_or_circuit):
        sim = CombinationalSimulator(and_or_circuit)
        values = sim.evaluate({"a": 0, "b": 1})
        assert values["y"] == LOGIC_X  # AND=0, c unknown -> OR output unknown
        assert values["z"] == LOGIC_X
        values = sim.evaluate({"c": 1})
        assert values["y"] == LOGIC_1  # controlling value resolves the OR

    def test_tied_net_overrides_driver(self, and_or_circuit):
        and_or_circuit.net("y").tied = LOGIC_0
        sim = CombinationalSimulator(and_or_circuit)
        values = sim.evaluate({"a": 1, "b": 1, "c": 1})
        assert values["y"] == LOGIC_0

    def test_tied_input_port_ignores_supplied_value(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_0
        sim = CombinationalSimulator(and_or_circuit)
        values = sim.evaluate({"a": 1, "b": 1, "c": 1})
        assert values["y"] == 1  # c forced to 0, a&b=1

    def test_overrides_take_precedence(self, and_or_circuit):
        sim = CombinationalSimulator(and_or_circuit)
        # Force the AND output to 0 regardless of its inputs: y = c = 0.
        and_net = and_or_circuit.instance("and2_0").pin("Y").net.name
        values = sim.evaluate({"a": 1, "b": 1, "c": 0}, overrides={and_net: 0})
        assert values["y"] == 0

    def test_adder_matches_integer_addition(self):
        netlist = build_small_adder_circuit(4)
        sim = CombinationalSimulator(netlist)
        for x in range(16):
            for y in range(16):
                inputs = {f"a[{i}]": (x >> i) & 1 for i in range(4)}
                inputs.update({f"b[{i}]": (y >> i) & 1 for i in range(4)})
                values = sim.evaluate(inputs)
                total = sum(values[f"s[{i}]"] << i for i in range(4))
                total += values["co"] << 4
                assert total == x + y

    def test_output_values_helper(self, and_or_circuit):
        sim = CombinationalSimulator(and_or_circuit)
        values = sim.evaluate({"a": 0, "b": 0, "c": 1})
        outputs = sim.output_values(values)
        assert outputs == {"y": 1, "z": 0}
        and_or_circuit.unobservable_ports.add("z")
        assert sim.output_values(values, observable_only=True) == {"y": 1}

    def test_next_state_computation(self):
        b = NetlistBuilder("ff")
        clk = b.add_input("clk")
        d = b.add_input("d")
        q = b.dff(d, clk, name="ff0")
        netlist = b.build()
        sim = CombinationalSimulator(netlist)
        values = sim.evaluate({"d": 1})
        nxt = sim.next_state(values)
        assert nxt[q] == 1
        values = sim.evaluate({"d": 0})
        assert sim.next_state(values)[q] == 0


class TestSequentialSimulator:
    def test_shift_register_behaviour(self):
        b = NetlistBuilder("sr")
        clk = b.add_input("clk")
        d = b.add_input("d")
        q0 = b.dff(d, clk, name="ff0")
        q1 = b.dff(q0, clk, name="ff1")
        out = b.add_output("out")
        b.buf(q1, output=out)
        sim = SequentialSimulator(b.build())
        outputs = sim.run([{"d": 1}, {"d": 0}, {"d": 0}, {"d": 0}])
        assert [o["out"] for o in outputs] == [0, 0, 1, 0]

    def test_reset_clears_state_and_cycle(self):
        b = NetlistBuilder("sr")
        clk = b.add_input("clk")
        d = b.add_input("d")
        b.dff(d, clk, name="ff0")
        sim = SequentialSimulator(b.build())
        sim.step({"d": 1})
        assert sim.cycle == 1
        sim.reset()
        assert sim.cycle == 0
        assert all(v == LOGIC_0 for v in sim.state.values())

    def test_x_initialisation(self):
        b = NetlistBuilder("sr")
        clk = b.add_input("clk")
        d = b.add_input("d")
        b.dff(d, clk, name="ff0")
        sim = SequentialSimulator(b.build(), x_init=True)
        assert all(v == LOGIC_X for v in sim.state.values())

    def test_peek_poke(self):
        b = NetlistBuilder("sr")
        clk = b.add_input("clk")
        d = b.add_input("d")
        q = b.dff(d, clk, name="ff0")
        sim = SequentialSimulator(b.build())
        sim.poke(q, 1)
        assert sim.peek(q) == 1
        with pytest.raises(KeyError):
            sim.poke("not_a_state_net", 1)

    def test_counter_counts(self):
        """A 2-bit counter built from XOR/AND increments every cycle."""
        b = NetlistBuilder("cnt")
        clk = b.add_input("clk")
        one = b.tie1()
        q0 = b.netlist.get_or_create_net("q0").name
        q1 = b.netlist.get_or_create_net("q1").name
        d0 = b.xor(q0, one)
        carry = b.gate("AND2", q0, one)
        d1 = b.xor(q1, carry)
        b.dff(d0, clk, q=q0, name="c0")
        b.dff(d1, clk, q=q1, name="c1")
        out0 = b.add_output("o0")
        out1 = b.add_output("o1")
        b.buf(q0, output=out0)
        b.buf(q1, output=out1)
        sim = SequentialSimulator(b.build())
        seen = []
        for _ in range(5):
            values = sim.step({})
            seen.append((values["o1"] << 1) | values["o0"])
        assert seen == [0, 1, 2, 3, 0]
