"""Tests of the Session/Design API: defaults, grids, executors, the shim."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import (Design, ProcessExecutor, Scenario, ScenarioGrid,
                       SerialExecutor, Session, SweepReport, ThreadExecutor,
                       resolve_executor)
from repro.atpg.engine import AtpgEffort, resolve_effort
from repro.memory.memory_map import MemoryMap, MemoryRegion
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


def tiny_variant_map() -> MemoryMap:
    """A legal alternative mission map for the tiny core (8-bit bus)."""
    return MemoryMap(address_width=8, regions=[
        MemoryRegion("flash", 0, 16),
        MemoryRegion("sram", 192, 16),
    ])


@pytest.fixture(scope="module")
def tiny_session_report():
    session = Session()
    return session, session.analyze("tiny")


# --------------------------------------------------------------------- #
# Session defaults & analyze
# --------------------------------------------------------------------- #
class TestSessionDefaults:
    def test_defaults(self):
        session = Session()
        assert isinstance(session.executor, SerialExecutor)
        assert session.cache.max_entries is not None  # bounded by default
        assert session.passes is None
        assert session.effort is None

    def test_executor_by_name(self):
        assert isinstance(Session(executor="thread").executor, ThreadExecutor)
        assert isinstance(Session(executor="process").executor,
                          ProcessExecutor)
        with pytest.raises(ValueError, match="unknown executor"):
            Session(executor="cluster")

    def test_executor_instance_passthrough(self):
        backend = ThreadExecutor(max_workers=3)
        assert resolve_executor(backend) is backend

    def test_analyze_accepts_many_target_spellings(self, tiny_soc,
                                                   tiny_session_report):
        session, reference = tiny_session_report
        by_soc = session.analyze(tiny_soc)
        by_design = session.analyze(Design.from_soc(tiny_soc))
        assert by_soc.table_rows() == reference.table_rows()
        assert by_design.table_rows() == reference.table_rows()

    def test_analyze_rejects_unknown_target(self):
        with pytest.raises(TypeError, match="analysis target"):
            Session().analyze(42)

    def test_repeat_analysis_replays_from_cache(self, tiny_session_report):
        session, reference = tiny_session_report
        before = session.cache_stats["hits"]
        again = session.analyze("tiny")
        assert session.cache_stats["hits"] > before
        assert again.table_rows() == reference.table_rows()
        assert again.online_untestable == reference.online_untestable

    def test_session_effort_default_applies(self, tiny_session_report):
        session = Session(effort="tie")
        assert session.effort is AtpgEffort.TIE
        report = session.analyze("tiny")
        assert report.table_rows() == tiny_session_report[1].table_rows()


class TestDesign:
    def test_signature_stable_and_content_based(self, tiny_soc):
        one = Design.from_soc(tiny_soc)
        two = Design.from_soc(build_soc(SoCConfig.tiny()))
        assert one.signature == two.signature  # structural clones
        other = Design.coerce(tiny_soc, memory_map=tiny_variant_map())
        assert other.signature != one.signature  # memory map is content

    def test_coerce_preset_name(self):
        design = Design.coerce("tiny")
        assert design.label == "tiny"
        assert design.config is not None
        assert design.rebuild_spec == design.config


# --------------------------------------------------------------------- #
# ScenarioGrid expansion
# --------------------------------------------------------------------- #
class TestScenarioGrid:
    def test_degenerate_single_point(self):
        grid = ScenarioGrid("tiny")
        assert len(grid) == 1
        (scenario,) = grid.scenarios()
        assert scenario.label == "tiny"
        assert scenario.config == SoCConfig.tiny()
        assert scenario.effort is None
        assert scenario.index == 0

    def test_cartesian_expansion_order_and_labels(self):
        grid = (ScenarioGrid("tiny")
                .axis("debug", [True, False])
                .axis("effort", ["tie", "random"]))
        labels = [s.label for s in grid]
        assert labels == [
            "tiny[debug=on,effort=tie]",
            "tiny[debug=on,effort=random]",
            "tiny[debug=off,effort=tie]",
            "tiny[debug=off,effort=random]",
        ]
        assert [s.index for s in grid] == [0, 1, 2, 3]
        assert grid.scenarios()[1].effort is AtpgEffort.RANDOM
        assert not grid.scenarios()[2].config.cpu.has_debug

    def test_config_axes(self):
        base = SoCConfig.tiny()
        assert base.with_axis("scan", False).insert_scan is False
        assert base.with_axis("scan", 2).cpu.scan_chains == 2
        assert base.with_axis("debug", False).cpu.has_debug is False
        assert base.with_axis("size", "small").cpu == SoCConfig.small().cpu
        assert base.with_axis("cpu.mult_width", 4).cpu.mult_width == 4
        custom = tiny_variant_map()
        assert base.with_axis("memory_map", custom).memory_map is custom

    def test_bad_axis_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            ScenarioGrid("tiny").axis("voltage", [1, 2])
        with pytest.raises(ValueError, match="expects a MemoryMap"):
            # e.g. a CLI string leaking through must fail eagerly, not
            # deep inside the analysis of the first scenario.
            ScenarioGrid("tiny").axis("memory_map", ["default"])
        with pytest.raises(ValueError, match="no values"):
            ScenarioGrid("tiny").axis("debug", [])
        with pytest.raises(ValueError, match="unknown ATPG effort"):
            ScenarioGrid("tiny").axis("effort", ["turbo"])

    def test_grid_base_type_checked(self):
        with pytest.raises(TypeError, match="grid base"):
            ScenarioGrid(3.14)


# --------------------------------------------------------------------- #
# sweeps & executors
# --------------------------------------------------------------------- #
def four_variant_grid() -> ScenarioGrid:
    """4 SoC variants of the tiny core; two pairs share a netlist.

    ``memory_map`` does not change the netlist structure, so each
    ``debug`` variant appears with two maps — the sharing that makes
    cross-scenario cache reuse observable.
    """
    return (ScenarioGrid("tiny")
            .axis("debug", [True, False])
            .axis("memory_map", [None, tiny_variant_map()]))


def report_essence(report):
    return (report.table_rows(),
            sorted(str(f) for f in report.online_untestable))


class TestSweep:
    def test_thread_sweep_matches_serial_analyze_with_reuse(self):
        """The acceptance scenario: ≥4 variants, thread backend, reuse."""
        grid = four_variant_grid()
        assert len(grid) == 4

        session = Session(executor="thread")
        sweep = session.sweep(grid)
        assert [r.label for r in sweep] == [s.label for s in grid]
        assert all(r.ok for r in sweep), [r.error for r in sweep]

        # Identical to the deprecated one-shot entry point run serially.
        for scenario, result in zip(grid.scenarios(), sweep.results):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                reference = repro.analyze(build_soc(scenario.config))
            assert report_essence(result.report) == report_essence(reference)

        # The shared cache replayed at least one cross-scenario artifact.
        assert sweep.cache_stats["hits"] >= 1
        assert sweep.executor == "thread"

    def test_executor_equivalence(self):
        grid = four_variant_grid()
        essences = {}
        for backend in ("serial", "thread", "process"):
            sweep = Session().sweep(grid, executor=backend)
            assert all(r.ok for r in sweep), (backend,
                                              [r.error for r in sweep])
            essences[backend] = [report_essence(r.report) for r in sweep]
        assert essences["serial"] == essences["thread"]
        assert essences["serial"] == essences["process"]

    def test_iter_sweep_streams_all_scenarios(self):
        grid = ScenarioGrid("tiny").axis(
            "memory_map", [None, tiny_variant_map()])
        seen = {result.label
                for result in Session().iter_sweep(grid)}
        assert seen == {s.label for s in grid}

    def test_sweep_reports_errors_without_aborting(self):
        grid = ScenarioGrid("tiny")
        sweep = Session().sweep(grid, passes=["no_such_pass"])
        assert len(sweep.results) == 1
        assert not sweep.results[0].ok
        assert "no_such_pass" in sweep.results[0].error
        assert sweep.failed and not sweep.succeeded

    def test_sweep_accepts_scenario_sequence(self):
        scenarios = [Scenario(label="a", config=SoCConfig.tiny()),
                     Scenario(label="b", config=SoCConfig.tiny())]
        sweep = Session().sweep(scenarios)
        assert [r.label for r in sweep] == ["a", "b"]
        with pytest.raises(TypeError, match="sequence of"):
            Session().sweep(["tiny"])

    def test_sweep_report_aggregation_and_serialization(self):
        sweep = Session().sweep(four_variant_grid())
        rows = sweep.comparison_rows()
        assert rows[0]["delta_total"] is None  # the baseline scenario
        for row in rows[1:]:
            assert row["delta_total"] == row["total"] - rows[0]["total"]

        restored = SweepReport.from_json(sweep.to_json())
        assert [r.label for r in restored] == [r.label for r in sweep]
        assert restored.comparison_rows() == rows
        assert restored.to_table() == sweep.to_table()

        csv_text = sweep.to_csv()
        assert csv_text.splitlines()[0].startswith("scenario,")
        assert len(csv_text.splitlines()) == 1 + len(sweep.results)

        assert sweep.result_for(rows[1]["scenario"]).ok
        with pytest.raises(KeyError, match="no scenario"):
            sweep.result_for("nope")


# --------------------------------------------------------------------- #
# the deprecated shim & shared effort parsing
# --------------------------------------------------------------------- #
class TestLegacyShim:
    def test_analyze_warns_and_matches_session(self, tiny_soc,
                                               tiny_session_report):
        with pytest.warns(DeprecationWarning, match="Session"):
            report = repro.analyze(tiny_soc)
        assert report_essence(report) == report_essence(
            tiny_session_report[1])

    def test_shim_still_honours_kwargs(self, tiny_soc):
        with pytest.warns(DeprecationWarning):
            report = repro.analyze(tiny_soc, passes=["scan_analysis"],
                                   effort="tie", parallel=2)
        assert report.source_count(
            repro.faults.categories.OnlineUntestableSource.SCAN) > 0
        assert report.total_faults > 0


class TestResolveEffort:
    def test_shared_parser(self):
        assert resolve_effort(None) is None
        assert resolve_effort(None, AtpgEffort.FULL) is AtpgEffort.FULL
        assert resolve_effort("TIE") is AtpgEffort.TIE
        assert resolve_effort(" random ") is AtpgEffort.RANDOM
        assert resolve_effort(AtpgEffort.FULL) is AtpgEffort.FULL
        with pytest.raises(ValueError, match="unknown ATPG effort"):
            resolve_effort("max")


# --------------------------------------------------------------------- #
# process-backend sweeps (the picklable scenario path)
# --------------------------------------------------------------------- #
class TestProcessSweep:
    def test_four_scenario_grid_matches_serial_with_cache_sanity(self):
        """A 4-scenario grid on the process backend must reproduce the
        serial backend exactly; cache accounting must reflect that worker
        processes never touch the parent session's artifact cache."""
        grid = four_variant_grid()
        assert len(grid) == 4

        serial_session = Session()
        serial = serial_session.sweep(grid)
        assert all(result.ok for result in serial), [
            result.error for result in serial]
        # The serial sweep computes (and caches) in-process.
        assert serial.cache_stats["misses"] > 0

        process_session = Session(executor="process", max_workers=2)
        process = process_session.sweep(grid)
        assert process.executor == "process"
        assert all(result.ok for result in process), [
            result.error for result in process]

        assert [r.label for r in process] == [r.label for r in serial]
        assert [r.design_signature for r in process] == \
            [r.design_signature for r in serial]
        assert [report_essence(r.report) for r in process] == \
            [report_essence(r.report) for r in serial]

        # Workers rebuild designs in their own processes: the parent cache
        # sees no traffic at all from a process sweep.
        assert process.cache_stats == {"hits": 0, "misses": 0,
                                       "evictions": 0}
        assert all(result.elapsed_seconds > 0 for result in process)

    def test_process_sweep_carries_session_sharding_defaults(self):
        """Session-level --jobs defaults must survive the process boundary
        (the effective flow config ships with each job) and leave results
        identical."""
        grid = ScenarioGrid("tiny").axis("debug", [True, False])
        reference = Session().sweep(grid)
        sharded = Session(executor="process", jobs=2,
                          shard_backend="thread").sweep(grid)
        assert all(result.ok for result in sharded), [
            result.error for result in sharded]
        assert [report_essence(r.report) for r in sharded] == \
            [report_essence(r.report) for r in reference]


class TestPerCallJobsPrecedence:
    def test_call_jobs_overrides_session_and_config(self):
        from repro.api import RunOptions
        from repro.core.results import FlowConfig

        session = Session(options=RunOptions(jobs=4, shard_backend="thread"))
        # per-call jobs beats the session default
        config = session._effective_flow_config(None, RunOptions(jobs=2))
        assert config.jobs == 2
        # per-call jobs=1 forces a serial run of a sharded flow config
        config = session._effective_flow_config(FlowConfig(jobs=8),
                                                RunOptions(jobs=1))
        assert config.jobs == 1
        # no per-call value: session default fills the serial default only
        assert session._effective_flow_config(None, None).jobs == 4
        assert session._effective_flow_config(FlowConfig(jobs=8),
                                              None).jobs == 8
