"""Unit tests for the tied-value untestability analysis and the engine.

These tests reproduce, at cell level, the three figures of the paper that
motivate the method: the mux-scan cell (Fig. 2), the debug flip-flop
(Fig. 4) and the constant-value DFF (Fig. 5/6).
"""

import pytest

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.atpg.tie_analysis import TieAnalysis
from repro.faults.categories import FaultClass
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.netlist.cells import LOGIC_0, LOGIC_1

from tests.conftest import build_and_or_circuit


class TestTieAnalysisBasics:
    def test_no_ties_no_untestable(self, and_or_circuit):
        analysis = TieAnalysis(and_or_circuit)
        faults = generate_fault_list(and_or_circuit).faults()
        result = analysis.run(faults)
        assert result.untestable == set()

    def test_unexcitable_fault_is_ut(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        analysis = TieAnalysis(and_or_circuit)
        assert analysis.classify_fault(StuckAtFault("c", SA1)) is FaultClass.UT
        assert analysis.classify_fault(StuckAtFault("inv_0/A", SA1)) is FaultClass.UT
        # The opposite-polarity fault is excitable but blocked downstream of
        # the inverter?  No: z is observable, so it is testable.
        assert analysis.classify_fault(StuckAtFault("inv_0/A", SA0)) is None

    def test_blocked_fault_is_ub(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        analysis = TieAnalysis(and_or_circuit)
        # Faults in the AND cone can be excited but never pass the OR gate.
        assert analysis.classify_fault(StuckAtFault("and2_0/A", SA0)) is FaultClass.UB
        assert analysis.classify_fault(StuckAtFault("and2_0/Y", SA1)) is FaultClass.UB

    def test_unobservable_fault_is_uo(self, and_or_circuit):
        and_or_circuit.unobservable_ports.add("z")
        analysis = TieAnalysis(and_or_circuit)
        # The inverter only feeds the floated port z.
        assert analysis.classify_fault(StuckAtFault("inv_0/Y", SA0)) is FaultClass.UO
        assert analysis.classify_fault(StuckAtFault("z", SA1)) is FaultClass.UO
        # The c input still reaches y through the OR gate.
        assert analysis.classify_fault(StuckAtFault("c", SA0)) is None

    def test_soundness_against_podem(self, and_or_circuit):
        """Everything the tie analysis calls untestable must be proven
        untestable by exhaustive PODEM on the same manipulated circuit."""
        from repro.atpg.podem import Podem, PodemStatus

        and_or_circuit.net("c").tied = LOGIC_1
        and_or_circuit.unobservable_ports.add("z")
        analysis = TieAnalysis(and_or_circuit)
        faults = generate_fault_list(and_or_circuit).faults()
        result = analysis.run(faults)
        podem = Podem(and_or_circuit, backtrack_limit=10_000)
        for fault in result.untestable:
            assert podem.generate(fault).status is PodemStatus.UNTESTABLE, fault


class TestFig2ScanCell:
    """Paper Fig. 2: mux-scan cell with SE held at the functional value."""

    def test_scan_faults_untestable_when_se_tied_low(self, scan_cell_circuit):
        scan_cell_circuit.net("se").tied = LOGIC_0
        analysis = TieAnalysis(scan_cell_circuit)
        # SI can never be observed (capture mux selects D).
        assert analysis.classify_fault(StuckAtFault("u_sdff/SI", SA0)) is not None
        assert analysis.classify_fault(StuckAtFault("u_sdff/SI", SA1)) is not None
        # SE stuck at the functional value 0 is unexcitable.
        assert analysis.classify_fault(StuckAtFault("u_sdff/SE", SA0)) is FaultClass.UT
        # SE stuck-at-1 would wrongly select SI: it must remain testable.
        assert analysis.classify_fault(StuckAtFault("u_sdff/SE", SA1)) is None
        # The functional data path stays fully testable.
        assert analysis.classify_fault(StuckAtFault("u_sdff/D", SA0)) is None
        assert analysis.classify_fault(StuckAtFault("u_sdff/D", SA1)) is None


class TestFig4DebugCell:
    """Paper Fig. 4: debug flip-flop with DE/DI tied and DO floating."""

    def test_debug_control_faults(self, debug_cell_circuit):
        debug_cell_circuit.net("de").tied = LOGIC_0
        debug_cell_circuit.net("di").tied = LOGIC_0
        analysis = TieAnalysis(debug_cell_circuit)
        assert analysis.classify_fault(StuckAtFault("u_dbgff/DE", SA0)) is FaultClass.UT
        assert analysis.classify_fault(StuckAtFault("u_dbgff/DI", SA0)) is FaultClass.UT
        assert analysis.classify_fault(StuckAtFault("u_dbgff/DI", SA1)) is not None
        # DE stuck-at-1 erroneously enables the debug path: still testable.
        assert analysis.classify_fault(StuckAtFault("u_dbgff/DE", SA1)) is None
        assert analysis.classify_fault(StuckAtFault("u_dbgff/D", SA1)) is None

    def test_debug_observation_faults(self, debug_cell_circuit):
        debug_cell_circuit.unobservable_ports.add("do")
        analysis = TieAnalysis(debug_cell_circuit)
        # The DO buffer only feeds the floating debug output.
        assert analysis.classify_fault(StuckAtFault("u_do_buf/A", SA0)) is FaultClass.UO
        assert analysis.classify_fault(StuckAtFault("u_do_buf/Y", SA1)) is FaultClass.UO
        assert analysis.classify_fault(StuckAtFault("do", SA0)) is FaultClass.UO
        # The flip-flop itself is still observable through fo.
        assert analysis.classify_fault(StuckAtFault("u_dbgff/D", SA0)) is None


class TestFig5ConstantDff:
    """Paper Fig. 5/6: a DFF holding a frozen address bit."""

    def test_only_stuck_at_one_faults_remain(self, constant_dff_circuit):
        # Freeze the register: D and Q tied to 0 (paper §3.3 step 4a).
        q_net = constant_dff_circuit.instance("u_addr_ff").pin("Q").net.name
        constant_dff_circuit.net("d").tied = LOGIC_0
        constant_dff_circuit.net(q_net).tied = LOGIC_0
        analysis = TieAnalysis(constant_dff_circuit)

        assert analysis.classify_fault(StuckAtFault("u_addr_ff/D", SA0)) is FaultClass.UT
        assert analysis.classify_fault(StuckAtFault("u_addr_ff/Q", SA0)) is FaultClass.UT
        # The stuck-at-1 faults remain testable (they would corrupt the system).
        assert analysis.classify_fault(StuckAtFault("u_addr_ff/D", SA1)) is None
        assert analysis.classify_fault(StuckAtFault("u_addr_ff/Q", SA1)) is None

    def test_tie_propagates_into_downstream_logic(self, constant_dff_circuit):
        """Fig. 6: tieing the register output exposes untestable faults in the
        connected combinational logic (the AND gate fed by the register)."""
        q_net = constant_dff_circuit.instance("u_addr_ff").pin("Q").net.name
        constant_dff_circuit.net(q_net).tied = LOGIC_0
        analysis = TieAnalysis(constant_dff_circuit)
        and_gate = [i for i in constant_dff_circuit.instances.values()
                    if i.cell.name == "AND2"][0]
        # The AND input fed by the frozen register: s-a-0 unexcitable.
        assert analysis.classify_fault(
            StuckAtFault(f"{and_gate.name}/A", SA0)) is FaultClass.UT
        # The other AND input is blocked by the controlling constant 0.
        assert analysis.classify_fault(
            StuckAtFault(f"{and_gate.name}/B", SA0)) is FaultClass.UB
        assert analysis.classify_fault(
            StuckAtFault(f"{and_gate.name}/B", SA1)) is FaultClass.UB


class TestEngine:
    def test_tie_effort_reports_only_untestable(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        engine = StructuralUntestabilityEngine(and_or_circuit, effort=AtpgEffort.TIE)
        faults = generate_fault_list(and_or_circuit).faults()
        report = engine.classify(faults)
        assert report.untestable
        assert not report.detected

    def test_random_effort_marks_detectable_faults(self, and_or_circuit):
        engine = StructuralUntestabilityEngine(and_or_circuit,
                                               effort=AtpgEffort.RANDOM,
                                               random_patterns=64)
        faults = generate_fault_list(and_or_circuit, include_ports=False).faults()
        report = engine.classify(faults)
        assert len(report.detected) == len(faults)

    def test_full_effort_settles_every_fault(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        engine = StructuralUntestabilityEngine(and_or_circuit, effort=AtpgEffort.FULL)
        faults = generate_fault_list(and_or_circuit).faults()
        report = engine.classify(faults)
        classified = set(report.classifications)
        assert classified == set(faults)
        assert FaultClass.NC not in set(report.classifications.values())
        counts = report.counts()
        assert counts.get("AU", 0) == 0  # small circuit: nothing abandoned

    def test_full_effort_agrees_with_tie_effort_on_untestable(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        faults = generate_fault_list(and_or_circuit).faults()
        tie_report = StructuralUntestabilityEngine(
            and_or_circuit, effort=AtpgEffort.TIE).classify(faults)
        full_report = StructuralUntestabilityEngine(
            and_or_circuit, effort=AtpgEffort.FULL).classify(faults)
        assert set(tie_report.untestable) <= set(full_report.untestable)

    def test_classify_fault_list_updates_in_place(self, and_or_circuit):
        and_or_circuit.net("c").tied = LOGIC_1
        fault_list = generate_fault_list(and_or_circuit)
        engine = StructuralUntestabilityEngine(and_or_circuit)
        engine.classify_fault_list(fault_list)
        assert fault_list.untestable()

    def test_runtime_and_phase_bookkeeping(self, and_or_circuit):
        engine = StructuralUntestabilityEngine(and_or_circuit, effort=AtpgEffort.FULL,
                                               random_patterns=0)
        report = engine.classify(generate_fault_list(and_or_circuit).faults())
        assert report.runtime_seconds > 0
        assert "tie" in report.phase_runtimes
        # With the random phase disabled every detectable fault must be
        # settled by PODEM.
        assert "podem" in report.phase_runtimes
        assert report.detected
