"""Unit tests for the NetlistBuilder convenience layer."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import check_netlist
from repro.simulation.simulator import CombinationalSimulator

from tests.conftest import all_input_patterns


class TestPortsAndNets:
    def test_bus_declaration(self):
        b = NetlistBuilder("m")
        nets = b.add_input_bus("data", 4)
        assert nets == [f"data[{i}]" for i in range(4)]
        assert all(n in b.netlist.ports for n in nets)

    def test_new_net_is_unique(self):
        b = NetlistBuilder("m")
        names = {b.new_net() for _ in range(50)}
        assert len(names) == 50

    def test_new_bus_width(self):
        b = NetlistBuilder("m")
        assert len(b.new_bus("x", 7)) == 7


class TestGateHelpers:
    def test_gate_arity_mismatch_raises(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        with pytest.raises(ValueError):
            b.gate("AND2", a)

    def test_gate_requires_single_output_cell(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        c = b.add_input("b")
        with pytest.raises(ValueError):
            b.gate("HA", a, c)

    def test_named_output_net_used(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        y = b.add_output("y")
        out = b.inv(a, output=y)
        assert out == "y"
        assert b.netlist.net("y").driver is not None

    def test_wide_and_tree_matches_python_and(self):
        b = NetlistBuilder("m")
        inputs = b.add_input_bus("i", 9)
        y = b.add_output("y")
        b.and_(*inputs, output=y)
        netlist = b.build()
        assert not check_netlist(netlist)
        sim = CombinationalSimulator(netlist)
        for pattern in all_input_patterns(inputs[:5]):
            full = {n: 1 for n in inputs}
            full.update(pattern)
            values = sim.evaluate(full)
            assert values["y"] == int(all(full.values()))

    def test_wide_or_tree_single_input(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        y = b.add_output("y")
        b.or_(a, output=y)
        sim = CombinationalSimulator(b.build())
        assert sim.evaluate({"a": 1})["y"] == 1
        assert sim.evaluate({"a": 0})["y"] == 0

    def test_tree_with_no_inputs_raises(self):
        with pytest.raises(ValueError):
            NetlistBuilder("m").and_()

    def test_mux_select_semantics(self):
        b = NetlistBuilder("m")
        s = b.add_input("s")
        d0 = b.add_input("d0")
        d1 = b.add_input("d1")
        y = b.add_output("y")
        b.mux(s, d0, d1, output=y)
        sim = CombinationalSimulator(b.build())
        assert sim.evaluate({"s": 0, "d0": 1, "d1": 0})["y"] == 1
        assert sim.evaluate({"s": 1, "d0": 1, "d1": 0})["y"] == 0

    def test_tie_cells(self):
        b = NetlistBuilder("m")
        y0 = b.add_output("y0")
        y1 = b.add_output("y1")
        b.tie0(output=y0)
        b.tie1(output=y1)
        sim = CombinationalSimulator(b.build())
        values = sim.evaluate({})
        assert values["y0"] == 0 and values["y1"] == 1


class TestSequentialHelpers:
    def test_dff_and_register(self):
        b = NetlistBuilder("m")
        clk = b.add_input("clk")
        d = b.add_input_bus("d", 3)
        q = b.register(d, clk, prefix="r")
        assert len(q) == 3
        assert sum(1 for i in b.netlist.instances.values() if i.is_sequential) == 3

    def test_dff_with_reset_uses_dffr(self):
        b = NetlistBuilder("m")
        clk = b.add_input("clk")
        rst = b.add_input("rst_n")
        d = b.add_input("d")
        b.dff(d, clk, reset_n=rst, name="ff0")
        assert b.netlist.instance("ff0").cell.name == "DFFR"

    def test_sdff_helper(self):
        b = NetlistBuilder("m")
        for p in ("clk", "d", "si", "se"):
            b.add_input(p)
        b.sdff("d", "si", "se", "clk", name="sff")
        inst = b.netlist.instance("sff")
        assert inst.cell.name == "SDFF"
        assert inst.pin("SE").net.name == "se"
