"""The pluggable simulation-kernel layer (:mod:`repro.simulation.kernels`).

Byte-identity is the kernel contract: whatever backend runs, the planes,
verdicts and detecting-pattern indices must match the Python-int oracle
exactly.  This module pins that contract from four directions:

* exhaustively — every cell kind with a vector model, over all {0, 1, X}
  input combinations, numpy planes vs the int plane loop;
* property-based — random cones and random three-valued windows, with the
  hybrid walk/batch routing forced both ways;
* end-to-end — fault-simulation results (including detecting-pattern
  indices) across kernels, shard backends and fault models;
* degraded — a ``sys.modules`` guard simulates a numpy-less environment
  and pins the one-time-warning fallback to the int kernel.
"""

from __future__ import annotations

import itertools
import random
import sys
import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X, standard_library
from repro.netlist.compiled import get_compiled
from repro.simulation import kernels as kernels_module
from repro.simulation.fault_sim import FaultSimulator, good_planes
from repro.simulation.kernels import (IntKernel, NumpyKernel, get_kernel,
                                      kernel_info, normalize_kernel,
                                      numpy_available, reset_kernel_state)
from repro.simulation.sharded import ShardedFaultSimulator
from repro.simulation.simulator import plane_program

from tests.test_properties import _input_names, random_circuits

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy is not installed")

THREE_VALUES = (LOGIC_0, LOGIC_1, LOGIC_X)


# --------------------------------------------------------------------- #
# spec resolution
# --------------------------------------------------------------------- #
class TestResolution:
    def test_normalize_kernel(self):
        assert normalize_kernel(None) == "auto"
        assert normalize_kernel(" INT ") == "int"
        assert normalize_kernel("numpy") == "numpy"
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            normalize_kernel("cuda")

    def test_get_kernel_is_idempotent_on_kernel_objects(self):
        kernel = get_kernel("int")
        assert isinstance(kernel, IntKernel)
        assert kernel.name == "int"
        assert get_kernel(kernel) is kernel

    @needs_numpy
    def test_auto_prefers_numpy_when_available(self):
        assert get_kernel(None).name == "numpy"
        assert get_kernel("auto").name == "numpy"
        assert isinstance(get_kernel("numpy"), NumpyKernel)
        info = kernel_info()
        assert info["kernel"] == "numpy"
        assert info["numpy_version"]

    def test_int_info_has_no_version(self):
        assert kernel_info("int") == {"kernel": "int"}

    def test_scenario_grid_kernel_axis(self):
        from repro.api.grid import ScenarioGrid

        grid = ScenarioGrid("tiny").axis("kernel", ["int", "NUMPY"])
        points = grid.scenarios()
        assert [point.kernel for point in points] == ["int", "numpy"]
        assert all(f"kernel={point.kernel}" in point.label
                   for point in points)
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            ScenarioGrid("tiny").axis("kernel", ["cuda"])


# --------------------------------------------------------------------- #
# exhaustive per-cell plane equivalence
# --------------------------------------------------------------------- #
def _single_cell_netlist(kind):
    """A netlist of one ``kind`` instance with every output buffered out."""
    lib = standard_library()
    cell = lib.get(kind)
    b = NetlistBuilder(f"cell_{kind.lower()}")
    inputs = [b.add_input(f"i{k}") for k in range(len(cell.inputs))]
    connections = dict(zip(cell.inputs, inputs))
    internal = []
    for pin in cell.outputs:
        net = b.new_net("y")
        connections[pin] = net
        internal.append(net)
    b.cell(kind, connections, name="u0")
    for pos, net in enumerate(internal):
        b.buf(net, output=b.add_output(f"o{pos}"))
    return b.build(), inputs


@needs_numpy
def test_every_vector_cell_matches_int_planes_exhaustively():
    """All {0,1,X}^arity combinations, per cell kind with a vector model."""
    from repro.simulation.kernels import _build_np_plane_fns, _load_numpy

    plane_fns = _build_np_plane_fns(_load_numpy())
    int_kernel = get_kernel("int")
    numpy_kernel = get_kernel("numpy")
    assert numpy_kernel.name == "numpy"
    for kind in sorted(plane_fns):
        netlist, inputs = _single_cell_netlist(kind)
        compiled = get_compiled(netlist)
        # The whole point is the vectorized path: a netlist built purely
        # from modelled cells must lower to a plan, not fall back.
        assert numpy_kernel._plan(compiled) is not None, kind
        program, _ = plane_program(compiled)
        combos = list(itertools.product(THREE_VALUES, repeat=len(inputs)))
        for lo in range(0, len(combos), 64):
            window = [dict(zip(inputs, combo))
                      for combo in combos[lo:lo + 64]]
            ref1, ref0, _, _ = good_planes(compiled, program, window,
                                           kernel=int_kernel)
            got1, got0, _, _ = good_planes(compiled, program, window,
                                           kernel=numpy_kernel)
            assert got1 == ref1 and got0 == ref0, kind


# --------------------------------------------------------------------- #
# property tests: random cones, both sides of the hybrid routing
# --------------------------------------------------------------------- #
@needs_numpy
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(netlist=random_circuits(),
       patterns=st.lists(st.tuples(*([st.sampled_from(THREE_VALUES)] * 4)),
                         min_size=1, max_size=48))
def test_random_cones_match_across_kernels(netlist, patterns):
    """Planes and full fault-sim results agree on random circuits, with
    the cone-size routing forced to all-batch and all-walk."""
    window = [dict(zip(_input_names(), combo)) for combo in patterns]
    compiled = get_compiled(netlist)
    program, _ = plane_program(compiled)
    int_kernel = get_kernel("int")
    numpy_kernel = get_kernel("numpy")
    ref = good_planes(compiled, program, window, kernel=int_kernel)
    got = good_planes(compiled, program, window, kernel=numpy_kernel)
    assert got[:2] == ref[:2]

    faults = generate_fault_list(netlist).faults()
    reference = FaultSimulator(netlist, kernel="int").run(faults, window)
    saved = kernels_module.PLANE_WALK_CUTOFF
    try:
        for cutoff in (0, 1 << 30):  # everything batches / everything walks
            kernels_module.PLANE_WALK_CUTOFF = cutoff
            result = FaultSimulator(netlist, kernel="numpy").run(
                faults, window)
            assert result.detected == reference.detected
            assert result.undetected == reference.undetected
            assert result.detecting_pattern == reference.detecting_pattern
    finally:
        kernels_module.PLANE_WALK_CUTOFF = saved


# --------------------------------------------------------------------- #
# end-to-end identity: kernels x shard backends x fault models
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tiny_cpu(tiny_soc):
    return tiny_soc.cpu


@pytest.fixture(scope="module")
def tiny_mission_patterns(tiny_cpu):
    """Deterministic fully-specified patterns over the controllable nets;
    more than one 64-pattern window so window chaining is exercised."""
    rng = random.Random(20138)
    sim = FaultSimulator(tiny_cpu, kernel="int")
    controllable = [p for p in tiny_cpu.input_ports()
                    if tiny_cpu.net(p).tied is None]
    controllable += sim.sim.state_nets
    return [{net: (LOGIC_1 if rng.getrandbits(1) else LOGIC_0)
             for net in controllable}
            for _ in range(70)]


@needs_numpy
@pytest.mark.parametrize("model", ["stuck_at", "transition"])
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_fault_sim_identity_across_kernels_and_backends(
        tiny_cpu, tiny_mission_patterns, backend, model, monkeypatch):
    # Force the batch path for at least part of the population: on the
    # tiny core every cone is below the default cutoff, which would leave
    # the vectorized sweep untested in-process (worker processes still run
    # the default routing — identity must hold there too).
    monkeypatch.setattr(kernels_module, "PLANE_WALK_CUTOFF", 0)
    all_faults = generate_fault_list(tiny_cpu, model=model).faults()
    step = max(1, len(all_faults) // 60)
    faults = all_faults[::step][:60]

    reference = FaultSimulator(tiny_cpu, kernel="int").run(
        faults, tiny_mission_patterns)
    serial_numpy = FaultSimulator(tiny_cpu, kernel="numpy").run(
        faults, tiny_mission_patterns)
    assert serial_numpy.detected == reference.detected
    assert serial_numpy.undetected == reference.undetected
    assert serial_numpy.detecting_pattern == reference.detecting_pattern

    sharded = ShardedFaultSimulator(tiny_cpu, jobs=2, backend=backend,
                                    kernel="numpy")
    result = sharded.run(faults, tiny_mission_patterns)
    assert result.detected == reference.detected
    assert result.undetected == reference.undetected
    assert result.detecting_pattern == reference.detecting_pattern


# --------------------------------------------------------------------- #
# degraded environment: numpy absent
# --------------------------------------------------------------------- #
_MISSING = object()


def test_numpy_missing_falls_back_with_one_warning():
    """Blocking the numpy import must leave every spec usable: 'numpy'
    warns once (RuntimeWarning) and runs on the int oracle, 'auto' resolves
    quietly, and simulation still works end to end."""
    saved = sys.modules.get("numpy", _MISSING)
    sys.modules["numpy"] = None  # poisons `import numpy` in-process
    reset_kernel_state()
    try:
        assert not numpy_available()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = get_kernel("numpy")
            second = get_kernel("numpy")  # the warning must not repeat
            auto = get_kernel("auto")
        assert first.name == "int" and second.name == "int"
        assert auto.name == "int"
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "falling back" in str(runtime[0].message)
        assert kernel_info("numpy") == {"kernel": "int"}

        b = NetlistBuilder("fallback")
        a, c = b.add_input("a"), b.add_input("b")
        b.buf(b.and_(a, c), output=b.add_output("y"))
        netlist = b.build()
        faults = generate_fault_list(netlist).faults()
        window = [{"a": LOGIC_1, "b": LOGIC_1}, {"a": LOGIC_0, "b": LOGIC_1}]
        result = FaultSimulator(netlist, kernel="numpy").run(faults, window)
        assert result.detected
    finally:
        if saved is _MISSING:
            sys.modules.pop("numpy", None)
        else:
            sys.modules["numpy"] = saved
        reset_kernel_state()
