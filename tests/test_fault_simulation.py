"""Unit tests for serial and pattern-parallel stuck-at fault simulation."""

import itertools

import pytest

from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.parallel import ParallelPatternSimulator

from tests.conftest import all_input_patterns, build_and_or_circuit


class TestSerialFaultSimulator:
    def test_detects_and_gate_input_fault(self, and_or_circuit):
        sim = FaultSimulator(and_or_circuit)
        fault = StuckAtFault("and2_0/A", SA0)
        # Excite: a=1, b=1 (so faulty AND output differs), c=0 to propagate.
        assert sim.detects(fault, {"a": 1, "b": 1, "c": 0})
        # c=1 blocks the OR gate: no detection.
        assert not sim.detects(fault, {"a": 1, "b": 1, "c": 1})
        # a=0 does not excite.
        assert not sim.detects(fault, {"a": 0, "b": 1, "c": 0})

    def test_port_fault_detection(self, and_or_circuit):
        sim = FaultSimulator(and_or_circuit)
        fault = StuckAtFault("c", SA1)
        assert sim.detects(fault, {"a": 0, "b": 0, "c": 0})

    def test_output_port_fault(self, and_or_circuit):
        sim = FaultSimulator(and_or_circuit)
        fault = StuckAtFault("y", SA0)
        assert sim.detects(fault, {"a": 1, "b": 1, "c": 1})
        assert not sim.detects(fault, {"a": 0, "b": 0, "c": 0})

    def test_run_with_fault_dropping(self, and_or_circuit):
        sim = FaultSimulator(and_or_circuit)
        faults = generate_fault_list(and_or_circuit, include_ports=False).faults()
        patterns = list(all_input_patterns(["a", "b", "c"]))
        result = sim.run(faults, patterns)
        # Every fault of this small irredundant circuit is detectable.
        assert result.undetected == set()
        assert result.coverage == 1.0
        assert all(fault in result.detecting_pattern for fault in result.detected)

    def test_run_without_dropping_counts_all(self, and_or_circuit):
        sim = FaultSimulator(and_or_circuit)
        faults = [StuckAtFault("and2_0/A", SA0)]
        patterns = list(all_input_patterns(["a", "b", "c"]))
        result = sim.run(faults, patterns, drop_detected=False)
        assert result.detected == set(faults)

    def test_observation_through_ff_inputs(self):
        b = NetlistBuilder("ffobs")
        clk = b.add_input("clk")
        a = b.add_input("a")
        c = b.add_input("b")
        n = b.gate("AND2", a, c)
        b.dff(n, clk, name="ff")
        netlist = b.build()
        fault = StuckAtFault("and2_0/Y", SA0)
        observed = FaultSimulator(netlist, observe_state_inputs=True)
        hidden = FaultSimulator(netlist, observe_state_inputs=False)
        pattern = {"a": 1, "b": 1}
        assert observed.detects(fault, pattern)
        assert not hidden.detects(fault, pattern)

    def test_tied_net_blocks_detection(self, and_or_circuit):
        and_or_circuit.net("c").tied = 1  # OR output forced to 1
        sim = FaultSimulator(and_or_circuit)
        fault = StuckAtFault("and2_0/A", SA0)
        assert not sim.detects(fault, {"a": 1, "b": 1, "c": 0})


class TestParallelPatternSimulator:
    def _pack(self, patterns, names):
        words = {name: 0 for name in names}
        for index, pattern in enumerate(patterns):
            for name in names:
                if pattern[name]:
                    words[name] |= 1 << index
        return words

    def test_good_simulation_matches_serial(self, and_or_circuit):
        serial = FaultSimulator(and_or_circuit)
        parallel = ParallelPatternSimulator(and_or_circuit)
        patterns = list(all_input_patterns(["a", "b", "c"]))
        words = self._pack(patterns, ["a", "b", "c"])
        values = parallel.good_simulation(words, len(patterns))
        for index, pattern in enumerate(patterns):
            reference = serial.good_values(pattern)
            for net in ("y", "z"):
                assert ((values[net] >> index) & 1) == reference[net]

    def test_detected_faults_match_serial(self, and_or_circuit):
        serial = FaultSimulator(and_or_circuit)
        parallel = ParallelPatternSimulator(and_or_circuit)
        faults = generate_fault_list(and_or_circuit, include_ports=False).faults()
        patterns = list(all_input_patterns(["a", "b", "c"]))
        words = self._pack(patterns, ["a", "b", "c"])

        parallel_detected = parallel.detected_faults(faults, words, len(patterns))
        serial_detected = serial.run(faults, patterns).detected
        assert parallel_detected == serial_detected

    def test_tied_nets_respected(self, and_or_circuit):
        and_or_circuit.net("c").tied = 1
        parallel = ParallelPatternSimulator(and_or_circuit)
        fault = StuckAtFault("and2_0/A", SA0)
        patterns = list(all_input_patterns(["a", "b", "c"]))
        words = self._pack(patterns, ["a", "b", "c"])
        assert fault not in parallel.detected_faults([fault], words, len(patterns))

    def test_exclude_output_ports(self, and_or_circuit):
        parallel = ParallelPatternSimulator(and_or_circuit,
                                            exclude_output_ports={"y", "z"})
        faults = generate_fault_list(and_or_circuit, include_ports=False).faults()
        patterns = list(all_input_patterns(["a", "b", "c"]))
        words = self._pack(patterns, ["a", "b", "c"])
        assert parallel.detected_faults(faults, words, len(patterns)) == set()

    def test_word_models_match_cell_semantics(self, library):
        """Every word-level model agrees with the 2-valued cell evaluation."""
        from repro.simulation.parallel import _WORD_OPS

        for cell_name, word_fn in _WORD_OPS.items():
            cell = library.get(cell_name)
            inputs = cell.inputs
            for values in itertools.product((0, 1), repeat=len(inputs)):
                scalar = cell.evaluate(dict(zip(inputs, values)))
                words = word_fn(1, *values)
                for pos, out_pin in enumerate(cell.outputs):
                    assert (words[pos] & 1) == scalar[out_pin], (
                        f"{cell_name} mismatch on {values} pin {out_pin}")
