"""Unit tests for scan insertion and scan-chain tracing."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import check_netlist
from repro.scan.chain_tracer import ScanChainTracer, trace_scan_chains
from repro.scan.insertion import insert_scan
from repro.simulation.sequential import SequentialSimulator


def build_plain_register_circuit(n_flops: int = 8):
    """A bank of plain DFFs capturing an input bus, driving an output bus."""
    b = NetlistBuilder("regs")
    clk = b.add_input("clk")
    d = b.add_input_bus("d", n_flops)
    q_ports = b.add_output_bus("q", n_flops)
    for i in range(n_flops):
        q = b.dff(d[i], clk, name=f"ff{i}")
        b.buf(q, output=q_ports[i])
    return b.build()


class TestScanInsertion:
    def test_flops_replaced_and_chain_built(self):
        netlist = build_plain_register_circuit(8)
        result = insert_scan(netlist, n_chains=2, buffer_every=2)
        assert result.total_cells == 8
        assert len(result.chains) == 2
        assert all(netlist.instance(c).cell.name == "SDFF"
                   for chain in result.chains for c in chain)
        assert result.scan_in_ports == ["scan_in0", "scan_in1"]
        assert result.scan_out_ports == ["scan_out0", "scan_out1"]
        assert "scan_enable" in netlist.ports
        assert check_netlist(netlist) == []

    def test_no_flops_is_a_noop(self):
        b = NetlistBuilder("comb")
        a = b.add_input("a")
        y = b.add_output("y")
        b.inv(a, output=y)
        netlist = b.build()
        result = insert_scan(netlist)
        assert result.total_cells == 0
        assert "scan_enable" not in netlist.ports

    def test_annotation_written(self):
        netlist = build_plain_register_circuit(4)
        insert_scan(netlist, n_chains=1)
        info = netlist.annotations["scan_insertion"]
        assert info["scan_enable_port"] == "scan_enable"
        assert len(info["chains"][0]) == 4

    def test_buffers_inserted_on_path(self):
        netlist = build_plain_register_circuit(8)
        result = insert_scan(netlist, n_chains=1, buffer_every=2)
        # 8 cells with a buffer every 2 (except after the last) plus the
        # scan-out tail buffer.
        assert len(result.path_buffers) == 4
        assert all(netlist.instance(n).cell.name == "BUF"
                   for n in result.path_buffers)

    def test_mission_behaviour_preserved(self):
        """With scan_enable held at 0 the scanned design behaves identically."""
        reference = build_plain_register_circuit(4)
        scanned = build_plain_register_circuit(4)
        insert_scan(scanned, n_chains=1)

        ref_sim = SequentialSimulator(reference)
        scan_sim = SequentialSimulator(scanned)
        stimulus = [{f"d[{i}]": (cycle >> i) & 1 for i in range(4)}
                    for cycle in range(8)]
        for vector in stimulus:
            ref_out = ref_sim.sim.output_values(ref_sim.step(vector),
                                                observable_only=False)
            scanned_vector = dict(vector)
            scanned_vector.update({"scan_enable": 0, "scan_in0": 0})
            scan_out = scan_sim.sim.output_values(scan_sim.step(scanned_vector),
                                                  observable_only=False)
            for port, value in ref_out.items():
                assert scan_out[port] == value

    def test_scan_shift_operation(self):
        """With scan_enable=1 the chain shifts the serial input through."""
        netlist = build_plain_register_circuit(4)
        insert_scan(netlist, n_chains=1, buffer_every=0)
        sim = SequentialSimulator(netlist)
        # Shift in 1,0,1,1 then check the scan-out port follows 4 cycles later.
        stream = [1, 0, 1, 1, 0, 0, 0, 0]
        observed = []
        for bit in stream:
            values = sim.step({"scan_enable": 1, "scan_in0": bit,
                               **{f"d[{i}]": 0 for i in range(4)}})
            observed.append(values["scan_out0"])
        assert observed[4:8] == [1, 0, 1, 1]


class TestScanChainTracer:
    def _scanned(self, n_flops=8, n_chains=2, buffer_every=2):
        netlist = build_plain_register_circuit(n_flops)
        insert_scan(netlist, n_chains=n_chains, buffer_every=buffer_every)
        return netlist

    def test_discovers_scan_in_ports(self):
        netlist = self._scanned()
        tracer = ScanChainTracer(netlist)
        assert set(tracer.discover_scan_in_ports()) == {"scan_in0", "scan_in1"}

    def test_discovers_scan_enable_nets(self):
        netlist = self._scanned()
        tracer = ScanChainTracer(netlist)
        assert tracer.discover_scan_enable_nets() == {"scan_enable"}

    def test_traced_chains_match_insertion(self):
        netlist = self._scanned(n_flops=9, n_chains=3, buffer_every=2)
        inserted = netlist.annotations["scan_insertion"]["chains"]
        chains = trace_scan_chains(netlist)
        assert len(chains) == 3
        traced = {chain.scan_in_port: chain.cells for chain in chains}
        for index, members in enumerate(inserted):
            assert traced[f"scan_in{index}"] == members

    def test_path_instances_and_scan_out_found(self):
        netlist = self._scanned(n_flops=8, n_chains=1, buffer_every=2)
        chain = trace_scan_chains(netlist)[0]
        assert chain.scan_out_port == "scan_out0"
        assert chain.length == 8
        # 3 intermediate buffers + 1 tail buffer.
        assert len(chain.path_instances) == 4
        assert chain.scan_enable_nets == {"scan_enable"}

    def test_tracing_without_buffers(self):
        netlist = self._scanned(n_flops=4, n_chains=1, buffer_every=0)
        chain = trace_scan_chains(netlist)[0]
        assert chain.length == 4
        assert len(chain.path_instances) == 1  # only the scan-out tail buffer

    def test_trace_on_generated_core(self, tiny_soc):
        chains = trace_scan_chains(tiny_soc.cpu)
        assert len(chains) == len(tiny_soc.scan.chains)
        traced_cells = sum(chain.length for chain in chains)
        assert traced_cells == tiny_soc.scan.total_cells
