"""Tests for the SBST substrate: assembler, ISA model, program generation,
toggle monitoring and fault grading."""

import pytest

from repro.isa.opcodes import Opcode, decode_fields
from repro.sbst.assembler import AssemblerError, assemble, disassemble
from repro.sbst.cpu_model import CpuModel
from repro.sbst.grading import FaultGrader
from repro.sbst.monitor import ToggleMonitor
from repro.sbst.program_gen import generate_sbst_suite
from repro.soc.config import CpuConfig


class TestAssembler:
    def test_basic_program(self):
        words = assemble("""
            movi r1, 5       ; load
            add  r2, r1, r1  # double
            halt
        """)
        assert len(words) == 3
        fields = decode_fields(words[0])
        assert fields["opcode"] == int(Opcode.MOVI)
        assert fields["rd"] == 1 and fields["imm"] == 5

    def test_labels_and_branches(self):
        words = assemble("""
        start: addi r1, r1, 1
               bne r1, r2, start
               jump start
               halt
        """)
        # bne at address 1 targets address 0: offset = 0 - 1 - 1 = -2.
        fields = decode_fields(words[1])
        imm_width = 32 - 5 - 15
        assert fields["imm"] == (-2) & ((1 << imm_width) - 1)
        jump_fields = decode_fields(words[2])
        assert jump_fields["imm"] == (-3) & ((1 << imm_width) - 1)

    def test_hex_immediates(self):
        words = assemble("movi r1, 0x1F")
        assert decode_fields(words[0])["imm"] == 0x1F

    def test_errors(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2, r3")
        with pytest.raises(AssemblerError):
            assemble("add r1, r2")          # missing operand
        with pytest.raises(AssemblerError):
            assemble("movi x1, 3")          # bad register
        with pytest.raises(AssemblerError):
            assemble("beq r1, r2, nowhere") # unknown label
        with pytest.raises(AssemblerError):
            assemble("dup: nop\ndup: nop")  # duplicate label
        with pytest.raises(AssemblerError):
            assemble("halt r1")             # unexpected operand

    def test_disassemble_roundtrip(self):
        source = "movi r1, 3\nadd r2, r1, r1\nstore r0, r2, 4\nbeq r2, r1, 1\nhalt"
        words = assemble(source)
        listing = disassemble(words)
        rebuilt = assemble("\n".join(listing))
        assert rebuilt == words

    def test_narrow_instruction_width(self):
        words = assemble("movi r1, 3\nhalt", instr_width=16, register_select_bits=2)
        assert all(w < (1 << 16) for w in words)


class TestCpuModel:
    def test_arithmetic_and_memory(self):
        model = CpuModel(data_width=16, n_registers=8, instr_width=24,
                         register_select_bits=3)
        program = assemble("""
            movi r1, 6
            movi r2, 7
            mul  r3, r1, r2
            store r0, r3, 2
            load r4, r0, 2
            sub  r5, r4, r1
            halt
        """, instr_width=24, register_select_bits=3)
        trace = model.run(program)
        assert model.registers[3] == 42
        assert model.memory[2] == 42
        assert model.registers[5] == 36
        assert model.halted
        assert trace.cycles == len(program)

    def test_branching_loop(self):
        model = CpuModel()
        program = assemble("""
            movi r1, 0
            movi r2, 5
            movi r3, 1
        loop: add r1, r1, r3
            bne r1, r2, loop
            halt
        """)
        model.run(program)
        assert model.registers[1] == 5

    def test_shift_and_logic(self):
        model = CpuModel()
        program = assemble("""
            movi r1, 3
            movi r2, 2
            shl r3, r1, r2
            xor r4, r3, r1
            and r5, r4, r3
            or  r6, r5, r2
            halt
        """)
        model.run(program)
        assert model.registers[3] == 12
        assert model.registers[4] == 15
        assert model.registers[5] == 12
        assert model.registers[6] == 14

    def test_wraparound_masking_and_signed_immediates(self):
        model = CpuModel(data_width=8, n_registers=4, instr_width=16,
                         register_select_bits=2)
        program = assemble("""
            movi r1, 31
            movi r2, 31
            mul r3, r1, r2
            halt
        """, instr_width=16, register_select_bits=2)
        model.run(program)
        # The 5-bit immediate 31 sign-extends to 0xFF on an 8-bit datapath,
        # and the product wraps to the data width.
        assert model.registers[1] == 0xFF
        assert model.registers[3] == (0xFF * 0xFF) & 0xFF

    def test_max_cycles_limit(self):
        model = CpuModel()
        program = assemble("loop: jump loop")
        trace = model.run(program, max_cycles=25)
        assert trace.cycles == 25
        assert not model.halted

    def test_reset(self):
        model = CpuModel()
        model.run(assemble("movi r1, 9\nhalt"))
        model.reset()
        assert model.registers[1] == 0 and model.pc == 0 and not model.halted


class TestProgramGeneration:
    def test_suite_for_each_config(self):
        for config in (CpuConfig.tiny(), CpuConfig.small(), CpuConfig.date13()):
            programs = generate_sbst_suite(config)
            names = {p.name for p in programs}
            assert names == {"register_march", "alu_sweep", "branch_kernel",
                             "memory_walk"}
            assert all(p.length > 0 for p in programs)
            assert all(max(p.words) < (1 << config.instr_width) for p in programs)

    def test_programs_run_on_isa_model(self):
        config = CpuConfig.small()
        for program in generate_sbst_suite(config):
            model = CpuModel(data_width=config.data_width,
                             n_registers=config.n_registers,
                             instr_width=config.instr_width,
                             register_select_bits=config.register_select_bits)
            trace = model.run(program.words, max_cycles=2000)
            assert trace.cycles > 0
            # Every program terminates via HALT within the cycle budget.
            assert model.halted

    def test_generation_is_deterministic(self):
        a = generate_sbst_suite(CpuConfig.tiny(), seed=11)
        b = generate_sbst_suite(CpuConfig.tiny(), seed=11)
        assert [p.words for p in a] == [p.words for p in b]


class TestToggleMonitorAndGrading:
    @pytest.fixture(scope="class")
    def monitored(self, tiny_soc):
        programs = generate_sbst_suite(tiny_soc.config.cpu)
        monitor = ToggleMonitor(tiny_soc.cpu)
        patterns = monitor.run_suite(programs)
        return monitor, patterns

    def test_patterns_captured(self, monitored, tiny_soc):
        monitor, patterns = monitored
        assert len(patterns) > 50
        controllable = set(patterns.controllable_nets)
        assert set(tiny_soc.cpu.input_ports()) <= controllable
        words = patterns.as_parallel_words()
        assert set(words) == controllable

    def test_debug_inputs_are_quiescent(self, monitored):
        monitor, _ = monitored
        quiescent = set(monitor.quiescent_nets())
        assert "jtag_tck" in quiescent
        assert "dbg_enable" in quiescent
        assert "clk" in quiescent  # constant input port in this abstraction
        # Functional activity exists somewhere.
        assert any(count > 0 for count in monitor.toggle_counts.values())

    def test_activity_report(self, monitored):
        monitor, _ = monitored
        report = monitor.activity_report(top=5)
        assert len(report) == 5
        assert all(":" in line for line in report)

    def test_grading_and_coverage_gain(self, monitored, tiny_soc, tiny_flow_report):
        _, patterns = monitored
        grader = FaultGrader(tiny_soc.cpu)
        comparison = grader.compare_with_pruning(
            patterns, tiny_flow_report.online_untestable)
        assert 0.0 < comparison.coverage_before < 1.0
        # Pruning the on-line untestable faults must not lower the coverage,
        # and should raise it noticeably (the paper's headline effect).
        assert comparison.coverage_after >= comparison.coverage_before
        assert comparison.coverage_gain > 0.01
        assert "coverage" in comparison.summary()

    def test_detected_faults_are_not_online_untestable(self, monitored, tiny_soc,
                                                       tiny_flow_report):
        """Soundness: no fault identified as on-line untestable may be detected
        by mission-mode functional patterns under mission observability."""
        _, patterns = monitored
        grader = FaultGrader(tiny_soc.cpu, observe_state_inputs=False)
        scan_faults = tiny_flow_report.scan_result.serial_input_faults
        sample = sorted(scan_faults)[:50]
        detected = grader.grade(patterns, sample)
        assert detected == set()
