"""The pluggable fault-model core: models, collapse, kernels, PODEM, API.

Covers the FaultModel registry and serialization grammars (with round-trip
property coverage for every registered model), the model-specific collapse
rules and their determinism, launch-on-capture transition detection in the
serial/sharded/grading engines (byte-identity included), the two-time-frame
PODEM search, and the fault_model plumbing through tie analysis, scan
analysis, Session sweeps, report serialization and the CLI.
"""

from __future__ import annotations

import random
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.atpg.implication import ImplicationEngine
from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.tie_analysis import TieAnalysis
from repro.core.results import FlowConfig, OnlineUntestableReport
from repro.core.scan_analysis import identify_scan_untestable
from repro.faults.categories import FaultClass
from repro.faults.collapse import collapse_fault_list, equivalence_classes
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import FaultList, generate_fault_list
from repro.faults.models import (SLOW_TO_FALL, SLOW_TO_RISE, STUCK_AT,
                                 TRANSITION, InjectionSpec, TransitionFault,
                                 fault_model_names, get_fault_model, model_of,
                                 parse_fault, resolve_fault_model,
                                 resolve_injection)
from repro.manipulation.tie import tie_port
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.sharded import ShardedFaultSimulator

from tests.conftest import build_and_or_circuit

#: Site strings shaped like real pin/port sites (no spaces; pins carry a /).
_SITES = st.one_of(
    st.from_regex(r"[a-z][a-z0-9_.]{0,12}/[A-Z][A-Z0-9]{0,3}",
                  fullmatch=True),
    st.from_regex(r"[a-z][a-z0-9_.\[\]]{0,14}", fullmatch=True),
)


# --------------------------------------------------------------------- #
# models, registry, serialization
# --------------------------------------------------------------------- #
class TestModelRegistry:
    def test_registered_models(self):
        assert fault_model_names() == ("stuck_at", "transition")
        assert get_fault_model("stuck_at") is STUCK_AT
        assert get_fault_model("transition") is TRANSITION

    def test_resolve_spellings(self):
        assert resolve_fault_model(None) is STUCK_AT
        assert resolve_fault_model("Transition ") is TRANSITION
        assert resolve_fault_model(TRANSITION) is TRANSITION

    def test_unknown_model_is_actionable(self):
        with pytest.raises(ValueError, match="stuck_at.*transition"):
            resolve_fault_model("sdf")

    def test_model_of_dispatches_on_type(self):
        assert model_of(StuckAtFault("u1/A", SA0)) is STUCK_AT
        assert model_of(TransitionFault("u1/A", SLOW_TO_RISE)) is TRANSITION
        with pytest.raises(TypeError):
            model_of("u1/A s-a-0")

    def test_injection_specs(self):
        assert resolve_injection(StuckAtFault("p", SA1)) == InjectionSpec(
            stuck_value=1, frames=1, init_value=None)
        assert resolve_injection(
            TransitionFault("p", SLOW_TO_RISE)) == InjectionSpec(
            stuck_value=0, frames=2, init_value=0)
        assert resolve_injection(
            TransitionFault("p", SLOW_TO_FALL)) == InjectionSpec(
            stuck_value=1, frames=2, init_value=1)


class TestTransitionFault:
    def test_str_and_site_helpers(self):
        fault = TransitionFault("core.u1/A", SLOW_TO_FALL)
        assert str(fault) == "core.u1/A stf"
        assert fault.instance_name == "core.u1"
        assert fault.pin_name == "A"
        assert fault.value == 1  # the late value
        port = TransitionFault("dbg_tck", SLOW_TO_RISE)
        assert port.is_port_fault and port.value == 0

    def test_invalid_polarity_rejected(self):
        with pytest.raises(ValueError, match="slow-to-rise"):
            TransitionFault("u1/A", "slow")


class TestParsing:
    def test_stuck_at_error_includes_grammar(self):
        with pytest.raises(ValueError) as err:
            StuckAtFault.parse("u1/A sa0")
        message = str(err.value)
        assert "'<site> s-a-0'" in message
        assert "<instance>/<PIN>" in message

    def test_transition_error_includes_grammar(self):
        with pytest.raises(ValueError) as err:
            TransitionFault.parse("u1/A slow-rise")
        message = str(err.value)
        assert "'<site> str'" in message and "slow-to-fall" in message

    def test_parse_fault_dispatches_by_grammar(self):
        assert parse_fault("u1/A s-a-0") == StuckAtFault("u1/A", SA0)
        assert parse_fault("u1/A stf") == TransitionFault("u1/A",
                                                          SLOW_TO_FALL)

    def test_parse_fault_error_lists_every_grammar(self):
        with pytest.raises(ValueError) as err:
            parse_fault("garbage")
        message = str(err.value)
        assert "stuck_at" in message and "transition" in message
        assert "s-a-0" in message and "str" in message

    @settings(max_examples=60, deadline=None)
    @given(site=_SITES, value=st.integers(min_value=0, max_value=1))
    def test_stuck_at_round_trip(self, site, value):
        fault = StuckAtFault(site, value)
        assert STUCK_AT.parse(STUCK_AT.format(fault)) == fault

    @settings(max_examples=60, deadline=None)
    @given(site=_SITES,
           polarity=st.sampled_from([SLOW_TO_RISE, SLOW_TO_FALL]))
    def test_transition_round_trip(self, site, polarity):
        fault = TransitionFault(site, polarity)
        assert TRANSITION.parse(TRANSITION.format(fault)) == fault

    @settings(max_examples=60, deadline=None)
    @given(site=_SITES, choice=st.integers(min_value=0, max_value=3))
    def test_parse_fault_round_trips_every_model(self, site, choice):
        fault = (StuckAtFault(site, choice % 2) if choice < 2 else
                 TransitionFault(site, (SLOW_TO_RISE, SLOW_TO_FALL)[choice % 2]))
        assert parse_fault(model_of(fault).format(fault)) == fault


# --------------------------------------------------------------------- #
# enumeration & collapse
# --------------------------------------------------------------------- #
class TestEnumeration:
    def test_transition_universe_matches_stuck_at_shape(self):
        netlist = build_and_or_circuit()
        stuck = generate_fault_list(netlist).faults()
        transition = generate_fault_list(netlist, model="transition").faults()
        assert len(transition) == len(stuck) == 26
        assert all(isinstance(f, TransitionFault) for f in transition)
        assert ({f.site for f in transition} == {f.site for f in stuck})

    def test_fault_list_round_trips_transition_classifications(self):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist, model=TRANSITION)
        target = faults.faults()[0]
        faults.classify(target, FaultClass.UT)
        restored = FaultList.from_lines(faults.to_lines())
        assert restored.get_class(target) is FaultClass.UT
        assert isinstance(restored.faults()[0], TransitionFault)


class TestModelCollapse:
    def test_equivalence_classes_differ_between_models(self):
        """The AND-gate controlling-value rule holds for stuck-at only."""
        netlist = build_and_or_circuit()
        stuck = equivalence_classes(
            netlist, generate_fault_list(netlist,
                                         include_ports=False).faults())
        transition = equivalence_classes(
            netlist, generate_fault_list(netlist, include_ports=False,
                                         model="transition").faults())

        def rep_of(classes):
            return {member: rep for rep, members in classes.items()
                    for member in members}

        stuck_rep = rep_of(stuck)
        assert (stuck_rep[StuckAtFault("and2_0/A", SA0)]
                == stuck_rep[StuckAtFault("and2_0/Y", SA0)])
        tr_rep = rep_of(transition)
        assert (tr_rep[TransitionFault("and2_0/A", SLOW_TO_RISE)]
                != tr_rep[TransitionFault("and2_0/Y", SLOW_TO_RISE)])
        # Different rules ⇒ different class counts on the same netlist.
        assert len(stuck) != len(transition)

    def test_inverter_swaps_transition_polarity(self):
        b = NetlistBuilder("m")
        a = b.add_input("a")
        y = b.add_output("y")
        b.inv(a, output=y)
        netlist = b.build()
        faults = generate_fault_list(netlist, include_ports=False,
                                     model="transition").faults()
        classes = equivalence_classes(netlist, faults)
        rep = {member: r for r, members in classes.items()
               for member in members}
        assert (rep[TransitionFault("inv_0/A", SLOW_TO_RISE)]
                == rep[TransitionFault("inv_0/Y", SLOW_TO_FALL)])
        assert (rep[TransitionFault("inv_0/A", SLOW_TO_RISE)]
                != rep[TransitionFault("inv_0/Y", SLOW_TO_RISE)])

    @pytest.mark.parametrize("model", ["stuck_at", "transition"])
    def test_collapsed_counts_deterministic_across_processes(self, model):
        """Same classes, representatives and order under different hash
        seeds (fresh interpreters)."""
        script = (
            "from tests.conftest import build_and_or_circuit\n"
            "from repro.faults.faultlist import generate_fault_list\n"
            "from repro.faults.collapse import collapse_fault_list\n"
            "netlist = build_and_or_circuit()\n"
            f"faults = generate_fault_list(netlist, model={model!r})\n"
            "collapsed = collapse_fault_list(netlist, faults)\n"
            "print('\\n'.join(collapsed.to_lines()))\n"
        )
        outputs = []
        for seed in ("0", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed})
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()

    def test_collapse_reduces_transition_universe(self, tiny_soc):
        faults = generate_fault_list(tiny_soc.cpu, model="transition")
        collapsed = collapse_fault_list(tiny_soc.cpu, faults)
        assert 0 < len(collapsed) < len(faults)


# --------------------------------------------------------------------- #
# two-pattern detection kernels
# --------------------------------------------------------------------- #
def _random_patterns(netlist, n, seed=11):
    rng = random.Random(seed)
    ports = netlist.input_ports()
    return [{p: rng.choice((LOGIC_0, LOGIC_1)) for p in ports}
            for _ in range(n)]


class TestTwoPatternDetection:
    def _buffer_chain(self):
        b = NetlistBuilder("chain")
        a = b.add_input("a")
        y = b.add_output("y")
        b.buf(a, output=y)
        return b.build()

    def test_launch_on_capture_requires_initialization(self):
        netlist = self._buffer_chain()
        str_fault = TransitionFault("a", SLOW_TO_RISE)
        sim = FaultSimulator(netlist)
        rise = [{"a": 0}, {"a": 1}]       # 0 -> 1 launch pair
        result = sim.run([str_fault], rise)
        assert result.detected == {str_fault}
        assert result.detecting_pattern[str_fault] == 1
        # Without the initialization pattern the same capture value fails.
        assert not sim.run([str_fault], [{"a": 1}, {"a": 1}]).detected
        # The opposite polarity needs the opposite pair.
        stf_fault = TransitionFault("a", SLOW_TO_FALL)
        assert not sim.run([stf_fault], rise).detected
        assert sim.run([stf_fault], [{"a": 1}, {"a": 0}]).detected

    def test_first_pattern_never_captures(self):
        netlist = self._buffer_chain()
        fault = TransitionFault("a", SLOW_TO_RISE)
        result = FaultSimulator(netlist).run([fault], [{"a": 1}, {"a": 0},
                                                       {"a": 1}])
        assert result.detecting_pattern[fault] == 2

    def test_verdicts_independent_of_window_size(self):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist, model="transition").faults()
        patterns = _random_patterns(netlist, 30)
        wide = FaultSimulator(netlist, word_size=64).run(faults, patterns)
        narrow = FaultSimulator(netlist, word_size=1).run(faults, patterns)
        assert wide.detected == narrow.detected
        assert wide.detecting_pattern == narrow.detecting_pattern

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("drop", [True, False])
    def test_sharded_transition_byte_identical(self, backend, drop):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist, model="transition").faults()
        patterns = _random_patterns(netlist, 40, seed=5)
        serial = FaultSimulator(netlist, word_size=8,
                                drop_detected=drop).run(faults, patterns)
        sharded = ShardedFaultSimulator(
            netlist, word_size=8, drop_detected=drop, jobs=2,
            backend=backend).run(faults, patterns)
        assert sharded.detected == serial.detected
        assert sharded.undetected == serial.undetected
        assert sharded.detecting_pattern == serial.detecting_pattern

    def test_sharded_transition_identity_on_tiny_cpu(self, tiny_soc):
        faults = generate_fault_list(tiny_soc.cpu, model="transition").faults()
        sample = faults[:: max(1, len(faults) // 120)][:120]
        patterns = _random_patterns(tiny_soc.cpu, 12, seed=2013)
        serial = FaultSimulator(tiny_soc.cpu).run(sample, patterns)
        sharded = ShardedFaultSimulator(tiny_soc.cpu, jobs=3,
                                        backend="process").run(sample,
                                                               patterns)
        assert sharded.detected == serial.detected
        assert sharded.detecting_pattern == serial.detecting_pattern


class TestTransitionGrading:
    @pytest.fixture(scope="class")
    def tiny_captured(self, tiny_soc):
        from repro.sbst.monitor import ToggleMonitor
        from repro.sbst.program_gen import generate_sbst_suite

        programs = generate_sbst_suite(tiny_soc.config.cpu)
        return ToggleMonitor(tiny_soc.cpu).run_suite(programs)

    def test_grade_serial_vs_sharded_identical(self, tiny_soc, tiny_captured):
        from repro.sbst.grading import FaultGrader

        faults = generate_fault_list(tiny_soc.cpu, model="transition").faults()
        sample = faults[:: max(1, len(faults) // 150)][:150]
        serial = FaultGrader(tiny_soc.cpu).grade(tiny_captured, sample)
        sharded = FaultGrader(tiny_soc.cpu, jobs=2, backend="process").grade(
            tiny_captured, sample)
        assert sharded == serial

    def test_grade_word_size_invariant(self, tiny_soc, tiny_captured):
        from repro.sbst.grading import FaultGrader

        faults = generate_fault_list(tiny_soc.cpu, model="transition").faults()
        sample = faults[:: max(1, len(faults) // 60)][:60]
        wide = FaultGrader(tiny_soc.cpu, word_size=64).grade(tiny_captured,
                                                             sample)
        narrow = FaultGrader(tiny_soc.cpu, word_size=7).grade(tiny_captured,
                                                              sample)
        assert wide == narrow


# --------------------------------------------------------------------- #
# two-time-frame PODEM & classification
# --------------------------------------------------------------------- #
class TestTwoFramePodem:
    def test_detected_tests_are_consistent_pairs(self):
        netlist = build_and_or_circuit()
        podem = Podem(netlist)
        sim = FaultSimulator(netlist)
        faults = generate_fault_list(netlist, model="transition").faults()
        detected = 0
        for fault in faults:
            result = podem.generate(fault)
            if result.status is not PodemStatus.DETECTED:
                continue
            detected += 1
            # The (launch, capture) pair the search returns must detect the
            # fault in the fault simulator (X-padded patterns included).
            assert sim.detects(fault, result.pattern,
                               prev_pattern=result.init_pattern)
        assert detected > 0

    def test_tied_site_is_untestable_for_both_polarities(self):
        netlist = build_and_or_circuit()
        tie_port(netlist, "a", 1)
        podem = Podem(netlist)
        for polarity in (SLOW_TO_RISE, SLOW_TO_FALL):
            result = podem.generate(TransitionFault("a", polarity))
            assert result.status is PodemStatus.UNTESTABLE

    def test_launch_on_capture_state_consistency(self):
        """Capture-frame state assignments must equal the launch frame's
        next state."""
        b = NetlistBuilder("seq")
        clk = b.add_input("clk")
        d = b.add_input("d")
        q = b.dff(d, clk, name="ff0")
        y = b.add_output("y")
        b.buf(q, output=y)
        netlist = b.build()

        podem = Podem(netlist)
        fault = TransitionFault(f"{netlist.instance('ff0').pin('Q').name}",
                                SLOW_TO_RISE)
        result = podem.generate(fault)
        assert result.status is PodemStatus.DETECTED
        # Capture frame excites the site at 1, so the launch frame must
        # produce next-state 1 through D while holding Q at 0.
        assert result.pattern.get(q) == 1
        assert result.init_pattern.get("d") == 1

    def test_engine_full_effort_classifies_transition_universe(self):
        netlist = build_and_or_circuit()
        faults = generate_fault_list(netlist, model="transition").faults()
        report = StructuralUntestabilityEngine(
            netlist, effort=AtpgEffort.FULL).classify(faults)
        assert set(report.classifications) == set(faults)
        assert all(c in (FaultClass.DT, FaultClass.UU, FaultClass.AU)
                   for c in report.classifications.values())

    @pytest.mark.parametrize("effort", [AtpgEffort.TIE, AtpgEffort.RANDOM])
    def test_sharded_classification_identical(self, tiny_soc, effort):
        faults = generate_fault_list(tiny_soc.cpu, model="transition").faults()
        sample = faults[:: max(1, len(faults) // 80)][:80]
        serial = StructuralUntestabilityEngine(
            tiny_soc.cpu, effort=effort).classify(sample)
        sharded = StructuralUntestabilityEngine(
            tiny_soc.cpu, effort=effort, jobs=2,
            backend="process").classify(sample)
        assert sharded.classifications == serial.classifications


class TestModelAwareTieAnalysis:
    def test_any_constant_blocks_both_transitions(self):
        netlist = build_and_or_circuit()
        tie_port(netlist, "c", 0)
        tie = TieAnalysis(netlist, ImplicationEngine(netlist))
        for polarity in (SLOW_TO_RISE, SLOW_TO_FALL):
            assert tie.classify_fault(
                TransitionFault("c", polarity)) is FaultClass.UT
        # Stuck-at keeps its asymmetric rule on the same netlist.
        assert tie.classify_fault(StuckAtFault("c", SA0)) is FaultClass.UT
        assert tie.classify_fault(StuckAtFault("c", SA1)) is not FaultClass.UT


class TestModelAwareScanAnalysis:
    def test_scan_enable_contributes_both_polarities(self, tiny_soc):
        stuck = identify_scan_untestable(tiny_soc.cpu)
        transition = identify_scan_untestable(tiny_soc.cpu,
                                              model="transition")
        assert all(isinstance(f, TransitionFault)
                   for f in transition.untestable)
        # Same sites on the serial path; the held scan enable doubles.
        assert ({f.site for f in transition.serial_input_faults}
                == {f.site for f in stuck.serial_input_faults})
        assert (len(transition.scan_enable_faults)
                == 2 * len(stuck.scan_enable_faults))


# --------------------------------------------------------------------- #
# end-to-end plumbing
# --------------------------------------------------------------------- #
class TestFaultModelPlumbing:
    def test_flow_config_carries_model(self):
        assert FlowConfig().fault_model == "stuck_at"
        assert FlowConfig(fault_model="transition").fault_model == "transition"

    def test_session_sweep_over_model_axis(self):
        from repro.api import ScenarioGrid, Session

        grid = ScenarioGrid("tiny").axis("fault_model",
                                         ["stuck_at", "transition"])
        report = Session().sweep(grid)
        assert [r.label for r in report] == [
            "tiny[fault_model=stuck_at]", "tiny[fault_model=transition]"]
        models = [r.report.fault_model for r in report]
        assert models == ["stuck_at", "transition"]
        totals = [r.report.total_online_untestable for r in report]
        assert all(t > 0 for t in totals)
        tables = [r.report.to_table() for r in report]
        assert "stuck-at faults" in tables[0]
        assert "transition-delay faults" in tables[1]

    def test_grid_rejects_unknown_model(self):
        from repro.api import ScenarioGrid

        with pytest.raises(ValueError, match="unknown fault model"):
            ScenarioGrid("tiny").axis("fault_model", ["bogus"])

    def test_report_serialization_round_trips_transition(self):
        report = OnlineUntestableReport(
            netlist_name="n", total_faults=4, fault_model="transition")
        report.baseline_untestable = {TransitionFault("u1/A", SLOW_TO_RISE)}
        restored = OnlineUntestableReport.from_json(report.to_json())
        assert restored.fault_model == "transition"
        assert restored.baseline_untestable == report.baseline_untestable

    def test_legacy_reports_default_to_stuck_at(self):
        document = OnlineUntestableReport(
            netlist_name="n", total_faults=1).to_json_dict()
        document.pop("fault_model")
        restored = OnlineUntestableReport.from_json_dict(document)
        assert restored.fault_model == "stuck_at"

    def test_explicit_config_wins_over_session_default(self, tiny_soc):
        """FlowConfig(fault_model="stuck_at") passed explicitly must not be
        overridden by Session(fault_model="transition")."""
        from repro.api import Session

        session = Session(fault_model="transition")
        pinned = session.analyze(tiny_soc.cpu,
                                 config=FlowConfig(fault_model="stuck_at"))
        assert pinned.fault_model == "stuck_at"
        defaulted = session.analyze(tiny_soc.cpu)
        assert defaulted.fault_model == "transition"
        # And an explicit per-call model beats both.
        explicit = session.analyze(
            tiny_soc.cpu, config=FlowConfig(fault_model="stuck_at"),
            fault_model="transition")
        assert explicit.fault_model == "transition"

    def test_grader_fault_model_default_universe(self, tiny_soc):
        from repro.sbst.grading import FaultGrader

        grader = FaultGrader(tiny_soc.cpu, fault_model="transition")
        assert grader.fault_model is TRANSITION

    def test_corpus_model_filter_reports_pinned_entries(self, tmp_path):
        """--fault-model filtering an --only selection must explain the
        model pinning, not claim the entry is unknown."""
        from repro.api.corpus import CorpusError, run_corpus

        with pytest.raises(CorpusError, match="pinned under other models"):
            run_corpus("benchmarks/corpus", only=["tiny_full"],
                       fault_model="transition")
        with pytest.raises(CorpusError, match="unknown corpus entries"):
            run_corpus("benchmarks/corpus", only=["nope"],
                       fault_model="transition")

    def test_cache_keys_split_by_model(self, tiny_soc):
        from repro.api import Session

        session = Session()
        stuck = session.analyze(tiny_soc.cpu)
        transition = session.analyze(tiny_soc.cpu, fault_model="transition")
        assert stuck.total_faults == transition.total_faults
        assert (stuck.total_online_untestable
                != transition.total_online_untestable)
        # Re-analysis under either model replays from cache.
        before = session.cache_stats["misses"]
        session.analyze(tiny_soc.cpu, fault_model="transition")
        assert session.cache_stats["misses"] == before


class TestCli:
    def test_analyze_fault_model_flag(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "tiny",
             "--fault-model", "transition", "--json"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        import json

        document = json.loads(proc.stdout)
        assert document["fault_model"] == "transition"
        assert document["total_online_untestable"] > 0

    def test_sweep_fault_model_axis(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--base", "tiny",
             "--axis", "fault_model=stuck_at,transition", "--quiet",
             "--csv"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert "fault_model=stuck_at" in proc.stdout
        assert "fault_model=transition" in proc.stdout
