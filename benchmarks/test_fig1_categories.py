"""Experiment ``fig1`` — the fault-category containment of Fig. 1.

Fig. 1 of the paper draws the on-line fault universe as nested sets:
structurally untestable ⊆ functionally untestable ⊆ on-line functionally
untestable ⊆ the whole fault universe, with the on-line detectable faults as
the complement.  This benchmark computes concrete instances of those sets for
the small core and checks the containment chain plus the strictness of each
inclusion (every category adds faults).
"""

from repro.core.classification import build_fault_universe


def test_fig1_category_containment(small_soc, small_report, benchmark):
    universe = benchmark.pedantic(
        lambda: build_fault_universe(
            small_soc.cpu,
            functional_constraints={"scan_enable": 0, "irq": 0},
            online_untestable=small_report.online_untestable),
        rounds=3, iterations=1, warmup_rounds=0)

    counts = universe.counts()
    print()
    print("Fig. 1 fault categories (small core):")
    for name, value in counts.items():
        print(f"  {name:34s} {value:8,}")

    assert universe.containment_holds()
    # The inclusions are strict on this design: each category adds faults.
    assert counts["structurally_untestable"] < counts["functionally_untestable"]
    assert counts["functionally_untestable"] < counts["online_functionally_untestable"]
    assert counts["online_functionally_untestable"] < counts["all"]
    # The complement partitions the universe.
    assert (counts["online_functionally_untestable"] + counts["online_detectable"]
            == counts["all"])
