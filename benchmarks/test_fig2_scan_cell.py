"""Experiment ``fig2`` — the mux-scan flip-flop analysis of Fig. 2.

Fig. 2 annotates a mux-scan cell with the stuck-at faults related to the scan
behaviour and argues that, with the scan enable held at its functional value
in the field:

* SI stuck-at-0 and stuck-at-1 are on-line functionally untestable,
* SE stuck-at-functional-value (stuck-at-0 for an active-high SE) is
  untestable,
* SE stuck-at-1 — the fault that would wrongly engage the scan path — must be
  kept in the fault list,
* the functional data path (FI/FO) keeps all its faults.

This benchmark regenerates exactly that classification from a single scan
cell, both by direct pruning (the scan analysis) and by the structural
engine on the SE-tied circuit.
"""

import pytest

from repro.atpg.engine import StructuralUntestabilityEngine
from repro.core.scan_analysis import identify_scan_untestable
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder


def build_fig2_cell():
    b = NetlistBuilder("fig2_scan_cell")
    b.add_input("fi")
    b.add_input("si")
    b.add_input("se")
    b.add_input("clk")
    fo = b.add_output("fo")
    b.cell("SDFF", {"D": "fi", "SI": "si", "SE": "se", "CK": "clk", "Q": fo},
           name="u_sdff")
    return b.build()


def test_fig2_scan_cell_faults(benchmark):
    netlist = build_fig2_cell()
    result = benchmark.pedantic(
        lambda: identify_scan_untestable(netlist, scan_in_ports=["si"]),
        rounds=5, iterations=1, warmup_rounds=0)

    pruned = result.untestable
    print()
    print("Fig. 2 — faults pruned on the mux-scan cell:")
    for fault in sorted(pruned):
        print(f"  {fault}")

    # The scan-behaviour faults of Fig. 2.
    assert StuckAtFault("u_sdff/SI", SA0) in pruned
    assert StuckAtFault("u_sdff/SI", SA1) in pruned
    assert StuckAtFault("u_sdff/SE", SA0) in pruned
    # The dangerous fault (SE stuck in scan mode) is kept.
    assert StuckAtFault("u_sdff/SE", SA1) not in pruned
    # The functional path keeps all of its faults.
    assert StuckAtFault("u_sdff/D", SA0) not in pruned
    assert StuckAtFault("u_sdff/D", SA1) not in pruned
    assert StuckAtFault("u_sdff/Q", SA0) not in pruned
    assert StuckAtFault("u_sdff/Q", SA1) not in pruned


def test_fig2_engine_agreement():
    """The paper's TetraMax experiment: tie SE to the functional value and the
    engine reports the same faults as untestable-due-to-tied-value."""
    netlist = build_fig2_cell()
    netlist.net("se").tied = 0
    engine = StructuralUntestabilityEngine(netlist)
    report = engine.classify(generate_fault_list(netlist).faults())
    untestable = set(report.untestable)

    assert StuckAtFault("u_sdff/SI", SA0) in untestable
    assert StuckAtFault("u_sdff/SI", SA1) in untestable
    assert StuckAtFault("u_sdff/SE", SA0) in untestable
    assert StuckAtFault("u_sdff/SE", SA1) not in untestable
    assert StuckAtFault("u_sdff/D", SA1) not in untestable
