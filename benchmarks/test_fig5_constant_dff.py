"""Experiment ``fig5`` — the constant-value DFF analysis of Fig. 5.

Fig. 5 shows a D flip-flop with an active-low reset whose value is constant
at '0' during the whole mission (an address register bit frozen by the memory
map).  The structural analysis of the tied flip-flop "returns only 2 testable
faults, stuck-at-1 on D and stuck-at-1 on Q" — every other stuck-at fault of
the cell is on-line functionally untestable.
"""

from repro.atpg.engine import StructuralUntestabilityEngine
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import generate_fault_list
from repro.netlist.builder import NetlistBuilder


def build_fig5_cell():
    b = NetlistBuilder("fig5_constant_dff")
    b.add_input("d")
    b.add_input("clk")
    b.add_input("rst_n")
    q = b.add_output("q")
    b.cell("DFFR", {"D": "d", "CK": "clk", "RN": "rst_n", "Q": q}, name="u_ff")
    return b.build()


def test_fig5_constant_dff(benchmark):
    netlist = build_fig5_cell()
    # The register holds a frozen address bit: tie its input and output to 0
    # (paper §3.3, step 4.a).
    netlist.net("d").tied = 0
    netlist.net("q").tied = 0

    def classify():
        engine = StructuralUntestabilityEngine(netlist)
        cell_faults = [f for f in generate_fault_list(netlist).faults()
                       if f.instance_name == "u_ff"]
        return cell_faults, engine.classify(cell_faults)

    cell_faults, report = benchmark.pedantic(classify, rounds=5, iterations=1,
                                             warmup_rounds=0)
    untestable = set(report.untestable)
    testable = [f for f in cell_faults if f not in untestable]

    print()
    print("Fig. 5 — faults of the frozen DFF:")
    for fault in sorted(cell_faults):
        status = "untestable" if fault in untestable else "TESTABLE"
        print(f"  {str(fault):24s} {status}")

    # Exactly the two stuck-at-1 faults on D and Q remain testable.
    assert set(testable) == {StuckAtFault("u_ff/D", SA1), StuckAtFault("u_ff/Q", SA1)}
    # Both stuck-at-0 faults and the clock/reset pin faults are untestable.
    assert StuckAtFault("u_ff/D", SA0) in untestable
    assert StuckAtFault("u_ff/Q", SA0) in untestable
    assert StuckAtFault("u_ff/RN", SA0) in untestable
    assert StuckAtFault("u_ff/RN", SA1) in untestable
