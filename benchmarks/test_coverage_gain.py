"""Experiment ``coverage_gain`` — the ~13% fault-coverage increase of §4.

The paper's practical motivation: once the on-line functionally untestable
faults are removed from the fault list, the stuck-at fault coverage of the
(already mature) SBST suite rises by roughly the pruned fraction — about 13 %
on the industrial SoC — which is what matters against the ISO 26262 targets.

This benchmark generates the SBST suite for the tiny core, runs it on the
gate-level netlist, grades the resulting functional patterns under mission
observability and compares the coverage computed on the full fault list with
the coverage on the pruned list.
"""

from repro.sbst.grading import FaultGrader
from repro.sbst.monitor import ToggleMonitor
from repro.sbst.program_gen import generate_sbst_suite


def test_coverage_gain_from_pruning(tiny_soc, tiny_report, benchmark):
    programs = generate_sbst_suite(tiny_soc.config.cpu)
    monitor = ToggleMonitor(tiny_soc.cpu)
    patterns = monitor.run_suite(programs)

    grader = FaultGrader(tiny_soc.cpu)
    comparison = benchmark.pedantic(
        lambda: grader.compare_with_pruning(patterns, tiny_report.online_untestable),
        rounds=3, iterations=1, warmup_rounds=0)

    pruned_fraction = comparison.pruned / comparison.total_faults
    print()
    print("Coverage gain from pruning on-line untestable faults (tiny core):")
    print(f"  SBST patterns graded      : {len(patterns)}")
    print(f"  coverage, full fault list : {comparison.coverage_before:.1%}")
    print(f"  pruned fraction           : {pruned_fraction:.1%}")
    print(f"  coverage, pruned list     : {comparison.coverage_after:.1%}")
    print(f"  coverage gain             : +{comparison.coverage_gain:.1%}")

    # The gain is positive and of the same order as the pruned fraction
    # (scaled by the achieved coverage), as in the paper.
    assert comparison.coverage_gain > 0.02
    assert comparison.coverage_after > comparison.coverage_before
    assert comparison.coverage_after <= 1.0
    expected_gain = comparison.coverage_before * pruned_fraction / (1 - pruned_fraction)
    assert abs(comparison.coverage_gain - expected_gain) < 0.10


def test_pruned_faults_mostly_undetected(tiny_soc, tiny_report):
    """Consistency: the coverage gain comes (almost entirely) from shrinking
    the denominator, not from removing detected faults.  The grading model is
    a single-time-frame approximation that observes flip-flop inputs, so a
    small leakage is tolerated (see DESIGN.md); the bulk of the pruned
    population must be undetected by the mission patterns."""
    programs = generate_sbst_suite(tiny_soc.config.cpu)
    patterns = ToggleMonitor(tiny_soc.cpu).run_suite(programs)
    grader = FaultGrader(tiny_soc.cpu)
    comparison = grader.compare_with_pruning(patterns, tiny_report.online_untestable)
    detected_and_pruned = comparison.detected - comparison.detected_after_pruning
    assert detected_and_pruned <= 0.10 * comparison.pruned
