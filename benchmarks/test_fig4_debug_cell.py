"""Experiment ``fig4`` — the debug flip-flop analysis of Fig. 4.

Fig. 4 shows a flip-flop whose value can be overridden by an external
debugger through a Debug Enable (DE) / Debug Input (DI) mux, and whose value
is exported on a Debug Output (DO).  In the field the debugger is gone:

* DE is held at 0, so DE stuck-at-0 and the DI stuck-at faults become on-line
  functionally untestable (unused control logic, §3.2.1);
* DO is left floating, so the faults of the logic that only feeds it become
  untestable by lack of observability (§3.2.2);
* DE stuck-at-1 — which would let the debug path corrupt the mission value —
  and the functional pins stay in the fault list.
"""

from repro.core.debug_control import identify_debug_control_untestable
from repro.core.debug_observe import identify_debug_observe_untestable
from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.netlist.builder import NetlistBuilder


def build_fig4_cell():
    b = NetlistBuilder("fig4_debug_cell")
    b.add_input("fi")
    b.add_input("di")
    b.add_input("de")
    b.add_input("clk")
    fo = b.add_output("fo")
    do = b.add_output("do")
    b.cell("DBGFF", {"D": "fi", "DI": "di", "DE": "de", "CK": "clk", "Q": fo},
           name="u_dbgff")
    b.buf(fo, output=do, name="u_do_buf")
    netlist = b.build()
    netlist.annotations["debug_interface"] = {
        "control_inputs": {"di": 0, "de": 0},
        "observation_outputs": ["do"],
    }
    return netlist


def test_fig4_unused_control_logic(benchmark):
    netlist = build_fig4_cell()
    result = benchmark.pedantic(
        lambda: identify_debug_control_untestable(netlist),
        rounds=5, iterations=1, warmup_rounds=0)
    new = result.newly_untestable

    print()
    print("Fig. 4 — §3.2.1 faults (unused debug control logic):")
    for fault in sorted(new):
        print(f"  {fault}")

    assert StuckAtFault("u_dbgff/DE", SA0) in new
    assert StuckAtFault("u_dbgff/DI", SA0) in new
    assert StuckAtFault("u_dbgff/DI", SA1) in new
    assert StuckAtFault("de", SA0) in new
    assert StuckAtFault("di", SA0) in new
    # The dangerous DE stuck-at-1 and the mission pins survive.
    assert StuckAtFault("u_dbgff/DE", SA1) not in new
    assert StuckAtFault("u_dbgff/D", SA0) not in new
    assert StuckAtFault("u_dbgff/D", SA1) not in new


def test_fig4_unused_observation_logic(benchmark):
    netlist = build_fig4_cell()
    result = benchmark.pedantic(
        lambda: identify_debug_observe_untestable(netlist),
        rounds=5, iterations=1, warmup_rounds=0)
    new = result.newly_untestable

    print()
    print("Fig. 4 — §3.2.2 faults (unused debug observation logic):")
    for fault in sorted(new):
        print(f"  {fault}")

    assert result.floated_ports == ["do"]
    # The DO buffer and port lose every fault.
    assert StuckAtFault("u_do_buf/A", SA0) in new
    assert StuckAtFault("u_do_buf/A", SA1) in new
    assert StuckAtFault("u_do_buf/Y", SA0) in new
    assert StuckAtFault("u_do_buf/Y", SA1) in new
    assert StuckAtFault("do", SA0) in new
    # The flip-flop itself stays observable through FO.
    assert StuckAtFault("u_dbgff/Q", SA0) not in new
    assert StuckAtFault("u_dbgff/Q", SA1) not in new
