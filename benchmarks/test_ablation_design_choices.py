"""Ablation ``design_choices`` — the knobs called out in DESIGN.md.

* fault collapsing on/off: the on-line untestable *fraction* is essentially
  unchanged whether it is counted on the collapsed or uncollapsed universe;
* scan-path buffer handling: excluding the dedicated serial-path buffers
  loses a measurable part of the scan population;
* Fig. 6 knob: stopping the memory-map ties at the flip-flop boundary finds
  fewer faults than also tieing the register outputs;
* ATPG effort: the cheap tied-value analysis already finds everything the
  per-source flow needs — raising the effort only reclassifies the remaining
  (testable) faults.
"""

from repro.atpg.engine import AtpgEffort, StructuralUntestabilityEngine
from repro.core.flow import FlowConfig, OnlineUntestableFlow
from repro.core.scan_analysis import identify_scan_untestable
from repro.faults.categories import OnlineUntestableSource
from repro.faults.collapse import collapse_fault_list
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.tie import tie_port


def test_collapsed_vs_uncollapsed_fraction(tiny_soc, tiny_report, benchmark):
    uncollapsed = generate_fault_list(tiny_soc.cpu)
    collapsed = benchmark(collapse_fault_list, tiny_soc.cpu, uncollapsed)

    online = tiny_report.online_untestable
    uncollapsed_fraction = len(online) / len(uncollapsed)
    collapsed_online = [f for f in collapsed.faults() if f in online]
    collapsed_fraction = len(collapsed_online) / len(collapsed)

    print()
    print(f"Uncollapsed: {len(online):,}/{len(uncollapsed):,} = {uncollapsed_fraction:.1%}")
    print(f"Collapsed  : {len(collapsed_online):,}/{len(collapsed):,} = {collapsed_fraction:.1%}")
    assert abs(collapsed_fraction - uncollapsed_fraction) < 0.10


def test_scan_path_buffer_contribution(small_soc, benchmark):
    result = benchmark(identify_scan_untestable, small_soc.cpu)
    counts = result.counts()
    print()
    print(f"Scan population split: SI={counts['serial_input']:,} "
          f"SE={counts['scan_enable']:,} path buffers={counts['path']:,} "
          f"ports={counts['ports']:,}")
    # The dedicated serial-path buffers are a visible slice of the scan
    # population (the paper explicitly reminds the reader to include them).
    assert counts["path"] > 0.02 * counts["total"]
    assert counts["serial_input"] == 2 * counts["cells"]


def test_fig6_knob_on_full_core(small_soc, benchmark):
    full = benchmark.pedantic(
        lambda: OnlineUntestableFlow(
            small_soc, FlowConfig(run_scan=False, run_debug_control=False,
                                  run_debug_observe=False)).run(),
        rounds=1, iterations=1, warmup_rounds=0)
    stop_at_ff = OnlineUntestableFlow(
        small_soc, FlowConfig(run_scan=False, run_debug_control=False,
                              run_debug_observe=False,
                              tie_flop_outputs=False)).run()
    full_count = full.source_count(OnlineUntestableSource.MEMORY_MAP)
    stop_count = stop_at_ff.source_count(OnlineUntestableSource.MEMORY_MAP)
    print()
    print(f"Memory-map faults: tie D+Q = {full_count:,}, tie D only = {stop_count:,}")
    assert stop_count <= full_count


def test_atpg_effort_consistency(tiny_soc, benchmark):
    """Raising the engine effort never removes faults from the untestable set
    found by the cheap tied-value phase (it only classifies more of the rest)."""
    manipulated = tiny_soc.cpu.clone("debug_tied")
    for port, value in tiny_soc.debug_interface.control_inputs.items():
        tie_port(manipulated, port, value)
    faults = generate_fault_list(manipulated).faults()[:4000]

    tie_report = benchmark.pedantic(
        lambda: StructuralUntestabilityEngine(
            manipulated, effort=AtpgEffort.TIE).classify(faults),
        rounds=1, iterations=1, warmup_rounds=0)
    random_report = StructuralUntestabilityEngine(
        manipulated, effort=AtpgEffort.RANDOM, random_patterns=64).classify(faults)

    tie_untestable = set(tie_report.untestable)
    random_untestable = set(random_report.untestable)
    print()
    print(f"TIE effort: {len(tie_untestable):,} untestable; "
          f"RANDOM effort: {len(random_untestable):,} untestable, "
          f"{len(random_report.detected):,} proven detectable")
    assert tie_untestable <= random_untestable
    assert not (set(random_report.detected) & random_untestable)
