"""Experiment ``runtime`` — analysis cost (§4) and the compiled-IR speedup.

The paper stresses that, once the circuit has been manipulated, the
structural analysis is essentially free: "the modified circuit is analyzed by
Tetramax in less than 1 second", while the engineering effort lives in the
identification of the untestability sources.  This benchmark measures the
same quantities for the pure-Python engine on the synthetic core:

* the tied-value classification of the manipulated (debug-tied) circuit,
* the complete four-source identification flow,
* the scan-chain tracing step alone,
* the compiled integer-ID fault simulator against the legacy object-graph
  reference, with verdict equality enforced,
* since PR 4 — the sharded full-fault-grading engine at ``jobs=4``
  against the serial grader, with detected-set equality enforced,
* and — since the kernel PR — the same full grading on the vectorized
  numpy kernel, serial and composed with ``--jobs 4``, with detected-set
  equality against the int kernel enforced
  (``full_fault_grading_numpy``; skipped when numpy is not installed),
* since the portfolio PR — serial reference PODEM against the
  ``podem-restart`` backend fanned over process shards at ``--jobs 4``
  on a cone-bounded fault sample (``atpg_portfolio``), with verdict
  agreement outside the abort boundary enforced,
* since the runtime PR — cold-spawn vs warm-pool round-trip latency of
  the persistent worker runtime (``pool_warm_grading``), with detected
  sets pinned identical and the warm setup path pinned >= 10x under the
  cold spin-up.

Parallel ``*_speedup`` summary fields are attributed with the machine's
``cpus`` and recorded only when ``os.cpu_count() >= jobs`` — a jobs=4
speedup measured on one core is noise, not a regression signal.

Every stage's wall clock is recorded into ``BENCH_latest.json`` (path
overridable via ``REPRO_BENCH_OUT``) — a PR-agnostic name so CI can diff
it against the committed baseline
(``benchmarks/BENCH_baseline_small.json``) with
``benchmarks/check_bench_regression.py`` and fail on a stage regression.

The Table I regression pin: on the date13 configuration the flow's rendered
summary table must be byte-identical to the golden capture taken from the
pre-compiled-IR implementation (``golden_table1_date13.txt``).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.atpg.engine import StructuralUntestabilityEngine
from repro.core.flow import OnlineUntestableFlow
from repro.core.scan_analysis import identify_scan_untestable
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.tie import tie_port
from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.sbst.grading import FaultGrader
from repro.sbst.monitor import ToggleMonitor
from repro.sbst.program_gen import generate_sbst_suite
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.kernels import kernel_info, numpy_available
from repro.simulation.legacy import LegacyFaultSimulator

_GOLDEN_TABLE1 = Path(__file__).with_name("golden_table1_date13.txt")

#: Config preset under test — must match the conftest fixture's selection.
RUNTIME_BENCH_CONFIG = os.environ.get("REPRO_BENCH_CONFIG", "date13")

#: Wall-clock per stage, flushed to BENCH_latest.json when the module finishes.
_BENCH: dict = {"config": RUNTIME_BENCH_CONFIG, "stages": {}}


def _record(stage: str, seconds: float, **extra) -> None:
    entry = {"seconds": round(seconds, 4)}
    entry.update(extra)
    _BENCH["stages"][stage] = entry


def _record_parallel_speedup(field: str, serial_seconds: float,
                             parallel_seconds: float, jobs: int) -> None:
    """Record a parallel-stage speedup, attributed to the machine it ran on.

    A ``jobs=N`` speedup measured on fewer than N cores is noise that reads
    like a regression (or a miracle) when captures from different machines
    are compared, so the ratio is recorded only when the cores exist — the
    attribution (``cpus``, ``jobs``) always is.
    """
    cpus = os.cpu_count() or 1
    entry: dict = {"cpus": cpus, "jobs": jobs}
    if cpus >= jobs:
        entry["speedup"] = (round(serial_seconds / parallel_seconds, 2)
                            if parallel_seconds else float("inf"))
    else:
        entry["skipped"] = (f"os.cpu_count()={cpus} < jobs={jobs}; "
                            "an oversubscribed speedup is not comparable")
    _BENCH[field] = entry


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    yield
    # Attribute the capture: which kernel "auto" resolved to on this
    # machine (and the numpy version when the vectorized one is active).
    _BENCH.update(kernel_info())
    out = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_latest.json"))
    out.write_text(json.dumps(_BENCH, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")


def _debug_tied(soc):
    manipulated = soc.cpu.clone("debug_tied")
    for port, value in soc.debug_interface.control_inputs.items():
        tie_port(manipulated, port, value)
    return manipulated


def test_runtime_engine_on_manipulated_circuit(runtime_soc, benchmark):
    """Classification time of the debug-tied circuit (the paper's < 1 s step)."""
    manipulated = _debug_tied(runtime_soc)
    faults = generate_fault_list(manipulated).faults()

    def classify():
        return StructuralUntestabilityEngine(manipulated).classify(faults)

    report = benchmark.pedantic(classify, rounds=3, iterations=1, warmup_rounds=0)
    print()
    print(f"Engine classification of {len(faults):,} faults on the manipulated "
          f"circuit: {report.runtime_seconds:.2f}s, "
          f"{len(report.untestable):,} untestable")
    _record("tie_classification", report.runtime_seconds,
            faults=len(faults), untestable=len(report.untestable))
    assert report.runtime_seconds < 60.0
    assert report.untestable


def test_runtime_full_flow(runtime_soc, benchmark):
    report = benchmark.pedantic(lambda: OnlineUntestableFlow(runtime_soc).run(),
                                rounds=3, iterations=1, warmup_rounds=0)
    total = sum(report.runtimes.values())
    print()
    print(f"Per-phase runtime of the full flow ({RUNTIME_BENCH_CONFIG} core):")
    for phase, seconds in report.runtimes.items():
        print(f"  {phase:16s} {seconds:7.2f}s")
    print(f"  {'total':16s} {total:7.2f}s")
    _record("full_flow", total, phases={
        phase: round(seconds, 4) for phase, seconds in report.runtimes.items()})
    assert total < 120.0


def test_runtime_table1_byte_identical(runtime_soc):
    """The compiled execution layer must not move Table I by a single byte
    relative to the legacy implementation's golden capture."""
    if RUNTIME_BENCH_CONFIG != "date13":
        pytest.skip("golden Table I is captured for the date13 configuration")
    report = OnlineUntestableFlow(runtime_soc).run()
    golden = _GOLDEN_TABLE1.read_text(encoding="utf-8").rstrip("\n")
    rendered = report.to_table()
    _BENCH["table1_byte_identical"] = rendered == golden
    assert rendered == golden


def test_runtime_fault_sim_compiled_vs_legacy(runtime_soc):
    """The compiled fault simulator must beat the legacy object-graph walk
    while producing exactly the same verdicts."""
    manipulated = _debug_tied(runtime_soc)
    all_faults = generate_fault_list(manipulated).faults()
    # Deterministic fault sample + random mission patterns: enough work for
    # a stable timing comparison, small enough for the tier-1 budget.  The
    # legacy object-graph walk is the slow side (~70ms/fault on date13), so
    # the sample is kept deliberately small — 40 faults already give a
    # timing gap far beyond the 0.8x assertion margin.
    step = max(1, len(all_faults) // 40)
    faults = all_faults[::step][:40]
    rng = random.Random(2013)
    controllable = [p for p in manipulated.input_ports()
                    if manipulated.net(p).tied is None]
    sim = FaultSimulator(manipulated)
    controllable += sim.sim.state_nets
    patterns = [
        {net: (LOGIC_1 if rng.getrandbits(1) else LOGIC_0)
         for net in controllable}
        for _ in range(10)
    ]

    legacy = LegacyFaultSimulator(manipulated)
    start = time.perf_counter()
    legacy_result = legacy.run(faults, patterns, drop_detected=True)
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled_result = sim.run(faults, patterns)
    compiled_seconds = time.perf_counter() - start

    assert compiled_result.detected == legacy_result.detected
    assert compiled_result.undetected == legacy_result.undetected
    assert compiled_result.detecting_pattern == legacy_result.detecting_pattern

    speedup = legacy_seconds / compiled_seconds if compiled_seconds else float("inf")
    print()
    print(f"Fault simulation of {len(faults)} faults x {len(patterns)} "
          f"patterns: legacy {legacy_seconds:.3f}s, "
          f"compiled {compiled_seconds:.3f}s ({speedup:.1f}x)")
    _record("fault_sim_legacy", legacy_seconds,
            faults=len(faults), patterns=len(patterns))
    _record("fault_sim_compiled", compiled_seconds,
            faults=len(faults), patterns=len(patterns))
    _BENCH["fault_sim_speedup"] = round(speedup, 2)
    # "Measurably faster": demand a comfortable margin so the assertion is
    # robust to CI noise (locally the gap is an order of magnitude).
    assert compiled_seconds < 0.8 * legacy_seconds


def test_runtime_transition_fault_sim(runtime_soc):
    """Transition-delay (two-pattern) fault simulation on the compiled
    engine: records the ``transition_fault_sim`` stage and pins the sharded
    engine byte-identical to the serial one on the same sample."""
    from repro.simulation.sharded import ShardedFaultSimulator

    manipulated = _debug_tied(runtime_soc)
    all_faults = generate_fault_list(manipulated, model="transition").faults()
    step = max(1, len(all_faults) // 120)
    faults = all_faults[::step][:120]
    rng = random.Random(2013)
    controllable = [p for p in manipulated.input_ports()
                    if manipulated.net(p).tied is None]
    sim = FaultSimulator(manipulated)
    controllable += sim.sim.state_nets
    patterns = [
        {net: (LOGIC_1 if rng.getrandbits(1) else LOGIC_0)
         for net in controllable}
        for _ in range(10)
    ]

    start = time.perf_counter()
    serial_result = sim.run(faults, patterns)
    serial_seconds = time.perf_counter() - start

    sharded = ShardedFaultSimulator(manipulated, jobs=2, backend="process")
    sharded_result = sharded.run(faults, patterns)
    assert sharded_result.detected == serial_result.detected
    assert sharded_result.undetected == serial_result.undetected
    assert sharded_result.detecting_pattern == serial_result.detecting_pattern

    print()
    print(f"Transition fault simulation of {len(faults)} faults x "
          f"{len(patterns)} patterns: {serial_seconds:.3f}s, "
          f"{len(serial_result.detected)} detected")
    _record("transition_fault_sim", serial_seconds,
            faults=len(faults), patterns=len(patterns),
            detected=len(serial_result.detected))
    assert serial_result.detected or serial_result.undetected


def test_runtime_scan_tracing(runtime_soc, benchmark):
    result = benchmark(identify_scan_untestable, runtime_soc.cpu)
    _record("scan_tracing", benchmark.stats.stats.mean
            if benchmark.stats is not None else 0.0)
    assert result.counts()["cells"] == runtime_soc.scan.total_cells


def test_runtime_full_fault_grading_sharded(runtime_soc):
    """Full-population mission-mode fault grading, per kernel and jobs.

    Four configurations grade the complete stuck-at population against the
    captured SBST patterns — int and numpy kernel, each serial and sharded
    at ``jobs=4`` on the process backend — with detected-set equality
    enforced across all of them.  Each kernel records its serial and
    parallel wall clock as explicit sub-entries of its own stage
    (``full_fault_grading`` / ``full_fault_grading_numpy``), so the CI
    regression gate watches them independently instead of re-deriving one
    from the other.

    The historical acceptance pin (sharded >= 2x serial) is gone on
    purpose: serial grading now routes through the same event-driven cone
    walk the shards use, which made *serial* ~12x faster and left jobs=4
    with only process overhead to amortise on a small core.  The kernel
    PR's pin replaces it: on date13 the numpy serial grade must land >= 5x
    under the 46.2s recorded by the pre-kernel full-cone implementation.
    """
    programs = generate_sbst_suite(runtime_soc.config.cpu)
    patterns = ToggleMonitor(runtime_soc.cpu).run_suite(programs)
    faults = generate_fault_list(runtime_soc.cpu).faults()

    def graded(kernel: str, jobs: int):
        grader = (FaultGrader(runtime_soc.cpu, jobs=jobs, backend="process",
                              kernel=kernel)
                  if jobs > 1 else FaultGrader(runtime_soc.cpu, kernel=kernel))
        start = time.perf_counter()
        detected = grader.grade(patterns, faults)
        return detected, time.perf_counter() - start

    serial_detected, serial_seconds = graded("int", 1)
    sharded_detected, sharded_seconds = graded("int", 4)
    assert sharded_detected == serial_detected
    assert serial_detected  # a grading run that detects nothing is broken

    speedup = (serial_seconds / sharded_seconds
               if sharded_seconds else float("inf"))
    print()
    print(f"Full fault grading of {len(faults):,} faults x {len(patterns)} "
          f"patterns [int]: serial {serial_seconds:.2f}s, "
          f"sharded --jobs 4 {sharded_seconds:.2f}s ({speedup:.1f}x)")
    from repro.simulation.sharded import resolve_jobs
    _record("full_fault_grading", sharded_seconds,
            serial_seconds=round(serial_seconds, 4), jobs=4,
            jobs_resolved=resolve_jobs(4), cpus=os.cpu_count() or 1,
            kernel="int", faults=len(faults), patterns=len(patterns),
            detected=len(sharded_detected))
    _record_parallel_speedup("full_fault_grading_speedup",
                             serial_seconds, sharded_seconds, 4)

    if not numpy_available():
        pytest.skip("numpy not installed: int-kernel stages recorded, "
                    "full_fault_grading_numpy skipped")

    np_detected, np_seconds = graded("numpy", 1)
    np4_detected, np4_seconds = graded("numpy", 4)
    assert np_detected == serial_detected
    assert np4_detected == serial_detected

    print(f"Full fault grading of {len(faults):,} faults x {len(patterns)} "
          f"patterns [numpy]: serial {np_seconds:.2f}s, "
          f"sharded --jobs 4 {np4_seconds:.2f}s")
    _record("full_fault_grading_numpy", np_seconds,
            jobs4_seconds=round(np4_seconds, 4),
            faults=len(faults), patterns=len(patterns),
            detected=len(np_detected), **kernel_info("numpy"))
    if RUNTIME_BENCH_CONFIG == "date13":
        # Kernel-PR acceptance pin: >= 5x under the recorded 46.2s
        # pre-kernel serial grade (locally ~4.7s, i.e. ~10x margin).
        assert np_seconds < 46.2 / 5.0


def test_runtime_pool_warm_grading(runtime_soc):
    """Cold-spawn vs warm-pool round-trip latency of the persistent runtime.

    Grades the full stuck-at population three times: serial reference,
    then twice through one persistent :class:`~repro.runtime.WorkerPool` —
    the first round pays worker spawn + netlist/job install (the cold
    path every ephemeral ``--jobs`` call pays on *each* invocation), the
    second finds everything warm and its setup cost collapses to a cache
    hit.  Detected sets must be identical across all three.

    Two pins: the warm-path setup overhead must land at least 10x under
    the cold spin-up on any machine (the tentpole's amortisation claim),
    and on a >= 4-core box the warm jobs=4 grade must beat serial.
    """
    from repro.runtime import WorkerPool
    from repro.simulation.sharded import resolve_jobs

    programs = generate_sbst_suite(runtime_soc.config.cpu)
    patterns = ToggleMonitor(runtime_soc.cpu).run_suite(programs)
    faults = generate_fault_list(runtime_soc.cpu).faults()
    cpus = os.cpu_count() or 1
    workers = resolve_jobs(4)

    serial_grader = FaultGrader(runtime_soc.cpu)
    start = time.perf_counter()
    serial_detected = serial_grader.grade(patterns, faults)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pool = WorkerPool(workers)
    spawn_seconds = time.perf_counter() - start
    try:
        grader = FaultGrader(runtime_soc.cpu, jobs=workers, pool=pool)

        start = time.perf_counter()
        cold_detected = grader.grade(patterns, faults)
        cold_seconds = time.perf_counter() - start
        cold_setup = spawn_seconds + pool.stats["last_setup_seconds"]

        start = time.perf_counter()
        warm_detected = grader.grade(patterns, faults)
        warm_seconds = time.perf_counter() - start
        warm_setup = pool.stats["last_setup_seconds"]

        assert cold_detected == serial_detected
        assert warm_detected == serial_detected
        assert pool.stats["install_hits"] >= 1

        print()
        print(f"Warm-pool fault grading of {len(faults):,} faults x "
              f"{len(patterns)} patterns [jobs={workers} on {cpus} cpu(s)]: "
              f"serial {serial_seconds:.2f}s, cold {cold_seconds:.2f}s "
              f"(setup {cold_setup:.3f}s), warm {warm_seconds:.2f}s "
              f"(setup {warm_setup * 1000:.2f}ms)")
        _record("pool_warm_grading", warm_seconds,
                serial_seconds=round(serial_seconds, 4),
                cold_seconds=round(cold_seconds, 4),
                cold_setup_seconds=round(cold_setup, 4),
                warm_setup_seconds=round(warm_setup, 6),
                spawn_seconds=round(spawn_seconds, 4),
                jobs=4, jobs_resolved=workers, cpus=cpus,
                faults=len(faults), patterns=len(patterns),
                detected=len(warm_detected),
                worker_restarts=pool.stats["worker_restarts"])
        _record_parallel_speedup("pool_warm_grading_speedup",
                                 serial_seconds, warm_seconds, 4)

        # The amortisation claim holds on any machine: a warm re-entry
        # must skip at least 10x the cold spin-up cost.
        assert warm_setup * 10.0 <= cold_setup
        if RUNTIME_BENCH_CONFIG == "date13" and cpus >= 4:
            # Tentpole acceptance pin: with real cores, the warm pool must
            # beat the serial grade outright.
            assert warm_seconds < serial_seconds
    finally:
        pool.close()


def test_runtime_static_prune(runtime_soc):
    """The static netlist-analysis layer as a PODEM pre-filter.

    Three quantities go into ``BENCH_latest.json``:

    * the one-off analysis cost (SCOAP + implication learning + dominator
      build, then ``prove_all`` over the complete stuck-at universe),
    * the coverage of the prover against the tied-value UU population
      (the PR's acceptance pin: on date13 the static proofs must cover at
      least 20% of the tie-untestable faults — measured, they cover ~100%),
    * an on-vs-off PODEM comparison on a deterministic mixed sample of
      provable and unprovable faults: calls avoided, backtrack delta and
      wall clock, with verdict agreement enforced.

    The sample is intentionally small — a single date13 PODEM refutation
    of a random-resistant fault runs ~10s, so the full population is out
    of benchmark budget by ~3 orders of magnitude.
    """
    from repro.analysis import get_static_analysis
    from repro.atpg.engine import AtpgEffort, run_detection_phases

    netlist = runtime_soc.cpu
    all_faults = generate_fault_list(netlist).faults()

    start = time.perf_counter()
    static = get_static_analysis(netlist)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    proofs = static.prove_all(all_faults)
    prove_seconds = time.perf_counter() - start

    tie_report = StructuralUntestabilityEngine(netlist).classify(all_faults)
    tie_uu = len(tie_report.untestable)
    # Coverage is matched-over-population: only proofs that land *inside*
    # the tie-UU set count, so the ratio is a true fraction (<= 1.0).
    # Proofs beyond that population (faults the prover catches that tie
    # analysis cannot) are real wins, reported separately — folding them
    # into the numerator once pushed "coverage" to 1.0012.
    matched = sum(1 for fault in tie_report.untestable if fault in proofs)
    extra_proofs = len(proofs) - matched
    coverage = matched / tie_uu if tie_uu else 1.0

    # Deterministic mixed sample: provable faults exercise the pre-filter,
    # unprovable ones keep the PODEM phase honest on both sides.
    proven = [f for f in all_faults if f in proofs]
    unproven = [f for f in all_faults if f not in proofs]
    pstep = max(1, len(proven) // 8)
    ustep = max(1, len(unproven) // 8)
    sample = proven[::pstep][:8] + unproven[::ustep][:8]

    start = time.perf_counter()
    on_cls, _, on_stats, _ = run_detection_phases(
        netlist, sample, AtpgEffort.FULL)
    on_seconds = time.perf_counter() - start

    start = time.perf_counter()
    off_cls, _, off_stats, _ = run_detection_phases(
        netlist, sample, AtpgEffort.FULL,
        static_prune=False, static_learning=False)
    off_seconds = time.perf_counter() - start

    # Soundness: the two runs may only disagree across the PODEM abort
    # boundary (SCOAP guidance reorders the search, so at a fixed
    # backtrack limit a fault can flip between ABORTED and a definite
    # verdict in either direction — which is why "static" is a cache
    # facet).  A DT <-> UU contradiction would be a real bug.
    for fault, off_class in off_cls.items():
        on_class = on_cls[fault]
        if on_class != off_class:
            assert "AU" in (on_class.name, off_class.name), (
                f"{fault}: {off_class.name} -> {on_class.name}")

    calls_avoided = (off_stats.get("podem_calls", 0)
                     - on_stats.get("podem_calls", 0))
    backtrack_delta = (off_stats.get("podem_backtracks", 0)
                       - on_stats.get("podem_backtracks", 0))
    assert on_stats.get("static_proved", 0) >= 1
    assert calls_avoided >= 1

    print()
    print(f"Static analysis: build {build_seconds:.2f}s, prove_all over "
          f"{len(all_faults):,} faults {prove_seconds:.2f}s, "
          f"{len(proofs):,} proofs ({coverage:.0%} of {tie_uu:,} tie-UU, "
          f"{extra_proofs} beyond)")
    print(f"PODEM sample of {len(sample)}: off {off_seconds:.1f}s / "
          f"{off_stats.get('podem_calls', 0)} calls, on {on_seconds:.1f}s / "
          f"{on_stats.get('podem_calls', 0)} calls "
          f"({calls_avoided} avoided, backtrack delta {backtrack_delta})")
    _record("static_prune", on_seconds,
            build_seconds=round(build_seconds, 4),
            prove_seconds=round(prove_seconds, 4),
            faults=len(all_faults),
            faults_proven_statically=len(proofs),
            proofs_beyond_tie_uu=extra_proofs,
            tie_untestable=tie_uu,
            sample=len(sample),
            podem_calls_avoided=calls_avoided,
            podem_seconds_without=round(off_seconds, 4),
            backtrack_delta=backtrack_delta)
    _BENCH["static_proof_coverage_of_tie_uu"] = round(coverage, 4)
    if RUNTIME_BENCH_CONFIG == "date13":
        # Acceptance pin: >= 20% of the UU population proven statically.
        assert coverage >= 0.20


def test_runtime_atpg_portfolio(runtime_soc):
    """The ATPG portfolio: serial reference PODEM vs ``podem-restart``
    fanned over process shards at ``--jobs 4``.

    ATPG cost on date13 is dominated by a tail of huge-fanout-cone faults
    (a single search can run ~150s regardless of the backtrack budget —
    the cost is decisions x full-netlist implication, which no budget
    caps), so the stage samples the small-cone half of the searchable
    population: the portfolio is measured on faults it can iterate on
    inside a benchmark budget, and the sample is deterministic so runs
    stay comparable.

    Two pins always run: the restart backend must agree with the
    reference on every verdict outside the abort boundary (attempt 0 *is*
    the classic search, so a DT <-> UU contradiction would be a real
    bug), and the parallel run must detect/abort exactly what its
    verdicts say.  The >= 2x speedup pin arms on date13 when the machine
    has at least 4 cores — process sharding cannot beat a GIL-free
    serial walk on a single-core CI box, which still records honest
    numbers (and the core count) into ``BENCH_latest.json``.
    """
    from repro.atpg.engine import AtpgEffort
    from repro.faults.categories import FaultClass
    from repro.netlist.compiled import get_compiled
    from repro.simulation.sharded import (cone_representative, resolve_site,
                                          sharded_classify)

    netlist = runtime_soc.cpu
    population = generate_fault_list(netlist).faults()
    tie_report = StructuralUntestabilityEngine(netlist).classify(population)
    searchable = [f for f in population
                  if f not in tie_report.classifications]
    assert searchable

    compiled = get_compiled(netlist)
    sizes = compiled.fanout_cone_sizes()

    def cone_cost(fault):
        rep = cone_representative(compiled, resolve_site(compiled, fault))
        return sizes[rep] if rep >= 0 else 0

    costed = sorted((cone_cost(f), i) for i, f in enumerate(searchable))
    small = [searchable[i] for _, i in costed[:max(1, len(costed) // 2)]]
    sample = small[::max(1, len(small) // 64)][:64]

    kw = dict(effort=AtpgEffort.FULL, random_patterns=0, backtrack_limit=24)

    start = time.perf_counter()
    serial_report = sharded_classify(netlist, sample, jobs=1,
                                     backend="serial", **kw)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_report = sharded_classify(
        netlist, sample, jobs=4, backend="process",
        atpg_backend="podem-restart", atpg_seed=2013, **kw)
    parallel_seconds = time.perf_counter() - start

    # Soundness across the portfolio: verdicts may only differ where one
    # side aborted (restart retries can rescue an AU into DT/UU; they can
    # never flip a completed verdict).
    for fault, ref_class in serial_report.classifications.items():
        restart_class = parallel_report.classifications[fault]
        if ref_class != restart_class:
            assert FaultClass.AU in (ref_class, restart_class), (
                f"{fault}: {ref_class.name} -> {restart_class.name}")

    def counts(report):
        tally: dict = {}
        for fault_class in report.classifications.values():
            tally[fault_class.value] = tally.get(fault_class.value, 0) + 1
        return dict(sorted(tally.items()))

    cpus = os.cpu_count() or 1
    speedup = (serial_seconds / parallel_seconds
               if parallel_seconds else float("inf"))
    print()
    print(f"ATPG portfolio on {len(sample)} small-cone faults "
          f"(backtrack limit 24): serial podem {serial_seconds:.2f}s "
          f"{counts(serial_report)}, podem-restart --jobs 4 "
          f"{parallel_seconds:.2f}s {counts(parallel_report)} "
          f"({speedup:.2f}x on {cpus} cpu(s))")
    from repro.simulation.sharded import resolve_jobs
    _record("atpg_portfolio", parallel_seconds,
            serial_seconds=round(serial_seconds, 4),
            jobs=4, jobs_resolved=resolve_jobs(4), backend="podem-restart",
            cpus=cpus, sample=len(sample), backtrack_limit=24,
            serial_counts=counts(serial_report),
            parallel_counts=counts(parallel_report))
    _record_parallel_speedup("atpg_portfolio_speedup",
                             serial_seconds, parallel_seconds, 4)
    if RUNTIME_BENCH_CONFIG == "date13" and cpus >= 4:
        # Portfolio-PR acceptance pin: the restart fan-out must at least
        # halve the serial reference wall clock when the cores exist.
        assert parallel_seconds < serial_seconds / 2.0
