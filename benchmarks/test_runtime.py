"""Experiment ``runtime`` — analysis cost (§4).

The paper stresses that, once the circuit has been manipulated, the
structural analysis is essentially free: "the modified circuit is analyzed by
Tetramax in less than 1 second", while the engineering effort lives in the
identification of the untestability sources.  This benchmark measures the
same quantities for the pure-Python engine on the full-size synthetic core:

* the tied-value classification of the manipulated (debug-tied) circuit,
* the complete four-source identification flow,
* and the scan-chain tracing step alone.
"""

from repro.atpg.engine import StructuralUntestabilityEngine
from repro.core.flow import OnlineUntestableFlow
from repro.core.scan_analysis import identify_scan_untestable
from repro.faults.faultlist import generate_fault_list
from repro.manipulation.tie import tie_port


def test_runtime_engine_on_manipulated_circuit(date13_soc, benchmark):
    """Classification time of the debug-tied circuit (the paper's < 1 s step)."""
    manipulated = date13_soc.cpu.clone("debug_tied")
    for port, value in date13_soc.debug_interface.control_inputs.items():
        tie_port(manipulated, port, value)
    faults = generate_fault_list(manipulated).faults()

    def classify():
        return StructuralUntestabilityEngine(manipulated).classify(faults)

    report = benchmark.pedantic(classify, rounds=3, iterations=1, warmup_rounds=0)
    print()
    print(f"Engine classification of {len(faults):,} faults on the manipulated "
          f"circuit: {report.runtime_seconds:.2f}s, "
          f"{len(report.untestable):,} untestable")
    assert report.runtime_seconds < 60.0
    assert report.untestable


def test_runtime_full_flow(date13_soc, benchmark):
    report = benchmark.pedantic(lambda: OnlineUntestableFlow(date13_soc).run(),
                                rounds=3, iterations=1, warmup_rounds=0)
    total = sum(report.runtimes.values())
    print()
    print("Per-phase runtime of the full flow (date13 core):")
    for phase, seconds in report.runtimes.items():
        print(f"  {phase:16s} {seconds:7.2f}s")
    print(f"  {'total':16s} {total:7.2f}s")
    assert total < 120.0


def test_runtime_scan_tracing(date13_soc, benchmark):
    result = benchmark(identify_scan_untestable, date13_soc.cpu)
    assert result.counts()["cells"] == date13_soc.scan.total_cells
