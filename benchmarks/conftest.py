"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
(see EXPERIMENTS.md for the mapping).  The generated SoCs and flow reports
are session-scoped so the expensive objects are built once per benchmark run.
"""

from __future__ import annotations

import pytest

import repro
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


@pytest.fixture(scope="session")
def date13_soc():
    """The paper's case-study configuration (synthetic e200z0-class core)."""
    return build_soc(SoCConfig.date13())


@pytest.fixture(scope="session")
def date13_report(date13_soc):
    # The parallel pipeline reproduces the legacy flow's report exactly
    # (first-source attribution is deterministic in the paper's order).
    return repro.analyze(date13_soc, parallel=True)


@pytest.fixture(scope="session")
def small_soc():
    return build_soc(SoCConfig.small())


@pytest.fixture(scope="session")
def small_report(small_soc):
    return repro.analyze(small_soc, parallel=True)


@pytest.fixture(scope="session")
def tiny_soc():
    return build_soc(SoCConfig.tiny())


@pytest.fixture(scope="session")
def tiny_report(tiny_soc):
    return repro.analyze(tiny_soc, parallel=True)
