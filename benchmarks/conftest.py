"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
(see EXPERIMENTS.md for the mapping).  The generated SoCs and flow reports
are session-scoped so the expensive objects are built once per benchmark run.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc

#: Config preset the runtime benchmarks target.  The CI benchmark smoke job
#: sets ``REPRO_BENCH_CONFIG=small`` to keep the job fast; the default is
#: the paper's full-size case-study core.
RUNTIME_BENCH_CONFIG = os.environ.get("REPRO_BENCH_CONFIG", "date13")


@pytest.fixture(scope="session")
def bench_session():
    """One Session for the whole benchmark run (passes run concurrently)."""
    return repro.Session(parallel_passes=True)


@pytest.fixture(scope="session")
def date13_soc():
    """The paper's case-study configuration (synthetic e200z0-class core)."""
    return build_soc(SoCConfig.date13())


@pytest.fixture(scope="session")
def runtime_soc(request):
    """Target of the runtime benchmarks — date13 unless overridden via the
    ``REPRO_BENCH_CONFIG`` environment variable (CI smoke uses ``small``)."""
    if RUNTIME_BENCH_CONFIG == "date13":
        # Lazy so a non-date13 smoke run never builds the full-size core.
        return request.getfixturevalue("date13_soc")
    return build_soc(SoCConfig.from_name(RUNTIME_BENCH_CONFIG))


@pytest.fixture(scope="session")
def date13_report(bench_session, date13_soc):
    # The parallel pipeline reproduces the legacy flow's report exactly
    # (first-source attribution is deterministic in the paper's order).
    return bench_session.analyze(date13_soc)


@pytest.fixture(scope="session")
def small_soc():
    return build_soc(SoCConfig.small())


@pytest.fixture(scope="session")
def small_report(bench_session, small_soc):
    return bench_session.analyze(small_soc)


@pytest.fixture(scope="session")
def tiny_soc():
    return build_soc(SoCConfig.tiny())


@pytest.fixture(scope="session")
def tiny_report(bench_session, tiny_soc):
    return bench_session.analyze(tiny_soc)
