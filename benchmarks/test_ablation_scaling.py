"""Ablation ``scaling`` — sensitivity of the on-line untestable fraction.

Not part of the paper's evaluation, but called out in DESIGN.md: how does the
on-line functionally untestable fraction react to (a) the size of the core
and (b) the size of the mapped memory?  The expectation is that the scan
fraction tracks the sequential-cell share of the design, while the memory-map
fraction shrinks as more of the address space becomes legal.
"""

import pytest

from repro.core.flow import FlowConfig, OnlineUntestableFlow
from repro.faults.categories import OnlineUntestableSource
from repro.memory.memory_map import MemoryMap, MemoryRegion
from repro.soc.config import SoCConfig
from repro.soc.soc_builder import build_soc


def test_core_size_sweep(tiny_report, small_report, date13_report, benchmark):
    """The OLFU fraction stays in the same band across core sizes, and the
    debug share shrinks as the (fixed-size) debug block is amortised over a
    larger core."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    for name, report in (("tiny", tiny_report), ("small", small_report),
                         ("date13", date13_report)):
        fraction = report.total_online_untestable / report.total_faults
        debug = (report.source_count(OnlineUntestableSource.DEBUG_CONTROL)
                 + report.source_count(OnlineUntestableSource.DEBUG_OBSERVE))
        rows.append((name, report.total_faults, fraction,
                     debug / report.total_faults))

    print()
    print("Core-size sweep (configuration, faults, OLFU fraction, debug share):")
    for row in rows:
        print(f"  {row[0]:8s} {row[1]:8,}  {row[2]:6.1%}  {row[3]:6.1%}")

    fractions = [row[2] for row in rows]
    debug_shares = [row[3] for row in rows]
    assert all(0.05 < f < 0.40 for f in fractions)
    # Debug logic is a fixed-size block: its share decreases monotonically
    # with core size.
    assert debug_shares[0] > debug_shares[1] > debug_shares[2]


@pytest.mark.parametrize("mapped_kib, expect_free_bits", [(1, 10), (8, 13), (32, 15)])
def test_memory_map_size_sweep(mapped_kib, expect_free_bits, benchmark):
    """Growing the mapped memory frees more address bits; as long as some bits
    stay frozen the memory-map source keeps finding faults."""
    cpu = SoCConfig.small().cpu  # 16-bit address bus
    memory_map = MemoryMap(cpu.addr_width,
                           [MemoryRegion("mem", 0, mapped_kib * 1024)])
    soc = build_soc(SoCConfig(cpu=cpu, memory_map=memory_map))
    flow_config = FlowConfig(run_scan=False, run_debug_control=False,
                             run_debug_observe=False)
    report = benchmark.pedantic(lambda: OnlineUntestableFlow(soc, flow_config).run(),
                                rounds=1, iterations=1, warmup_rounds=0)
    memory = report.source_count(OnlineUntestableSource.MEMORY_MAP)
    from repro.memory.analysis import free_address_bits

    free = free_address_bits(memory_map)
    print()
    print(f"mapped={mapped_kib} KiB free_bits={len(free)} "
          f"memory-map OLFU={memory:,} ({report.percentage(memory):.1f}%)")
    assert len(free) == expect_free_bits
    assert memory > 0


def test_memory_contribution_decreases_with_mapped_size():
    cpu = SoCConfig.small().cpu
    results = []
    for mapped_kib in (1, 8, 32):
        memory_map = MemoryMap(cpu.addr_width,
                               [MemoryRegion("mem", 0, mapped_kib * 1024)])
        soc = build_soc(SoCConfig(cpu=cpu, memory_map=memory_map))
        config = FlowConfig(run_scan=False, run_debug_control=False,
                            run_debug_observe=False)
        report = OnlineUntestableFlow(soc, config).run()
        results.append(report.source_count(OnlineUntestableSource.MEMORY_MAP))
    assert results[0] >= results[1] >= results[2]
