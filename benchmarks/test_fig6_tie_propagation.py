"""Experiment ``fig6`` — tie propagation into downstream logic (Fig. 6).

Fig. 6 illustrates why §3.3 ties the *output* of the frozen address-register
flip-flops as well as their input: the constant then propagates into the
connected address-manipulation logic (branch adders, comparators), where the
structural analysis can identify further on-line functionally untestable
faults that would otherwise be missed when the tool stops at flip-flop
boundaries.

The benchmark builds an address register feeding an adder cone and counts the
untestable faults found with and without tieing the flip-flop outputs.
"""

from repro.core.memory_analysis import identify_memory_map_untestable
from repro.memory.memory_map import MemoryMap, MemoryRegion
from repro.netlist.builder import NetlistBuilder
from repro.soc.generators import ripple_adder


WIDTH = 8


def build_fig6_circuit():
    """An 8-bit address register whose value feeds a branch-target adder."""
    b = NetlistBuilder("fig6_address_cone")
    clk = b.add_input("clk")
    rst = b.add_input("rst_n")
    d = b.add_input_bus("d", WIDTH)
    offset = b.add_input_bus("offset", WIDTH)
    target = b.add_output_bus("target", WIDTH)

    q_nets = []
    for i in range(WIDTH):
        q = b.dff(d[i], clk, reset_n=rst, name=f"addr_ff{i}")
        q_nets.append(q)
    total, _ = ripple_adder(b, q_nets, offset, prefix="branch_adder")
    for i in range(WIDTH):
        b.buf(total[i], output=target[i])

    netlist = b.build()
    netlist.annotations["address_registers"] = [{
        "name": "addr",
        "ff_instances": [f"addr_ff{i}" for i in range(WIDTH)],
        "q_nets": q_nets,
        "address_bits": list(range(WIDTH)),
    }]
    return netlist


# Only the low 3 address bits are ever used: bits 3..7 are frozen at 0.
MEMORY_MAP = MemoryMap(WIDTH, [MemoryRegion("ram", 0, 8)])


def test_fig6_tie_propagation(benchmark):
    netlist = build_fig6_circuit()

    full = benchmark.pedantic(
        lambda: identify_memory_map_untestable(netlist, memory_map=MEMORY_MAP,
                                               tie_flop_outputs=True),
        rounds=5, iterations=1, warmup_rounds=0)
    stop_at_ff = identify_memory_map_untestable(netlist, memory_map=MEMORY_MAP,
                                                tie_flop_outputs=False)

    def adder_faults(result):
        faults = set()
        for fault in result.newly_untestable:
            name = fault.instance_name
            if name and netlist.instances[name].cell.name == "FA":
                faults.add(fault)
        return faults

    adder_faults_full = adder_faults(full)
    adder_faults_stop = adder_faults(stop_at_ff)

    print()
    print("Fig. 6 — effect of tieing the register outputs:")
    print(f"  frozen address bits                : {sorted(full.constant_bits)}")
    print(f"  untestable faults (inputs only)    : {len(stop_at_ff.newly_untestable)}")
    print(f"  untestable faults (inputs+outputs) : {len(full.newly_untestable)}")
    print(f"  ... of which inside the adder      : "
          f"{len(adder_faults_stop)} -> {len(adder_faults_full)}")

    assert set(full.constant_bits) == set(range(3, WIDTH))
    # Tieing the outputs reaches strictly more faults, specifically inside the
    # downstream address-manipulation logic (the branch adder).
    assert stop_at_ff.newly_untestable < full.newly_untestable
    assert len(adder_faults_full) > len(adder_faults_stop)
    assert adder_faults_full
