"""Experiment ``table1`` — reproduction of Table I (§4).

The paper applies the identification flow to an industrial SoC with a 32-bit
embedded core (214,930 stuck-at faults) and reports, per source of on-line
functional untestability:

    Original        0      0%
    Scan       19,142    8.9%
    Debug   4,548+2,357  3.2%
    Memory      3,610    1.7%
    TOTAL      29,657   13.8%

This benchmark regenerates the same rows on the synthetic date13 core.  The
absolute counts depend on the netlist, so the assertions check the *shape*:
scan is the dominant source at several percent of the fault list, debug
contributes a low single-digit percentage split between control and
observation (control > observation), the memory map contributes a smaller
share, and the total lands in the low teens.
"""

from repro.core.flow import OnlineUntestableFlow
from repro.faults.categories import OnlineUntestableSource


def _percent(report, count):
    return 100.0 * count / report.total_faults


def test_table1_shape(date13_soc, date13_report, benchmark):
    report = benchmark.pedantic(
        lambda: OnlineUntestableFlow(date13_soc).run(),
        rounds=3, iterations=1, warmup_rounds=0)

    print()
    print(report.to_table())

    scan = report.source_count(OnlineUntestableSource.SCAN)
    ctrl = report.source_count(OnlineUntestableSource.DEBUG_CONTROL)
    observe = report.source_count(OnlineUntestableSource.DEBUG_OBSERVE)
    memory = report.source_count(OnlineUntestableSource.MEMORY_MAP)
    total = report.total_online_untestable

    # Row "Original": the reference fault list (paper reports 0 untestable).
    assert len(report.baseline_untestable) < 0.03 * report.total_faults

    # Row "Scan": the dominant source, around 9% of the fault list.
    assert scan == max(scan, ctrl + observe, memory)
    assert 5.0 < _percent(report, scan) < 14.0

    # Row "Debug": a few percent, control part larger than observation part.
    assert 1.0 < _percent(report, ctrl + observe) < 7.0
    assert ctrl > observe > 0

    # Row "Memory": smaller than debug+scan but clearly non-zero.
    assert 0.5 < _percent(report, memory) < 5.0

    # Row "TOTAL": low-teens percentage, consistent with the per-source sum.
    assert 8.0 < _percent(report, total) < 25.0
    assert total == scan + ctrl + observe + memory


def test_table1_fault_universe_scale(date13_soc):
    """The synthetic core's fault universe is in the same order of magnitude
    as the industrial core (tens of thousands of uncollapsed pin faults)."""
    from repro.faults.faultlist import generate_fault_list

    universe = generate_fault_list(date13_soc.cpu)
    assert 30_000 < len(universe) < 500_000
