#!/usr/bin/env python3
"""Fail CI when a benchmark stage regresses against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BENCH_latest.json \\
        benchmarks/BENCH_baseline_small.json \\
        --stages fault_sim_compiled,full_flow --max-ratio 2.5

Compares the per-stage wall clock recorded by ``benchmarks/test_runtime.py``
(``REPRO_BENCH_OUT``) with a committed baseline capture of the same SoC
configuration and exits non-zero when any watched stage is slower than
``max_ratio`` times its baseline.  The generous default ratio absorbs CI
machine noise while still catching order-of-magnitude regressions of the
compiled hot paths.

Refreshing the baseline intentionally::

    REPRO_BENCH_CONFIG=small \\
        REPRO_BENCH_OUT=benchmarks/BENCH_baseline_small.json \\
        python -m pytest benchmarks/test_runtime.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_stages(path: Path) -> dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load benchmark file {path}: {exc}")
    stages = document.get("stages")
    if not isinstance(stages, dict):
        raise SystemExit(f"error: {path} has no 'stages' object")
    return {"config": document.get("config"), "stages": stages}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path,
                        help="freshly recorded BENCH_latest.json")
    parser.add_argument("baseline", type=Path,
                        help="committed baseline capture to compare against")
    parser.add_argument(
        "--stages", default="fault_sim_compiled,full_flow",
        metavar="NAME[,NAME...]",
        help="comma-separated stage names to gate on "
             "(default: fault_sim_compiled,full_flow)")
    parser.add_argument(
        "--max-ratio", type=float, default=2.5, metavar="R",
        help="fail when current/baseline wall clock exceeds R (default 2.5)")
    args = parser.parse_args(argv)

    current = load_stages(args.current)
    baseline = load_stages(args.baseline)
    if current["config"] != baseline["config"]:
        print(f"error: config mismatch — current ran {current['config']!r}, "
              f"baseline is {baseline['config']!r}", file=sys.stderr)
        return 2

    watched = [name.strip() for name in args.stages.split(",") if name.strip()]
    failures = []
    print(f"{'stage':<24} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for name in watched:
        base_entry = baseline["stages"].get(name)
        cur_entry = current["stages"].get(name)
        if cur_entry is None:
            # Absent from the fresh run: a typo'd --stages name or a stage
            # that stopped recording — both must fail loudly, whether or
            # not the baseline still carries it.
            print(f"error: stage {name!r} missing from {args.current}",
                  file=sys.stderr)
            return 2
        if base_entry is None:
            # A stage newer than the committed baseline capture: nothing to
            # compare against yet.  Skip (a later intentional baseline
            # refresh will pick it up) rather than failing every PR that
            # adds a benchmark stage.
            print(f"{name:<24} {'-':>10} "
                  f"{float(cur_entry['seconds']):>9.3f}s"
                  f" {'-':>6}   skipped (not in baseline)")
            continue
        base_seconds = float(base_entry["seconds"])
        cur_seconds = float(cur_entry["seconds"])
        # Sub-millisecond baselines are pure noise; clamp the denominator.
        ratio = cur_seconds / max(base_seconds, 1e-3)
        verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
        print(f"{name:<24} {base_seconds:>9.3f}s {cur_seconds:>9.3f}s "
              f"{ratio:>6.2f}x  {verdict}")
        if ratio > args.max_ratio:
            failures.append(name)

    if failures:
        print(f"benchmark regression (> {args.max_ratio}x baseline): "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"all watched stages within {args.max_ratio}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
