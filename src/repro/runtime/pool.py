"""The persistent warm worker pool behind the sharded engines.

Every ``sharded_*`` call used to spin up a fresh ``ProcessPoolExecutor``,
re-pickle the netlist + job state into every worker and tear the pool down
again — fatal once a Session (or the analysis service) runs many rounds
against the same design.  :class:`WorkerPool` amortizes all of it:

workers start once
    A pool owns N long-lived worker processes (``fork`` where available,
    ``spawn`` elsewhere), each connected by one duplex pipe.  Workers are
    daemonic and die with the parent.

content-addressed installs
    Job state is installed into workers once per *content key* — the
    promotion of the old ``_install_job`` run-token mechanism in
    :mod:`repro.simulation.sharded` into a durable cache keyed like
    :mod:`repro.store` (sha256 over the netlist signature plus the job
    configuration).  The netlist itself is installed under its own
    ``net:<signature>`` key and jobs cross the pipe with a
    :class:`_NetlistRef` in its place, so ten jobs against one design ship
    the design once.  Bulk pattern data rides zero-copy shared-memory
    segments (:mod:`repro.runtime.shm`) when numpy is available; plain
    pickle otherwise.

parent-side work stealing
    Tasks are dispatched dynamically: the parent keeps a shared deque of
    pending chunks and feeds each worker a small prefetch window, so a
    worker that finishes early immediately pulls the next chunk — LPT at
    chunk granularity without static partitioning.

graceful degradation
    A worker that dies mid-round (OOM-killed, ``kill -9``) is detected by
    pipe EOF / liveness checks; its in-flight chunks are requeued onto the
    survivors, a replacement worker is spawned and re-provisioned from the
    parent's payload cache, and ``stats["worker_restarts"]`` counts the
    event instead of the round hanging.

Determinism note: the pool never reorders *verdict-relevant* work — the
schedulers built on top (:mod:`repro.runtime.scheduler` and the pooled
paths of :mod:`repro.simulation.sharded`) keep each fault in exactly one
chunk and walk that chunk's pattern windows in order, which is what keeps
results byte-identical to serial under any steal order.  ``jitter_seed``
injects deterministic per-task delays to let tests sweep interleavings.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import time
import traceback
import multiprocessing
from collections import deque
from hashlib import sha256
from multiprocessing import connection as mp_connection
from typing import (Any, Callable, Dict, Iterator, List, Optional, Set,
                    Tuple)

#: Pool lifecycle modes accepted by the ``pool=`` knob everywhere.
POOL_MODES = ("ephemeral", "persistent")

#: Worker-side job-state cache bound (content keys, LRU).
DEFAULT_JOB_CACHE = 8

#: Worker-side netlist cache bound (``net:`` keys, LRU).
DEFAULT_NETLIST_CACHE = 4

#: Tasks kept in flight per worker: one executing, one queued behind it so
#: the worker never idles between a result and the next dispatch.
PREFETCH = 2


class WorkerTaskError(RuntimeError):
    """A task raised inside a pool worker; carries the remote traceback."""


class PoolClosedError(RuntimeError):
    """The pool was shut down; build a fresh one (see :func:`get_pool`)."""


def resolve_pool_mode(pool: object) -> Optional[str]:
    """Validate a pool spec string; ``None`` stays None (ephemeral path)."""
    if pool is None or isinstance(pool, WorkerPool):
        return pool  # type: ignore[return-value]
    name = str(pool).strip().lower()
    if name not in POOL_MODES:
        known = ", ".join(POOL_MODES)
        raise ValueError(
            f"unknown pool mode {pool!r}; expected one of: {known}")
    return name


class _NetlistRef:
    """Placeholder crossing the pipe where a job's netlist was."""

    __slots__ = ("key",)

    def __init__(self, key: str) -> None:
        self.key = key


class _InstallFailure:
    """Worker-side tombstone: an install blew up; tasks report why."""

    def __init__(self, text: str) -> None:
        self.text = text


def content_key(tag: str, netlist, *parts: Any) -> str:
    """Content address for worker-side job state, keyed like repro.store.

    sha256 over the netlist's structural signature plus the pickled
    configuration parts — identical inputs re-use the installed state,
    anything else is a distinct key.
    """
    from repro.netlist.compiled import netlist_signature

    digest = sha256()
    digest.update(tag.encode("ascii"))
    digest.update(netlist_signature(netlist).encode("ascii"))
    for part in parts:
        digest.update(pickle.dumps(part, protocol=4))
    return f"{tag}:{digest.hexdigest()}"


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _revive(obj: Any, state: Dict[str, Any]) -> Any:
    ref = getattr(obj, "netlist", None)
    if isinstance(ref, _NetlistRef):
        obj.netlist = state[ref.key]
    return obj


def _worker_main(conn, worker_id: int, jitter_seed: Optional[int]) -> None:
    """Long-lived worker loop: installs state, executes tasks, until EOF."""
    state: Dict[str, Any] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "install":
            _, key, payload = message
            try:
                state[key] = _revive(pickle.loads(payload), state)
            except Exception:  # noqa: BLE001 - reported on first use
                state[key] = _InstallFailure(traceback.format_exc())
            continue
        if kind == "forget":
            state.pop(message[1], None)
            continue
        # ("task", seq, key, method, task)
        _, seq, key, method, task = message
        if jitter_seed is not None:
            # Deterministic per-(task, worker) delay so determinism tests
            # can sweep steal interleavings reproducibly.
            time.sleep(((seq * 2654435761 + worker_id * 40503 + jitter_seed)
                        % 7) * 0.002)
        try:
            job = state[key]
            if isinstance(job, _InstallFailure):
                raise RuntimeError(
                    f"install of {key!r} failed in worker:\n{job.text}")
            result = getattr(job, method)(task)
        except BaseException:  # noqa: BLE001 - shipped to the parent
            try:
                conn.send(("err", seq, traceback.format_exc()))
            except (OSError, ValueError):
                break
        else:
            try:
                conn.send(("ok", seq, result))
            except (OSError, ValueError):
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
class _RunHandle:
    """One scheduling session over an installed job key.

    ``submit`` enqueues ``(method, task)`` chunks; :meth:`results` yields
    ``(tag, task, result)`` as workers complete them — and keeps yielding
    for tasks submitted *from inside* the loop, which is how the pooled
    window drivers pipeline a chunk's next round as soon as its current
    one merges.
    """

    def __init__(self, pool: "WorkerPool", key: str) -> None:
        self._pool = pool
        self.key = key

    def submit(self, method: str, task: Any, tag: Any = None) -> int:
        return self._pool._submit(self.key, method, task, tag)

    def results(self) -> Iterator[Tuple[Any, Any, Any]]:
        while True:
            item = self._pool._next_result()
            if item is None:
                return
            yield item


class WorkerPool:
    """A persistent pool of warm workers with content-addressed state."""

    def __init__(self, workers: int, *, start_method: Optional[str] = None,
                 jitter_seed: Optional[int] = None) -> None:
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            known = ", ".join(methods)
            raise ValueError(f"start method {start_method!r} unavailable "
                             f"on this platform (have: {known})")
        self.workers = max(1, int(workers))
        self.start_method = start_method
        self.jitter_seed = jitter_seed
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: List[Optional[Any]] = [None] * self.workers
        self._conns: List[Optional[Any]] = [None] * self.workers
        self._started = False
        self._closed = False
        self._lock = threading.RLock()

        # Content-addressed install registry (insertion order = install
        # order, which keeps every job's netlist ahead of the job itself
        # when a replacement worker is re-provisioned).
        self._objects: Dict[str, Any] = {}
        self._payloads: Dict[str, Optional[bytes]] = {}
        self._job_netlist: Dict[str, str] = {}

        # Run-scoped scheduling state.
        self._seq = itertools.count(1)
        self._pending: deque = deque()
        self._task_info: Dict[int, Tuple[str, str, Any, Any]] = {}
        self._inflight: List[Set[int]] = [set() for _ in range(self.workers)]
        self._ready: deque = deque()

        self.stats: Dict[str, Any] = {
            "workers": self.workers,
            "start_method": start_method,
            "installs": 0,
            "install_hits": 0,
            "tasks": 0,
            "worker_restarts": 0,
            "cold_start_seconds": 0.0,
            "setup_seconds": 0.0,
            "last_setup_seconds": 0.0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise PoolClosedError("worker pool is closed")

    def _ensure_started(self) -> None:
        if self._started:
            return
        started = time.perf_counter()
        for wid in range(self.workers):
            self._spawn(wid, provision=False)
        self._started = True
        self.stats["cold_start_seconds"] += time.perf_counter() - started

    def _spawn(self, wid: int, *, provision: bool) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, wid, self.jitter_seed),
            daemon=True, name=f"repro-pool-{wid}")
        process.start()
        child_conn.close()
        self._procs[wid] = process
        self._conns[wid] = parent_conn
        if provision:
            for key in list(self._objects):
                self._send(wid, ("install", key, self._payload(key)))

    def close(self) -> None:
        """Stop every worker and release installed state (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for wid, conn in enumerate(self._conns):
                if conn is None:
                    continue
                try:
                    conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for wid, process in enumerate(self._procs):
                if process is None:
                    continue
                process.join(timeout=1.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=1.0)
                self._procs[wid] = None
                conn = self._conns[wid]
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
                    self._conns[wid] = None
            self._release_objects(list(self._objects))
            self._pending.clear()
            self._task_info.clear()
            self._ready.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker PIDs (test hook for the kill -9 degradation path)."""
        with self._lock:
            self._ensure_started()
            return [process.pid if process is not None else None
                    for process in self._procs]

    # ------------------------------------------------------------------ #
    # content-addressed installs
    # ------------------------------------------------------------------ #
    def ensure_netlist(self, netlist) -> str:
        """Install (or re-use) a netlist under its structural signature."""
        from repro.netlist.compiled import netlist_signature

        key = f"net:{netlist_signature(netlist)}"
        with self._lock:
            self._check_open()
            if key in self._objects:
                self._objects[key] = netlist  # refresh, keep install order
                return key
            self._objects[key] = netlist
            self._payloads[key] = None
            self.stats["installs"] += 1
            if self._started:
                self._broadcast(("install", key, self._payload(key)))
        return key

    def ensure_job(self, key: str, build: Callable[[], Any]) -> str:
        """Install (or re-use) job state under a content key.

        ``build()`` runs only on a cache miss and must return an object
        whose ``netlist`` attribute is the target netlist; the pool strips
        the netlist into a shared ``net:`` install automatically.  The
        elapsed setup cost lands in ``stats["last_setup_seconds"]`` — ~0
        on a warm hit, which is what the ``pool_warm_grading`` bench stage
        pins.
        """
        started = time.perf_counter()
        with self._lock:
            self._check_open()
            self._ensure_started()
            if key in self._objects:
                job = self._objects.pop(key)
                self._objects[key] = job  # LRU refresh
                self.stats["install_hits"] += 1
                elapsed = time.perf_counter() - started
                self.stats["last_setup_seconds"] = elapsed
                self.stats["setup_seconds"] += elapsed
                return key
            job = build()
            netlist_key = self.ensure_netlist(job.netlist)
            self._objects[key] = job
            self._payloads[key] = None
            self._job_netlist[key] = netlist_key
            self.stats["installs"] += 1
            self._broadcast(("install", key, self._payload(key)))
            self._evict()
            elapsed = time.perf_counter() - started
            self.stats["last_setup_seconds"] = elapsed
            self.stats["setup_seconds"] += elapsed
        return key

    def _payload(self, key: str) -> bytes:
        payload = self._payloads.get(key)
        if payload is not None:
            return payload
        obj = self._objects[key]
        netlist_key = self._job_netlist.get(key)
        if netlist_key is None:
            payload = pickle.dumps(obj, protocol=4)
        else:
            original = obj.netlist
            obj.netlist = _NetlistRef(netlist_key)
            try:
                payload = pickle.dumps(obj, protocol=4)
            finally:
                obj.netlist = original
        self._payloads[key] = payload
        return payload

    def _evict(self) -> None:
        job_keys = [key for key in self._objects
                    if not key.startswith("net:")]
        while len(job_keys) > DEFAULT_JOB_CACHE:
            self._forget(job_keys.pop(0))
        net_keys = [key for key in self._objects if key.startswith("net:")]
        while len(net_keys) > DEFAULT_NETLIST_CACHE:
            victim = net_keys.pop(0)
            # Evicting a netlist orphans every job installed against it —
            # drop those first so a replacement worker never re-installs a
            # job whose netlist reference is gone.
            for key, netlist_key in list(self._job_netlist.items()):
                if netlist_key == victim:
                    self._forget(key)
            self._forget(victim)

    def _forget(self, key: str) -> None:
        self._broadcast(("forget", key))
        self._release_objects([key])

    def _release_objects(self, keys: List[str]) -> None:
        for key in keys:
            obj = self._objects.pop(key, None)
            self._payloads.pop(key, None)
            self._job_netlist.pop(key, None)
            release = getattr(obj, "release_shared", None)
            if callable(release):
                try:
                    release()
                except Exception:  # noqa: BLE001 - cleanup only
                    pass

    def _broadcast(self, message) -> None:
        for wid in range(self.workers):
            if self._conns[wid] is not None:
                self._send(wid, message)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def session(self, key: str) -> "_PoolSession":
        """Serialize a scheduling run over one installed key."""
        return _PoolSession(self, key)

    def _submit(self, key: str, method: str, task: Any, tag: Any) -> int:
        seq = next(self._seq)
        self._task_info[seq] = (key, method, task, tag)
        self._pending.append(seq)
        self.stats["tasks"] += 1
        self._dispatch()
        return seq

    def _dispatch(self) -> None:
        for wid in range(self.workers):
            if self._conns[wid] is None:
                continue
            while self._pending and len(self._inflight[wid]) < PREFETCH:
                seq = self._pending.popleft()
                if seq not in self._task_info:
                    continue
                key, method, task, _tag = self._task_info[seq]
                self._inflight[wid].add(seq)
                if not self._send(wid, ("task", seq, key, method, task)):
                    # _send handled the death and requeued the task.
                    break

    def _next_result(self) -> Optional[Tuple[Any, Any, Any]]:
        while True:
            if self._ready:
                return self._ready.popleft()
            if not self._task_info:
                return None
            self._dispatch()
            watched = {conn: wid for wid, conn in enumerate(self._conns)
                       if conn is not None}
            if not watched:
                # Every worker died at once; respawn and redispatch.
                self._check_health()
                continue
            for conn in mp_connection.wait(list(watched), timeout=0.2):
                self._absorb(watched[conn])
            self._check_health()

    def _absorb(self, wid: int) -> None:
        conn = self._conns[wid]
        if conn is None:
            return
        try:
            message = conn.recv()
        except (EOFError, OSError):
            self._handle_death(wid)
            return
        kind, seq = message[0], message[1]
        self._inflight[wid].discard(seq)
        info = self._task_info.pop(seq, None)
        if info is None:
            return  # duplicate of a requeued task — first completion won
        _key, _method, task, tag = info
        if kind == "err":
            raise WorkerTaskError(
                f"pool worker task failed:\n{message[2]}")
        self._ready.append((tag, task, message[2]))

    def _check_health(self) -> None:
        for wid, process in enumerate(self._procs):
            if process is not None and not process.is_alive():
                # Drain anything the pipe still buffered before declaring
                # the worker dead — completed results must not be lost.
                conn = self._conns[wid]
                while conn is not None and conn.poll(0):
                    self._absorb(wid)
                    conn = self._conns[wid]
                if self._procs[wid] is not None:
                    self._handle_death(wid)
        self._dispatch()

    def _handle_death(self, wid: int) -> None:
        process = self._procs[wid]
        if process is None:
            return
        self._procs[wid] = None
        conn = self._conns[wid]
        self._conns[wid] = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if self._closed:
            return
        self.stats["worker_restarts"] += 1
        victims = sorted(self._inflight[wid],
                         key=lambda seq: 0 if seq in self._task_info else 1)
        self._inflight[wid] = set()
        requeue = [seq for seq in victims if seq in self._task_info]
        self._pending.extendleft(reversed(requeue))
        self._spawn(wid, provision=True)
        self._dispatch()

    def _send(self, wid: int, message) -> bool:
        """Send to one worker, draining its results to avoid write-write
        deadlock; on a broken pipe the death path requeues and respawns."""
        conn = self._conns[wid]
        if conn is None:
            return False
        try:
            while conn.poll(0):
                self._absorb(wid)
                conn = self._conns[wid]
                if conn is None:
                    return False
            conn.send(message)
        except (OSError, ValueError):
            self._handle_death(wid)
            return False
        return True


class _PoolSession:
    """Context manager pairing the pool's run lock with a clean abort."""

    def __init__(self, pool: WorkerPool, key: str) -> None:
        self._pool = pool
        self._key = key
        self._handle: Optional[_RunHandle] = None

    def __enter__(self) -> _RunHandle:
        self._pool._lock.acquire()
        self._pool._check_open()
        self._pool._ensure_started()
        self._handle = _RunHandle(self._pool, self._key)
        return self._handle

    def __exit__(self, exc_type, exc, tb) -> None:
        pool = self._pool
        try:
            if exc_type is not None:
                # Abort: drop run state so a later session never sees a
                # stale task; in-flight workers finish and their late
                # results are discarded as unknown sequence numbers.
                pool._pending.clear()
                pool._task_info.clear()
                pool._ready.clear()
                for inflight in pool._inflight:
                    inflight.clear()
        finally:
            pool._lock.release()


# --------------------------------------------------------------------- #
# the process-global pool registry (what ``pool="persistent"`` resolves to)
# --------------------------------------------------------------------- #
_POOLS: Dict[Tuple[str, int], WorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(workers: Optional[int] = None,
             start_method: Optional[str] = None) -> WorkerPool:
    """The shared persistent pool for ``(start_method, workers)``.

    Owned by the process (one registry per interpreter, shut down at
    exit): every Session and every service job asking for the same shape
    re-uses the same warm workers and their installed state.
    """
    if workers is None:
        workers = max(1, os.cpu_count() or 1)
    workers = max(1, int(workers))
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    with _POOLS_LOCK:
        key = (start_method, workers)
        pool = _POOLS.get(key)
        if pool is None or pool.closed:
            pool = WorkerPool(workers, start_method=start_method)
            _POOLS[key] = pool
        return pool


def shutdown_pools() -> None:
    """Close every registry pool (idempotent; also runs at interpreter exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.close()


def pool_stats() -> List[Dict[str, Any]]:
    """Stats snapshot of every live registry pool (service introspection)."""
    with _POOLS_LOCK:
        return [dict(pool.stats) for pool in _POOLS.values()
                if not pool.closed]


atexit.register(shutdown_pools)
