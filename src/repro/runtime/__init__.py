"""Persistent parallel runtime: warm worker pools, shared-memory payloads
and the work-stealing chunk scheduler behind the ``pool=persistent`` knob.

See :mod:`repro.runtime.pool` for the pool itself,
:mod:`repro.runtime.scheduler` for chunk construction and
:mod:`repro.runtime.shm` for the zero-copy pattern transport.
"""

from repro.runtime.pool import (DEFAULT_JOB_CACHE, DEFAULT_NETLIST_CACHE,
                                POOL_MODES, PoolClosedError, WorkerPool,
                                WorkerTaskError, content_key, get_pool,
                                pool_stats, resolve_pool_mode,
                                shutdown_pools)
from repro.runtime.scheduler import (MONSTER_RATIO, build_chunks,
                                     default_chunk_size)
from repro.runtime.shm import (ShmPatterns, ShmWindows, share_patterns,
                               share_windows, shared_memory_available)

__all__ = [
    "DEFAULT_JOB_CACHE",
    "DEFAULT_NETLIST_CACHE",
    "MONSTER_RATIO",
    "POOL_MODES",
    "PoolClosedError",
    "ShmPatterns",
    "ShmWindows",
    "WorkerPool",
    "WorkerTaskError",
    "build_chunks",
    "content_key",
    "default_chunk_size",
    "get_pool",
    "pool_stats",
    "resolve_pool_mode",
    "share_patterns",
    "share_windows",
    "shared_memory_available",
    "shutdown_pools",
]
