"""Cone-affine chunk construction for the work-stealing fault scheduler.

The static partitioner (:func:`repro.simulation.sharded.partition_faults`)
cuts the population into one slice per worker before the run starts; a
worker that draws a monster cone then strands the rest of the pool behind
it.  The pooled paths instead cut the population into many *small* chunks
pulled dynamically from the parent's deque (:mod:`repro.runtime.pool`), so
load balance emerges at runtime:

- faults sharing a fanout cone stay in one chunk (cone affinity — the
  workers' per-window good-machine memo and cone walks stay hot);
- monster-cone faults (estimated cost >= :data:`MONSTER_RATIO` x the mean)
  become singleton chunks scheduled *first*, longest-processing-time-first
  at chunk granularity, so the tail of the round is made of cheap chunks;
- everything is deterministic: identical inputs produce identical chunks
  in an identical dispatch order, and each fault lives in exactly one
  chunk, which is what keeps pooled verdicts byte-identical to serial no
  matter which worker steals which chunk.

Chunks are tuples of *positions* into the caller's fault list, ascending
within each chunk (matching the shard convention).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.faults.models import Fault
from repro.netlist.compiled import CompiledNetlist, get_compiled
from repro.netlist.module import Netlist
from repro.simulation.fault_sim import resolve_site

#: A fault whose estimated per-fault cost is this many times the population
#: mean is scheduled as its own singleton chunk, ahead of everything else.
MONSTER_RATIO = 8


def default_chunk_size(workers: int, n_items: int) -> int:
    """Chunk granularity: ~16 chunks per worker, clamped to [1, 64].

    Small enough that stealing can rebalance a skewed round, large enough
    that per-task dispatch overhead stays negligible next to simulation.
    """
    if n_items <= 0:
        return 1
    return max(1, min(64, math.ceil(n_items / (max(1, int(workers)) * 16))))


def build_chunks(netlist: Netlist, faults: Iterable[Fault],
                 chunk_size: int,
                 compiled: Optional[CompiledNetlist] = None
                 ) -> List[Tuple[int, ...]]:
    """Cut ``faults`` into cone-affine chunks in steal-dispatch order.

    Returns position tuples into the input order; the list order *is* the
    dispatch order (monster singletons first, then packed chunks by
    descending estimated cost).  Every position appears in exactly one
    chunk.
    """
    from repro.simulation.sharded import cone_representative

    fault_list = list(faults)
    if not fault_list:
        return []
    if compiled is None:
        compiled = get_compiled(netlist)
    chunk_size = max(1, int(chunk_size))

    sizes = compiled.fanout_cone_sizes()
    groups: dict = {}
    per_fault_cost: dict = {}
    for position, fault in enumerate(fault_list):
        rep = cone_representative(compiled, resolve_site(compiled, fault))
        groups.setdefault(rep, []).append(position)
        if rep not in per_fault_cost:
            per_fault_cost[rep] = sizes[rep] + 1 if rep >= 0 else 1

    mean_cost = sum(per_fault_cost[rep] * len(members)
                    for rep, members in groups.items()) / len(fault_list)

    monsters: List[Tuple[int, int, int]] = []  # (cost, rep, position)
    rest: List[Tuple[int, int, List[int]]] = []  # (group cost, rep, members)
    for rep, members in sorted(groups.items()):
        cost = per_fault_cost[rep]
        if cost >= MONSTER_RATIO * max(mean_cost, 1e-9):
            monsters.extend((cost, rep, position) for position in members)
        else:
            rest.append((cost * len(members), rep, members))

    monsters.sort(key=lambda item: (-item[0], item[1], item[2]))
    chunks: List[Tuple[int, ...]] = [(position,)
                                     for _, _, position in monsters]

    # Pack the remaining cone groups whole into <= chunk_size-fault chunks,
    # heaviest group first into the lightest chunk with room (LPT); a group
    # larger than a chunk splits into consecutive runs.
    rest.sort(key=lambda item: (-item[0], item[1]))
    packed: List[List] = []  # [cost, positions]
    for group_cost, rep, members in rest:
        if len(members) > chunk_size:
            for offset in range(0, len(members), chunk_size):
                piece = members[offset:offset + chunk_size]
                packed.append([per_fault_cost[rep] * len(piece), piece])
            continue
        best = None
        for entry in packed:
            if (len(entry[1]) + len(members) <= chunk_size
                    and (best is None or entry[0] < best[0])):
                best = entry
        if best is None:
            packed.append([group_cost, list(members)])
        else:
            best[0] += group_cost
            best[1] = best[1] + members

    packed.sort(key=lambda entry: (-entry[0], entry[1]))
    for _, positions in packed:
        chunks.append(tuple(sorted(positions)))
    return chunks
