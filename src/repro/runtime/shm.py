"""Zero-copy shared-memory transport for bulky worker-pool payloads.

The persistent pool (:mod:`repro.runtime.pool`) installs job state into
workers once per content key.  For the numpy kernel the dominant payload
is the pattern data — mission-pattern planes
(:attr:`repro.simulation.sharded._PlaneSimJob.patterns`, lists of
``{net: logic value}`` mappings) or packed word windows
(:attr:`repro.simulation.sharded._WordGradeJob.windows`, ``(words,
n_patterns)`` pairs).  This module packs either shape into one
``multiprocessing.shared_memory`` segment as a dense matrix; only the
segment descriptor (name, shape, column names) crosses the pipe.  The
worker attaches lazily and rebuilds per-window mappings on demand, so a
multi-megabyte pattern set is shipped to N workers with one copy total
instead of N pickled copies.

Everything degrades gracefully: if numpy is unavailable, the pattern
shapes are ragged (per-pattern key sets differ), or a platform has no
shared memory, the callers fall back to plain pickling — the verdicts are
identical either way, only the transport differs.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple


def _numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised on no-numpy CI legs
        return None
    return numpy


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` and numpy are usable."""
    if _numpy() is None:
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all supported pythons have it
        return False
    return True


def _attach(name: str):
    """Attach to an existing segment without adopting its lifetime.

    The parent created (and will unlink) the segment; the attaching worker
    must not register it with a resource tracker at all — a spawn worker's
    own tracker would unlink it when the worker dies, and a fork worker
    shares the parent's tracker, where an extra register/unregister pair
    corrupts the parent's bookkeeping.  Registration is suppressed for the
    duration of the attach (Python 3.13's ``track=False`` is not available
    on 3.10–3.12).
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _skip_shared_memory(name_, rtype):
        if rtype != "shared_memory":
            original(name_, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


class _SharedMatrix:
    """One owned-or-attached shared-memory matrix with named columns.

    Pickles as its descriptor only.  The creating side owns the segment
    and unlinks it when released (or garbage-collected); attached sides
    just close their mapping.
    """

    def __init__(self, array, names: Tuple[str, ...], dtype: str) -> None:
        from multiprocessing import shared_memory

        self.names = names
        self.shape = tuple(array.shape)
        self.dtype = dtype
        self._segment = shared_memory.SharedMemory(create=True,
                                                   size=max(1, array.nbytes))
        self._owner = True
        np = _numpy()
        view = np.ndarray(self.shape, dtype=dtype, buffer=self._segment.buf)
        view[...] = array
        self._view = view

    # -- pickling: descriptor only ------------------------------------- #
    def __getstate__(self):
        return {"names": self.names, "shape": self.shape,
                "dtype": self.dtype, "segment_name": self._segment.name}

    def __setstate__(self, state):
        self.names = state["names"]
        self.shape = state["shape"]
        self.dtype = state["dtype"]
        self._segment_name = state["segment_name"]
        self._segment = None
        self._view = None
        self._owner = False

    def rows(self):
        if self._view is None:
            np = _numpy()
            if np is None:
                raise RuntimeError(
                    "shared-memory payload needs numpy on the worker side")
            self._segment = _attach(self._segment_name)
            self._view = np.ndarray(self.shape, dtype=self.dtype,
                                    buffer=self._segment.buf)
        return self._view

    def release(self) -> None:
        segment, self._segment, self._view = self._segment, None, None
        if segment is None:
            return
        try:
            segment.close()
            if self._owner:
                segment.unlink()
        except Exception:  # noqa: BLE001 - already gone is fine
            pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        self.release()


class ShmPatterns:
    """Shared-memory view of a pattern-plane list (``_PlaneSimJob.patterns``).

    Behaves like the original ``List[Mapping[str, int]]`` for the accesses
    the job performs: ``len()``, integer indexing and slicing, each access
    rebuilding plain dicts from the dense matrix.
    """

    def __init__(self, matrix: _SharedMatrix, length: int) -> None:
        self._matrix = matrix
        self._length = length

    def __len__(self) -> int:
        return self._length

    def _row(self, index: int) -> Mapping[str, int]:
        rows = self._matrix.rows()
        return dict(zip(self._matrix.names, rows[index].tolist()))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._row(i)
                    for i in range(*index.indices(self._length))]
        return self._row(index)

    def release(self) -> None:
        self._matrix.release()


class ShmWindows:
    """Shared-memory view of packed word windows (``_WordGradeJob.windows``).

    Mirrors the original ``List[Tuple[Mapping[str, int], int]]`` accesses:
    ``len()`` and ``windows[i] -> (words, n_patterns)``.
    """

    def __init__(self, matrix: _SharedMatrix,
                 counts: Tuple[int, ...]) -> None:
        self._matrix = matrix
        self.counts = counts

    def __len__(self) -> int:
        return len(self.counts)

    def __getitem__(self, index: int):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self.counts)))]
        rows = self._matrix.rows()
        words = dict(zip(self._matrix.names, rows[index].tolist()))
        return words, self.counts[index]

    def release(self) -> None:
        self._matrix.release()


def share_patterns(patterns: Sequence[Mapping[str, int]]
                   ) -> Optional[ShmPatterns]:
    """Pack pattern planes into one shared segment; None -> pickle fallback.

    Requires numpy, a non-empty pattern list and one uniform key set (the
    generators produce exactly that; a ragged list falls back).  Logic
    values are the plain ints 0/1/2 (X), so an int8 matrix is lossless.
    """
    np = _numpy()
    if np is None or not patterns:
        return None
    names = tuple(patterns[0])
    name_set = frozenset(names)
    rows: List[List[int]] = []
    try:
        for pattern in patterns:
            if frozenset(pattern) != name_set:
                return None
            rows.append([pattern[name] for name in names])
        matrix = _SharedMatrix(np.array(rows, dtype="int8"), names, "int8")
    except (OSError, ValueError, TypeError, OverflowError):
        return None
    return ShmPatterns(matrix, len(patterns))


def share_windows(windows: Sequence[Tuple[Mapping[str, int], int]]
                  ) -> Optional[ShmWindows]:
    """Pack word windows into one shared segment; None -> pickle fallback.

    Packed words are at most 64 bits wide (the engines' word size), so a
    uint64 matrix is lossless; ragged key sets fall back to pickling.
    """
    np = _numpy()
    if np is None or not windows:
        return None
    names = tuple(windows[0][0])
    name_set = frozenset(names)
    rows = []
    counts = []
    try:
        for words, n_patterns in windows:
            if frozenset(words) != name_set:
                return None
            rows.append([words[name] for name in names])
            counts.append(int(n_patterns))
        matrix = _SharedMatrix(np.array(rows, dtype="uint64"), names,
                               "uint64")
    except (OSError, ValueError, TypeError, OverflowError):
        return None
    return ShmWindows(matrix, tuple(counts))
