"""Dependency-resolving, optionally concurrent analysis-pass pipeline.

A :class:`Pipeline` owns an ordered set of analysis passes.  At run time it

1. seeds a :class:`~repro.pipeline.context.PipelineContext` with the target
   netlist, memory map, configuration and optional restricted fault universe;
2. executes the passes — serially in topological order, or concurrently on a
   thread pool, submitting each pass the moment its required artifacts exist
   (after ``baseline`` the four paper sources only share read-only inputs);
3. records a per-pass runtime and a :class:`PassEvent` trail;
4. attributes every identified fault to its *first* source in the paper's
   fixed order (scan → debug control → debug observe → memory map), so the
   Table I counts are identical no matter how the passes were scheduled;
5. assembles the same :class:`~repro.core.results.OnlineUntestableReport`
   the legacy :class:`~repro.core.flow.OnlineUntestableFlow` produced.

Pass selection is composable: hand :class:`Pipeline` pass names (resolved
through the registry, with transitive dependencies pulled in automatically)
or pass objects, or use the fluent :class:`PipelineBuilder`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.core.results import (FlowConfig, OnlineUntestableReport,
                                SourceSummary)
from repro.faults.categories import PAPER_SOURCE_ORDER
from repro.faults.fault import StuckAtFault
from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist
from repro.pipeline.base import AnalysisPass, PassResult
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.context import SEED_ARTIFACTS, PipelineContext
from repro.pipeline.passes import (LEGACY_RUNTIME_KEYS, REPORT_DETAIL_FIELDS,
                                   default_pass_names)
from repro.pipeline.registry import DEFAULT_REGISTRY, PassRegistry


class PipelineError(RuntimeError):
    """Unresolvable pass selection or a pass failure."""


class DependencyCycleError(PipelineError):
    """The requires/provides graph of the selected passes has a cycle."""


@dataclass
class PassEvent:
    """One scheduling decision: a pass completed, was skipped, or replayed."""

    pass_name: str
    status: str                     # "completed" | "skipped" | "cached"
    runtime_seconds: float = 0.0
    reason: Optional[str] = None


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    context: PipelineContext
    results: Dict[str, PassResult] = field(default_factory=dict)
    runtimes: Dict[str, float] = field(default_factory=dict)
    events: List[PassEvent] = field(default_factory=list)
    order: List[str] = field(default_factory=list)
    report: OnlineUntestableReport = None  # filled in by Pipeline.run

    @property
    def executed(self) -> List[str]:
        return [e.pass_name for e in self.events if e.status == "completed"]

    @property
    def skipped(self) -> List[str]:
        return [e.pass_name for e in self.events if e.status == "skipped"]

    @property
    def cached(self) -> List[str]:
        return [e.pass_name for e in self.events if e.status == "cached"]


class Pipeline:
    """An ordered, dependency-resolved set of analysis passes."""

    def __init__(self, passes: Optional[Sequence[Union[str, AnalysisPass]]] = None,
                 *,
                 parallel: bool = False,
                 max_workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 registry: Optional[PassRegistry] = None,
                 jobs: Optional[int] = None,
                 shard_backend: Optional[str] = None) -> None:
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        requested = passes if passes is not None else default_pass_names()
        self.passes = self._resolve(requested)
        self.parallel = parallel
        self.max_workers = max_workers
        self.cache = cache
        #: Default fault-population shard worker count / backend, applied
        #: to runs whose FlowConfig leaves sharding at the serial default.
        self.jobs = jobs
        self.shard_backend = shard_backend
        self._pass_index = {p.name: i for i, p in enumerate(self.passes)}

    @staticmethod
    def builder(registry: Optional[PassRegistry] = None) -> "PipelineBuilder":
        return PipelineBuilder(registry=registry)

    @property
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def _resolve(self, requested: Sequence[Union[str, AnalysisPass]]
                 ) -> List[AnalysisPass]:
        selected: List[AnalysisPass] = []
        names: Set[str] = set()

        def add(pass_: AnalysisPass) -> None:
            if pass_.name not in names:
                names.add(pass_.name)
                selected.append(pass_)

        for item in requested:
            add(self.registry.get(item) if isinstance(item, str) else item)

        # Pull in transitive providers of required artifacts.
        index = 0
        while index < len(selected):
            pass_ = selected[index]
            index += 1
            for artifact in pass_.requires:
                if artifact in SEED_ARTIFACTS:
                    continue
                if any(artifact in other.provides for other in selected):
                    continue
                provider = self.registry.provider_of(artifact)
                if provider is None:
                    raise PipelineError(
                        f"no registered pass provides artifact {artifact!r} "
                        f"required by pass {pass_.name!r}")
                add(provider)

        # Each artifact must have exactly one provider within the pipeline.
        providers: Dict[str, str] = {}
        for pass_ in selected:
            for artifact in pass_.provides:
                if artifact in providers:
                    raise PipelineError(
                        f"artifact {artifact!r} is provided by both "
                        f"{providers[artifact]!r} and {pass_.name!r}")
                providers[artifact] = pass_.name

        return self._topological_order(selected, providers)

    @staticmethod
    def _topological_order(selected: List[AnalysisPass],
                           providers: Dict[str, str]) -> List[AnalysisPass]:
        by_name = {p.name: p for p in selected}
        dependencies: Dict[str, Set[str]] = {
            p.name: {providers[a] for a in p.requires if a in providers}
            for p in selected
        }
        ordered: List[AnalysisPass] = []
        placed: Set[str] = set()
        while len(ordered) < len(selected):
            ready = [p for p in selected
                     if p.name not in placed
                     and dependencies[p.name] <= placed]
            if not ready:
                stuck = sorted(set(by_name) - placed)
                raise DependencyCycleError(
                    f"dependency cycle among passes: {', '.join(stuck)}")
            for pass_ in ready:      # selection order keeps this deterministic
                ordered.append(pass_)
                placed.add(pass_.name)
        return ordered

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, target: Union["SoC", Netlist],  # noqa: F821
            *,
            config: Optional[FlowConfig] = None,
            memory_map: Optional[MemoryMap] = None,
            faults: Optional[Iterable[StuckAtFault]] = None) -> PipelineResult:
        """Run the passes on a SoC or bare netlist and build the report."""
        netlist, memory_map = _split_target(target, memory_map)
        config = self._apply_shard_defaults(config)
        ctx = PipelineContext(netlist, config=config, memory_map=memory_map,
                              initial_faults=faults, cache=self.cache)
        result = PipelineResult(context=ctx, order=self.pass_names)

        if self.parallel:
            self._run_parallel(ctx, result)
        else:
            self._run_serial(ctx, result)

        result.report = self._build_report(ctx, result)
        return result

    def _apply_shard_defaults(self,
                              config: Optional[FlowConfig]) -> Optional[FlowConfig]:
        """Fold the pipeline's jobs/backend defaults into a run's config.

        A config that explicitly requests sharding (``jobs != 1``) wins
        over the pipeline default.
        """
        if self.jobs is None and self.shard_backend is None:
            return config
        from dataclasses import replace

        config = config if config is not None else FlowConfig()
        updates = {}
        if self.jobs is not None and config.jobs == 1:
            updates["jobs"] = self.jobs
        if self.shard_backend is not None and config.shard_backend is None:
            updates["shard_backend"] = self.shard_backend
        return replace(config, **updates) if updates else config

    def _run_serial(self, ctx: PipelineContext, result: PipelineResult) -> None:
        for pass_ in self.passes:
            missing = [a for a in pass_.requires
                       if a not in SEED_ARTIFACTS and not ctx.has(a)]
            if missing:
                result.events.append(PassEvent(
                    pass_.name, "skipped",
                    reason=f"missing artifacts: {', '.join(missing)}"))
                continue
            self._execute(pass_, ctx, result)

    def _run_parallel(self, ctx: PipelineContext, result: PipelineResult) -> None:
        pending: Dict[str, AnalysisPass] = {p.name: p for p in self.passes}
        finished: Set[str] = set()
        workers = self.max_workers or min(8, max(2, len(self.passes)))
        failure: List[BaseException] = []

        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {}
            while pending or futures:
                # Submit every pass whose inputs exist; skip the doomed ones
                # (their providers finished without producing the artifact).
                progressed = True
                while progressed:
                    progressed = False
                    for name in list(pending):
                        pass_ = pending[name]
                        missing = [a for a in pass_.requires
                                   if a not in SEED_ARTIFACTS and not ctx.has(a)]
                        if not missing:
                            if not _applicable(pass_, ctx):
                                del pending[name]
                                finished.add(name)
                                result.events.append(PassEvent(
                                    name, "skipped", reason="not applicable"))
                                progressed = True
                                continue
                            del pending[name]
                            futures[pool.submit(
                                self._execute_body, pass_, ctx)] = pass_
                            progressed = True
                        elif all(self._provider_finished(a, finished)
                                 for a in missing):
                            del pending[name]
                            finished.add(name)
                            result.events.append(PassEvent(
                                name, "skipped",
                                reason=f"missing artifacts: {', '.join(missing)}"))
                            progressed = True
                if not futures:
                    break
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    pass_ = futures.pop(future)
                    try:
                        status, pass_result, runtime = future.result()
                    except BaseException as exc:  # surface after drain
                        failure.append(exc)
                        finished.add(pass_.name)
                        continue
                    self._record(pass_, status, pass_result, runtime,
                                 ctx, result)
                    finished.add(pass_.name)
        if failure:
            raise failure[0]

    def _provider_finished(self, artifact: str, finished: Set[str]) -> bool:
        for pass_ in self.passes:
            if artifact in pass_.provides:
                return pass_.name in finished
        return True

    # ------------------------------------------------------------------ #
    def _execute(self, pass_: AnalysisPass, ctx: PipelineContext,
                 result: PipelineResult) -> None:
        if not _applicable(pass_, ctx):
            result.events.append(PassEvent(pass_.name, "skipped",
                                           reason="not applicable"))
            return
        status, pass_result, runtime = self._execute_body(pass_, ctx)
        self._record(pass_, status, pass_result, runtime, ctx, result)

    def _execute_body(self, pass_: AnalysisPass, ctx: PipelineContext):
        """Run (or replay from cache) one pass; returns (status, result, s)."""
        started = time.perf_counter()

        def compute() -> PassResult:
            pass_result = pass_.run(ctx)
            if not isinstance(pass_result, PassResult):
                raise PipelineError(
                    f"pass {pass_.name!r} returned "
                    f"{type(pass_result).__name__}, expected PassResult")
            missing = [a for a in pass_.provides
                       if a not in pass_result.artifacts]
            if missing:
                raise PipelineError(
                    f"pass {pass_.name!r} declared but did not provide "
                    f"artifacts: {', '.join(missing)}")
            return pass_result

        if self.cache is not None and getattr(pass_, "cacheable", True):
            # Single-flighted: concurrent runs of the same (signature,
            # facets, pass) — e.g. two sweep scenarios sharing a netlist —
            # coalesce into one computation; the others replay it.
            pass_result, hit = self.cache.get_or_compute(
                ctx.cache_key(pass_), compute,
                persist=getattr(pass_, "persist", True))
            status = "cached" if hit else "completed"
        else:
            pass_result, status = compute(), "completed"
        return status, pass_result, time.perf_counter() - started

    @staticmethod
    def _record(pass_: AnalysisPass, status: str, pass_result: PassResult,
                runtime: float, ctx: PipelineContext,
                result: PipelineResult) -> None:
        for key, value in pass_result.artifacts.items():
            ctx.set(key, value)
        result.results[pass_.name] = pass_result
        result.runtimes[pass_.name] = runtime
        result.events.append(PassEvent(pass_.name, status,
                                       runtime_seconds=runtime))

    # ------------------------------------------------------------------ #
    # attribution & report assembly
    # ------------------------------------------------------------------ #
    def _build_report(self, ctx: PipelineContext,
                      result: PipelineResult) -> OnlineUntestableReport:
        fault_universe = ctx.get("fault_universe") or []
        fault_set = ctx.get("fault_set") or set(fault_universe)
        baseline = ctx.get("baseline_untestable") or set()

        report = OnlineUntestableReport(
            netlist_name=ctx.netlist.name,
            total_faults=len(fault_universe),
            fault_model=ctx.fault_model.name,
            baseline_untestable=set(baseline),
        )

        source_passes = [p for p in self.passes
                         if p.source is not None
                         and p.name in result.results
                         and result.results[p.name].identified is not None]

        def attribution_rank(pass_: AnalysisPass):
            try:
                return (0, PAPER_SOURCE_ORDER.index(pass_.source))
            except ValueError:
                # Custom sources attribute after the paper's, pipeline order.
                return (1, self._pass_index[pass_.name])

        attributed: Set[StuckAtFault] = set(baseline)
        for pass_ in sorted(source_passes, key=attribution_rank):
            identified = result.results[pass_.name].identified & fault_set
            new = identified - attributed
            attributed |= new
            report.sources.append(SourceSummary(
                source=pass_.source, identified=identified, attributed=new,
                runtime_seconds=result.runtimes.get(pass_.name, 0.0)))

        for pass_name, attr in REPORT_DETAIL_FIELDS.items():
            if pass_name in result.results:
                setattr(report, attr, result.results[pass_name].details)

        static_proofs = ctx.get("static_proofs")
        if static_proofs:
            counts: Dict[str, int] = {}
            for proof in static_proofs.values():
                counts[proof.category] = counts.get(proof.category, 0) + 1
            report.static_proof_counts = counts

        report.runtimes = {
            LEGACY_RUNTIME_KEYS.get(name, name): runtime
            for name, runtime in result.runtimes.items()
        }
        return report


class PipelineBuilder:
    """Fluent construction of a :class:`Pipeline`.

    ::

        pipeline = (Pipeline.builder()
                    .with_default_passes()
                    .parallel(4)
                    .cached()
                    .build())
    """

    def __init__(self, registry: Optional[PassRegistry] = None) -> None:
        self._registry = registry
        self._passes: List[Union[str, AnalysisPass]] = []
        self._parallel = False
        self._max_workers: Optional[int] = None
        self._cache: Optional[ArtifactCache] = None

    def with_pass(self, pass_: Union[str, AnalysisPass]) -> "PipelineBuilder":
        self._passes.append(pass_)
        return self

    def with_passes(self, *passes: Union[str, AnalysisPass]) -> "PipelineBuilder":
        self._passes.extend(passes)
        return self

    def with_default_passes(self,
                            config: Optional[FlowConfig] = None
                            ) -> "PipelineBuilder":
        """The paper's §4 flow (honouring a FlowConfig's run_* switches)."""
        self._passes.extend(default_pass_names(config))
        return self

    def parallel(self, max_workers: Optional[int] = None) -> "PipelineBuilder":
        self._parallel = True
        self._max_workers = max_workers
        return self

    def serial(self) -> "PipelineBuilder":
        self._parallel = False
        self._max_workers = None
        return self

    def cached(self, cache: Optional[ArtifactCache] = None) -> "PipelineBuilder":
        self._cache = cache if cache is not None else ArtifactCache()
        return self

    def build(self) -> Pipeline:
        passes = self._passes or None
        return Pipeline(passes, parallel=self._parallel,
                        max_workers=self._max_workers, cache=self._cache,
                        registry=self._registry)


def _applicable(pass_: AnalysisPass, ctx: PipelineContext) -> bool:
    checker = getattr(pass_, "applicable", None)
    return bool(checker(ctx)) if callable(checker) else True


def _split_target(target, memory_map: Optional[MemoryMap]):
    """Mirror the legacy flow's SoC/Netlist target handling."""
    from repro.soc.soc_builder import SoC

    if isinstance(target, SoC):
        return target.cpu, memory_map or target.memory_map
    if isinstance(target, Netlist):
        return target, memory_map or target.annotations.get("memory_map")
    raise TypeError(
        f"analysis target must be a SoC or Netlist, got {type(target).__name__}")
