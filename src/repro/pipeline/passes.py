"""The paper's §4 flow expressed as registered pipeline passes.

Two foundation passes build the shared artifacts every source needs:

* ``fault_list`` — the stuck-at fault universe of the target netlist (or
  the caller's restricted universe);
* ``baseline`` — the faults already structurally untestable *before* any
  circuit manipulation (the "Original" row of Table I).

Four source passes migrate the legacy analyses; each claims a set of
identified faults that the pipeline attributes deterministically in the
paper's order (scan → debug control → debug observe → memory map), so the
per-source counts reproduce Table I exactly no matter how the passes were
scheduled:

* ``scan_analysis`` (§3.1) — direct structural prune of the scan circuitry;
* ``debug_control`` (§3.2.1) — debug control inputs tied to mission constants;
* ``debug_observe`` (§3.2.2) — debug observation buses left floating;
* ``memory_analysis`` (§3.3) — address bits frozen by the mission memory map.

After ``baseline`` the four sources only share read-only inputs, which is
what lets the parallel pipeline run them concurrently.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.atpg.engine import AtpgEffort
from repro.core.debug_control import (compute_baseline_untestable,
                                      identify_debug_control_untestable)
from repro.core.debug_observe import identify_debug_observe_untestable
from repro.core.memory_analysis import identify_memory_map_untestable
from repro.core.results import FlowConfig
from repro.core.scan_analysis import identify_scan_untestable
from repro.faults.categories import OnlineUntestableSource
from repro.faults.faultlist import generate_fault_list
from repro.pipeline.base import PassResult
from repro.pipeline.context import PipelineContext
from repro.pipeline.registry import analysis_pass

#: Pass name -> key used in ``OnlineUntestableReport.runtimes`` (kept for
#: backward compatibility with the legacy flow's phase names).
LEGACY_RUNTIME_KEYS: Dict[str, str] = {
    "fault_list": "fault_list",
    "baseline": "baseline",
    "scan_analysis": "scan",
    "debug_control": "debug_control",
    "debug_observe": "debug_observe",
    "memory_analysis": "memory_map",
}

#: Pass name -> ``OnlineUntestableReport`` attribute holding its details.
REPORT_DETAIL_FIELDS: Dict[str, str] = {
    "scan_analysis": "scan_result",
    "debug_control": "debug_control_result",
    "debug_observe": "debug_observe_result",
    "memory_analysis": "memory_result",
}


def default_pass_names(config: Optional[FlowConfig] = None) -> list:
    """The pass selection matching a legacy :class:`FlowConfig`."""
    cfg = config or FlowConfig()
    names = ["fault_list"]
    if cfg.effort is AtpgEffort.FULL and getattr(cfg, "static_prune", True):
        names.append("static_analysis")
    names.append("baseline")
    if cfg.run_scan:
        names.append("scan_analysis")
    if cfg.run_debug_control:
        names.append("debug_control")
    if cfg.run_debug_observe:
        names.append("debug_observe")
    if cfg.run_memory_map:
        names.append("memory_analysis")
    return names


# --------------------------------------------------------------------- #
# foundation passes
# --------------------------------------------------------------------- #
@analysis_pass("fault_list", provides=("fault_universe", "fault_set"),
               cache_facets=("model", "faults"))
def fault_list_pass(ctx: PipelineContext) -> PassResult:
    """Enumerate the configured fault model's universe (or adopt the
    caller's)."""
    universe = (list(ctx.initial_faults) if ctx.initial_faults is not None
                else generate_fault_list(ctx.netlist,
                                         model=ctx.fault_model).faults())
    return PassResult(artifacts={
        "fault_universe": universe,
        "fault_set": set(universe),
    })


@analysis_pass("static_analysis", requires=("fault_universe",),
               provides=("static_analysis", "static_proofs"),
               cache_facets=("model",), persist=False)
def static_analysis_pass(ctx: PipelineContext) -> PassResult:
    """Build the per-signature static handle and prove what it can.

    The handle itself (SCOAP tables, learned implications, dominator
    chains) is memoised on the compiled netlist, so this pass mainly
    exists to surface the per-fault proof objects as a pipeline artifact
    and count them into the report.  Its cache key carries only the
    fault-model facet: the proofs read the netlist structure alone, never
    the ATPG effort or the memory map.
    """
    from repro.analysis import get_static_analysis

    static = get_static_analysis(ctx.netlist)
    proofs = static.prove_all(ctx.fault_universe)
    return PassResult(artifacts={"static_analysis": static,
                                 "static_proofs": proofs},
                      details=proofs)


@analysis_pass("baseline", requires=("fault_universe",),
               provides=("baseline_untestable",),
               cache_facets=("model", "effort", "faults", "static", "atpg"))
def baseline_pass(ctx: PipelineContext) -> PassResult:
    """Faults untestable before manipulation — Table I's "Original" row."""
    baseline = compute_baseline_untestable(
        ctx.netlist, ctx.fault_universe, ctx.effort,
        jobs=ctx.jobs, backend=ctx.shard_backend,
        static_prune=ctx.static_prune, static_learning=ctx.static_learning,
        kernel=ctx.kernel,
        atpg_backend=ctx.atpg_backend, atpg_seed=ctx.atpg_seed,
        pool=ctx.pool, chunk=ctx.chunk)
    return PassResult(artifacts={"baseline_untestable": baseline})


# --------------------------------------------------------------------- #
# source passes (paper §3.1–§3.3)
# --------------------------------------------------------------------- #
@analysis_pass("scan_analysis", source=OnlineUntestableSource.SCAN,
               requires=("fault_set",), provides=("scan_result",),
               cache_facets=("model",))
def scan_analysis_pass(ctx: PipelineContext) -> PassResult:
    """§3.1 — prune the scan-chain circuitry faults (no ATPG required).

    The identification itself only reads the netlist, but attribution of
    the identified faults needs the fault universe, so ``fault_set`` is a
    declared dependency — selecting this pass alone still pulls in
    ``fault_list`` and produces a meaningful report.  Because it reads the
    netlist alone, its cache key carries a single configuration facet —
    the fault model, which decides what faults the traced sites contribute
    — so every scenario variant sharing netlist and model replays it for
    free.
    """
    scan = identify_scan_untestable(ctx.netlist, model=ctx.fault_model)
    return PassResult(artifacts={"scan_result": scan},
                      identified=scan.untestable, details=scan)


@analysis_pass("debug_control", source=OnlineUntestableSource.DEBUG_CONTROL,
               requires=("fault_universe", "baseline_untestable"),
               provides=("debug_control_result",),
               cache_facets=("model", "effort", "faults", "static", "atpg"))
def debug_control_pass(ctx: PipelineContext) -> PassResult:
    """§3.2.1 — tie the debug control inputs to their mission constants."""
    ctrl = identify_debug_control_untestable(
        ctx.netlist, faults=ctx.fault_universe,
        baseline_untestable=ctx.baseline_untestable, effort=ctx.effort,
        jobs=ctx.jobs, backend=ctx.shard_backend,
        static_prune=ctx.static_prune, static_learning=ctx.static_learning,
        kernel=ctx.kernel,
        atpg_backend=ctx.atpg_backend, atpg_seed=ctx.atpg_seed,
        pool=ctx.pool, chunk=ctx.chunk)
    return PassResult(artifacts={"debug_control_result": ctrl},
                      identified=ctrl.newly_untestable, details=ctrl)


@analysis_pass("debug_observe", source=OnlineUntestableSource.DEBUG_OBSERVE,
               requires=("fault_universe", "baseline_untestable"),
               provides=("debug_observe_result",),
               cache_facets=("model", "effort", "faults", "static", "atpg"))
def debug_observe_pass(ctx: PipelineContext) -> PassResult:
    """§3.2.2 — float the debug-only observation buses."""
    observe = identify_debug_observe_untestable(
        ctx.netlist, faults=ctx.fault_universe,
        baseline_untestable=ctx.baseline_untestable, effort=ctx.effort,
        jobs=ctx.jobs, backend=ctx.shard_backend,
        static_prune=ctx.static_prune, static_learning=ctx.static_learning,
        kernel=ctx.kernel,
        atpg_backend=ctx.atpg_backend, atpg_seed=ctx.atpg_seed,
        pool=ctx.pool, chunk=ctx.chunk)
    return PassResult(artifacts={"debug_observe_result": observe},
                      identified=observe.newly_untestable, details=observe)


@analysis_pass("memory_analysis", source=OnlineUntestableSource.MEMORY_MAP,
               requires=("fault_universe", "baseline_untestable"),
               provides=("memory_result",),
               when=lambda ctx: ctx.memory_map is not None,
               cache_facets=("model", "effort", "ties", "memmap", "faults",
                             "static", "atpg"))
def memory_analysis_pass(ctx: PipelineContext) -> PassResult:
    """§3.3 — freeze the address bits the mission memory map never toggles."""
    memory = identify_memory_map_untestable(
        ctx.netlist, memory_map=ctx.memory_map, faults=ctx.fault_universe,
        baseline_untestable=ctx.baseline_untestable, effort=ctx.effort,
        tie_flop_outputs=ctx.config.tie_flop_outputs,
        tie_flop_inputs=ctx.config.tie_flop_inputs,
        jobs=ctx.jobs, backend=ctx.shard_backend,
        static_prune=ctx.static_prune, static_learning=ctx.static_learning,
        kernel=ctx.kernel,
        atpg_backend=ctx.atpg_backend, atpg_seed=ctx.atpg_seed,
        pool=ctx.pool, chunk=ctx.chunk)
    return PassResult(artifacts={"memory_result": memory},
                      identified=memory.newly_untestable, details=memory)
