"""The typed artifact store passes read from and publish into.

A :class:`PipelineContext` is created per pipeline run.  It seeds the run
inputs (netlist, memory map, flow configuration, an optional restricted
fault universe), collects every artifact passes publish, and — when the
pipeline owns an :class:`repro.pipeline.cache.ArtifactCache` — computes
the cache key under which each pass's result is memoised.

Artifact access is thread-safe: independent passes run concurrently in
the parallel pipeline and publish their artifacts from worker threads.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.results import FlowConfig
from repro.faults.models import Fault
from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist
from repro.pipeline.cache import (ArtifactCache, CacheKey,
                                  fault_restriction_key, memory_map_key,
                                  netlist_signature)


class MissingArtifactError(KeyError):
    """A pass asked for an artifact nothing has produced."""

    def __init__(self, key: str, available: Iterable[str]) -> None:
        listed = ", ".join(sorted(available)) or "<none>"
        super().__init__(
            f"artifact {key!r} is not in the pipeline context "
            f"(available: {listed})")
        self.key = key


#: Artifact keys seeded by the context itself (no pass provides them).
SEED_ARTIFACTS = ("netlist", "memory_map", "config")

#: The configuration facets a pass result can depend on, in canonical key
#: order.  Passes narrow their cache key to a subset via ``cache_facets``
#: (see :func:`repro.pipeline.registry.analysis_pass`): an effort-blind
#: pass such as ``scan_analysis`` then replays from cache across scenario
#: variants that only change the ATPG effort or the memory map.  ``model``
#: is the fault model: every pass that touches the fault universe keys on
#: it, so stuck-at and transition runs of one netlist never share results.
CONFIG_FACETS = ("model", "effort", "ties", "memmap", "faults", "static",
                 "atpg")


class PipelineContext:
    """Run-scoped artifact store with typed accessors for the seed inputs."""

    def __init__(self, netlist: Netlist,
                 config: Optional[FlowConfig] = None,
                 memory_map: Optional[MemoryMap] = None,
                 initial_faults: Optional[Iterable[Fault]] = None,
                 cache: Optional[ArtifactCache] = None) -> None:
        self.netlist = netlist
        self.config = config or FlowConfig()
        self.memory_map = memory_map
        self.initial_faults: Optional[List[Fault]] = (
            list(initial_faults) if initial_faults is not None else None)
        self.cache = cache
        self._artifacts: Dict[str, Any] = {
            "netlist": netlist,
            "memory_map": memory_map,
            "config": self.config,
        }
        self._lock = threading.Lock()
        self._signature: Optional[str] = None
        self._facet_fragments: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------ #
    # artifact store
    # ------------------------------------------------------------------ #
    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._artifacts

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            return self._artifacts.get(key, default)

    def require(self, key: str) -> Any:
        """Like :meth:`get` but raises :class:`MissingArtifactError`."""
        with self._lock:
            if key not in self._artifacts:
                raise MissingArtifactError(key, self._artifacts)
            return self._artifacts[key]

    def set(self, key: str, value: Any) -> None:
        with self._lock:
            self._artifacts[key] = value

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._artifacts)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._artifacts)

    # typed conveniences for the common artifacts ----------------------- #
    @property
    def effort(self):
        return self.config.effort

    @property
    def jobs(self) -> int:
        """Shard-worker count for the fault-population engines (>= 1)."""
        return max(1, getattr(self.config, "jobs", 1) or 1)

    @property
    def shard_backend(self):
        """Shard backend name (``None`` = pick the best available)."""
        return getattr(self.config, "shard_backend", None)

    @property
    def kernel(self):
        """Simulation-kernel spec (``None``/"auto" = numpy when available)."""
        return getattr(self.config, "kernel", None)

    @property
    def fault_model(self):
        """The resolved :class:`~repro.faults.models.FaultModel` of this run."""
        from repro.faults.models import resolve_fault_model

        return resolve_fault_model(getattr(self.config, "fault_model", None))

    @property
    def static_prune(self) -> bool:
        """Pre-classify statically proven faults before PODEM (FULL effort)."""
        return bool(getattr(self.config, "static_prune", True))

    @property
    def static_learning(self) -> bool:
        """Let PODEM consult the learned implications and SCOAP guidance."""
        return bool(getattr(self.config, "static_learning", True))

    @property
    def atpg_backend(self):
        """ATPG portfolio backend name (``None`` = the classic ``podem``)."""
        return getattr(self.config, "atpg_backend", None)

    @property
    def atpg_seed(self):
        """Seed override for randomized ATPG backends (``None`` = engine seed)."""
        return getattr(self.config, "atpg_seed", None)

    @property
    def pool(self):
        """Worker-pool mode for the sharded engines (``None`` = ephemeral)."""
        return getattr(self.config, "pool", None)

    @property
    def chunk(self):
        """Work-stealing chunk granularity (``None`` = auto)."""
        return getattr(self.config, "chunk", None)

    @property
    def fault_universe(self) -> List[Fault]:
        return self.require("fault_universe")

    @property
    def fault_set(self):
        return self.require("fault_set")

    @property
    def baseline_untestable(self):
        return self.require("baseline_untestable")

    # ------------------------------------------------------------------ #
    # caching
    # ------------------------------------------------------------------ #
    @property
    def compiled(self):
        """The shared :class:`~repro.netlist.compiled.CompiledNetlist` of the
        target netlist.

        Resolved through the global signature-keyed compile cache, so every
        pass of this run — and every sibling scenario of a Session sweep
        targeting a structurally identical netlist — consumes one build.
        """
        from repro.netlist.compiled import get_compiled

        return get_compiled(self.netlist)

    @property
    def signature(self) -> str:
        """Structural signature of the target netlist (computed once)."""
        if self._signature is None:
            self._signature = netlist_signature(self.netlist)
        return self._signature

    def _fragments(self) -> Dict[str, str]:
        if self._facet_fragments is None:
            cfg = self.config
            self._facet_fragments = {
                "model": f"model={self.fault_model.name}",
                "effort": f"effort={cfg.effort.name}",
                "ties": (f"tie_out={int(cfg.tie_flop_outputs)};"
                         f"tie_in={int(cfg.tie_flop_inputs)}"),
                "memmap": f"memmap={memory_map_key(self.memory_map)}",
                "faults": f"faults={fault_restriction_key(self.initial_faults)}",
                "static": (f"static=prune{int(self.static_prune)}:"
                           f"learn{int(self.static_learning)}"),
                "atpg": (f"atpg={self.atpg_backend or 'podem'}:"
                         f"{self.atpg_seed if self.atpg_seed is not None else 'engine'}"),
            }
        return self._facet_fragments

    def config_key_for(self, facets: Optional[Iterable[str]] = None) -> str:
        """The configuration key restricted to the given facets.

        ``None`` keys on every facet (the always-safe default); an explicit
        subset — canonicalised to :data:`CONFIG_FACETS` order — lets a pass
        that is blind to e.g. the ATPG effort share its cached result across
        scenario variants that only differ there.
        """
        fragments = self._fragments()
        if facets is None:
            wanted = CONFIG_FACETS
        else:
            requested = set(facets)
            unknown = requested - set(CONFIG_FACETS)
            if unknown:
                raise ValueError(
                    f"unknown cache facet(s) {sorted(unknown)}; "
                    f"known facets: {', '.join(CONFIG_FACETS)}")
            wanted = tuple(f for f in CONFIG_FACETS if f in requested)
        return ";".join(fragments[f] for f in wanted)

    @property
    def config_key(self) -> str:
        """The full configuration key (every facet that can influence a pass)."""
        return self.config_key_for(None)

    def cache_key(self, pass_: Union[str, "AnalysisPass"]) -> CacheKey:
        """Cache key for a pass — facet-restricted when the pass declares so."""
        if isinstance(pass_, str):
            return (self.signature, self.config_key, pass_)
        facets = getattr(pass_, "cache_facets", None)
        return (self.signature, self.config_key_for(facets), pass_.name)
