"""Per-pass result caching keyed on netlist signature + run configuration.

Serving many scenario variants of the same core means the expensive
artifacts (fault universe, baseline ATPG classification, per-source
analyses) are recomputed over and over.  :class:`ArtifactCache` memoises
each pass's :class:`~repro.pipeline.base.PassResult` under a key derived
from

* a structural signature of the target netlist (ports, instances,
  connectivity, tied nets — anything circuit manipulation can change),
* the run configuration that influences the analyses (ATPG effort, the
  Fig. 6 tie knobs, a restricted fault universe), and
* the pass name.

A pipeline constructed with a cache can therefore re-run on the same core
— or on a clone with the same structure — and replay every pass result
without touching the ATPG engine.
"""

from __future__ import annotations

import atexit
import hashlib
import queue
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

# The structural digest lives with the compiled-netlist IR (which keys its
# own cache on it); re-exported here because this module is its historical
# home and everything cache-related imports it from here.
from repro.netlist.compiled import netlist_signature  # noqa: F401

CacheKey = Tuple[str, str, str]  # (netlist signature, config key, pass name)


def memory_map_key(memory_map) -> str:
    """A content-based key for a memory map ('' when there is none).

    Built from the address width and the region contents, never from object
    identity: two structurally equal maps must hash the same (so scenario
    variants reuse cached results) and a different map allocated at a
    recycled address must not collide.
    """
    if memory_map is None:
        return ""
    regions = ";".join(
        f"{region.name}:{region.base}:{region.size}"
        for region in sorted(memory_map.regions,
                             key=lambda r: (r.base, r.size, r.name)))
    return f"w{memory_map.address_width}[{regions}]"


def fault_restriction_key(faults: Optional[Iterable] = None) -> str:
    """Digest of an explicitly restricted fault universe ('' = full list)."""
    if faults is None:
        return ""
    hasher = hashlib.sha256()
    # Sort on the serialized form: fault objects of different models are
    # not mutually orderable, but their strings always are.
    for fault in sorted(faults, key=str):
        hasher.update(repr(fault).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


class _StoreWriter:
    """The write-behind lane of a store-backed cache.

    Computing threads enqueue ``(key, value, on_done)`` and return to
    their caller immediately; one daemon thread serializes and publishes
    in arrival order, then runs ``on_done`` (which releases the key's
    cross-process single-flight lock, so no other process recomputes a
    value that is still in flight to disk).  :meth:`flush` blocks until
    everything enqueued so far has landed — registered via ``atexit`` so
    a process never exits with warm artifacts stuck in the queue.
    """

    def __init__(self, store) -> None:
        self._store = store
        self._queue: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-store-writer")
        self._thread.start()
        atexit.register(self.flush)

    def _run(self) -> None:
        while True:
            key, value, on_done = self._queue.get()
            try:
                self._store.put(key, value)
            except Exception:  # noqa: BLE001 — a failed write is a cold entry
                pass
            finally:
                if on_done is not None:
                    on_done()
                self._queue.task_done()

    def submit(self, key: CacheKey, value: Any, on_done=None) -> None:
        self._queue.put((key, value, on_done))

    def flush(self) -> None:
        self._queue.join()


class ArtifactCache:
    """Thread-safe LRU pass-result cache with hit/miss accounting.

    One cache may be shared by many concurrent pipeline runs — a
    :class:`repro.api.Session` hands the same instance to every scenario of
    a sweep, so a ``ThreadExecutor`` sweep replays artifacts a sibling
    scenario computed moments earlier.  The store is guarded by a lock and
    bounded: when ``max_entries`` is set, the least-recently-used entry is
    evicted on insert, so long sweeps cannot grow memory without bound.

    Because each pipeline run executes every pass at most once (and only
    publishes after running), any *hit* observed while sweeping distinct
    scenarios is by construction a replay of an artifact some earlier
    scenario produced — :meth:`repro.api.Session.sweep` snapshots
    :attr:`stats` around the sweep to report exactly that reuse.

    With a durable ``store`` (:mod:`repro.store`) attached, the cache
    becomes the hot tier of a two-level hierarchy: misses *read through*
    to the store (a warm artifact from an earlier process replays without
    recomputation and is promoted into memory), and computed values are
    *written behind* by a background thread so callers never wait on
    serialization.  ``get_or_compute`` extends its single-flight guarantee
    across processes via the store's per-key lock.  Store activity shows
    up in :attr:`stats` under ``store_*`` keys; :meth:`clear` only drops
    the in-memory tier.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 store=None) -> None:
        from repro.store import resolve_store

        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: Dict[CacheKey, threading.Event] = {}
        self.max_entries = max_entries
        self.store = resolve_store(store)
        self._writer = (_StoreWriter(self.store)
                        if self.store is not None else None)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
        if self.store is not None:
            value = self.store.get(key)
            if value is not None:
                self.put(key, value)
                return value
        return None

    def get_or_compute(self, key: CacheKey, factory,
                       persist: bool = True) -> Tuple[Any, bool]:
        """Return ``(value, was_hit)``, computing and storing on a miss.

        Concurrent callers of the same key are *single-flighted*: one
        computes, the rest block and then replay the stored value (counted
        as hits).  That keeps a thread-pool sweep from duplicating an
        expensive pass when two scenario variants sharing a netlist reach
        it simultaneously.  If the computing caller fails, one waiter takes
        over; the failure propagates to the caller that raised it.

        With a store attached the same discipline extends across
        processes: the computing thread holds the key's store lock, checks
        whether a sibling process already published the artifact (replayed
        as a hit), and otherwise computes and hands the value to the
        write-behind lane — the lock is released only once the artifact is
        durable, so concurrent processes compute each key exactly once.
        ``persist=False`` keeps a value out of the durable tier entirely
        (process-local handles that cannot or should not be serialized).
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return self._entries[key], True
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    self.misses += 1
                    break
            waiter.wait()
        try:
            if self.store is None or not persist:
                value, hit = factory(), False
            else:
                value, hit = self._compute_through_store(key, factory)
        except BaseException:
            self._finish(key)
            raise
        self.put(key, value)
        self._finish(key)
        return value, hit

    def _compute_through_store(self, key: CacheKey,
                               factory) -> Tuple[Any, bool]:
        """Read-through / write-behind miss path under the store lock."""
        lock = self.store.lock(key)
        lock.__enter__()
        try:
            stored = self.store.get(key)
            if stored is not None:
                return stored, True
            value = factory()
        except BaseException:
            lock.__exit__(None, None, None)
            raise
        # Publish asynchronously; the cross-process lock travels with the
        # write so sibling processes block until the artifact is durable
        # (then read it) instead of recomputing.
        self._writer.submit(key, value,
                            on_done=lambda: lock.__exit__(None, None, None))
        return value, False

    def _finish(self, key: CacheKey) -> None:
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def put(self, key: CacheKey, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif (self.max_entries is not None
                    and len(self._entries) >= self.max_entries):
                self._entries.popitem(last=False)  # least recently used
                self.evictions += 1
            self._entries[key] = value

    def flush(self) -> None:
        """Block until every write-behind publication has landed on disk."""
        if self._writer is not None:
            self._writer.flush()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            stats = {"entries": len(self._entries),
                     "hits": self.hits, "misses": self.misses,
                     "evictions": self.evictions}
        if self.store is not None:
            stats.update({f"store_{name}": count
                          for name, count in self.store.stats.items()})
        return stats
