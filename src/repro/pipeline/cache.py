"""Per-pass result caching keyed on netlist signature + run configuration.

Serving many scenario variants of the same core means the expensive
artifacts (fault universe, baseline ATPG classification, per-source
analyses) are recomputed over and over.  :class:`ArtifactCache` memoises
each pass's :class:`~repro.pipeline.base.PassResult` under a key derived
from

* a structural signature of the target netlist (ports, instances,
  connectivity, tied nets — anything circuit manipulation can change),
* the run configuration that influences the analyses (ATPG effort, the
  Fig. 6 tie knobs, a restricted fault universe), and
* the pass name.

A pipeline constructed with a cache can therefore re-run on the same core
— or on a clone with the same structure — and replay every pass result
without touching the ATPG engine.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

# The structural digest lives with the compiled-netlist IR (which keys its
# own cache on it); re-exported here because this module is its historical
# home and everything cache-related imports it from here.
from repro.netlist.compiled import netlist_signature  # noqa: F401

CacheKey = Tuple[str, str, str]  # (netlist signature, config key, pass name)


def memory_map_key(memory_map) -> str:
    """A content-based key for a memory map ('' when there is none).

    Built from the address width and the region contents, never from object
    identity: two structurally equal maps must hash the same (so scenario
    variants reuse cached results) and a different map allocated at a
    recycled address must not collide.
    """
    if memory_map is None:
        return ""
    regions = ";".join(
        f"{region.name}:{region.base}:{region.size}"
        for region in sorted(memory_map.regions,
                             key=lambda r: (r.base, r.size, r.name)))
    return f"w{memory_map.address_width}[{regions}]"


def fault_restriction_key(faults: Optional[Iterable] = None) -> str:
    """Digest of an explicitly restricted fault universe ('' = full list)."""
    if faults is None:
        return ""
    hasher = hashlib.sha256()
    # Sort on the serialized form: fault objects of different models are
    # not mutually orderable, but their strings always are.
    for fault in sorted(faults, key=str):
        hasher.update(repr(fault).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


class ArtifactCache:
    """Thread-safe LRU pass-result cache with hit/miss accounting.

    One cache may be shared by many concurrent pipeline runs — a
    :class:`repro.api.Session` hands the same instance to every scenario of
    a sweep, so a ``ThreadExecutor`` sweep replays artifacts a sibling
    scenario computed moments earlier.  The store is guarded by a lock and
    bounded: when ``max_entries`` is set, the least-recently-used entry is
    evicted on insert, so long sweeps cannot grow memory without bound.

    Because each pipeline run executes every pass at most once (and only
    publishes after running), any *hit* observed while sweeping distinct
    scenarios is by construction a replay of an artifact some earlier
    scenario produced — :meth:`repro.api.Session.sweep` snapshots
    :attr:`stats` around the sweep to report exactly that reuse.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._inflight: Dict[CacheKey, threading.Event] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: CacheKey) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
            return None

    def get_or_compute(self, key: CacheKey, factory) -> Tuple[Any, bool]:
        """Return ``(value, was_hit)``, computing and storing on a miss.

        Concurrent callers of the same key are *single-flighted*: one
        computes, the rest block and then replay the stored value (counted
        as hits).  That keeps a thread-pool sweep from duplicating an
        expensive pass when two scenario variants sharing a netlist reach
        it simultaneously.  If the computing caller fails, one waiter takes
        over; the failure propagates to the caller that raised it.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return self._entries[key], True
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    self.misses += 1
                    break
            waiter.wait()
        try:
            value = factory()
        except BaseException:
            self._finish(key)
            raise
        self.put(key, value)
        self._finish(key)
        return value, False

    def _finish(self, key: CacheKey) -> None:
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def put(self, key: CacheKey, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif (self.max_entries is not None
                    and len(self._entries) >= self.max_entries):
                self._entries.popitem(last=False)  # least recently used
                self.evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries),
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}
