"""The analysis-pass abstraction.

An *analysis pass* is one unit of the §4 flow: it consumes artifacts from a
:class:`repro.pipeline.context.PipelineContext` (the netlist, the fault
universe, the baseline-untestable set, ...), produces new artifacts and —
for the passes that model an untestability *source* — a set of identified
faults that the pipeline later attributes in the paper's fixed order.

Passes declare their inputs and outputs (``requires`` / ``provides``
artifact keys) so the pipeline can resolve dependencies, order the passes
and run independent ones concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Optional, Protocol, Set, Tuple,
                    runtime_checkable)

from repro.faults.models import Fault


@dataclass
class PassResult:
    """What a pass hands back to the pipeline.

    ``artifacts`` are stored into the context under the pass's declared
    ``provides`` keys.  ``identified`` is the set of faults this pass claims
    as on-line functionally untestable (only meaningful for passes with a
    ``source``); attribution to the first claiming source happens later, in
    the pipeline, deterministically in the paper's order.
    """

    artifacts: Dict[str, Any] = field(default_factory=dict)
    identified: Optional[Set[Fault]] = None
    details: Any = None

    def __post_init__(self) -> None:
        if self.identified is not None:
            self.identified = set(self.identified)


@runtime_checkable
class AnalysisPass(Protocol):
    """Structural protocol every pipeline pass satisfies.

    Attributes
    ----------
    name:
        Unique pass name (registry key, event label, cache key component).
    source:
        The :class:`repro.faults.categories.OnlineUntestableSource` this pass
        models, or ``None`` for foundation/derivation passes.
    requires / provides:
        Artifact keys consumed from / published to the context.
    """

    name: str
    source: Optional[object]
    requires: Tuple[str, ...]
    provides: Tuple[str, ...]

    def run(self, ctx: "PipelineContext") -> PassResult:  # noqa: F821
        ...


class FunctionPass:
    """An :class:`AnalysisPass` built from a plain function.

    Created by the :func:`repro.pipeline.registry.analysis_pass` decorator;
    carries the declared metadata and delegates :meth:`run` to the wrapped
    function.  ``when`` is an optional predicate on the context: when it
    returns ``False`` the pipeline records the pass as *skipped* instead of
    running it (e.g. the memory-map analysis without a memory map).
    """

    def __init__(self, fn: Callable[["PipelineContext"], PassResult],  # noqa: F821
                 name: str,
                 source: Optional[object] = None,
                 requires: Tuple[str, ...] = (),
                 provides: Tuple[str, ...] = (),
                 when: Optional[Callable[["PipelineContext"], bool]] = None,  # noqa: F821
                 cacheable: bool = True,
                 cache_facets: Optional[Tuple[str, ...]] = None,
                 persist: bool = True) -> None:
        self._fn = fn
        self.name = name
        self.source = source
        self.requires = tuple(requires)
        self.provides = tuple(provides)
        self.when = when
        self.cacheable = cacheable
        # Whether the result may be published to a durable artifact store
        # (repro.store).  Passes whose artifacts are process-local handles
        # (unpicklable, or memoised elsewhere) opt out with persist=False;
        # they still use the in-memory cache tier.
        self.persist = persist
        # Which configuration facets influence this pass's result (None =
        # all of them).  A pass that declares e.g. () or ("effort",) stays
        # replayable across scenario variants that only change the facets
        # it does not read — the basis of cross-scenario artifact reuse.
        self.cache_facets = (tuple(cache_facets)
                             if cache_facets is not None else None)
        self.__doc__ = fn.__doc__

    def applicable(self, ctx: "PipelineContext") -> bool:  # noqa: F821
        return self.when is None or bool(self.when(ctx))

    def run(self, ctx: "PipelineContext") -> PassResult:  # noqa: F821
        return self._fn(ctx)

    def __call__(self, ctx: "PipelineContext") -> PassResult:  # noqa: F821
        return self.run(ctx)

    def __repr__(self) -> str:
        return (f"FunctionPass(name={self.name!r}, source={self.source!r}, "
                f"requires={self.requires!r}, provides={self.provides!r})")
