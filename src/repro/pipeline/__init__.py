"""Composable analysis-pass pipeline (the successor of the monolithic flow).

The paper's §4 flow — scan → debug control → debug observe → memory map —
is expressed as registered :class:`AnalysisPass` objects over a shared
:class:`PipelineContext` artifact store.  A :class:`Pipeline` resolves pass
dependencies from their ``requires``/``provides`` declarations, executes
independent passes concurrently when asked, memoises per-pass results in an
:class:`ArtifactCache` keyed on the netlist signature plus configuration,
and attributes identified faults to their first source in the paper's fixed
order so Table I is reproduced exactly regardless of scheduling.

Quickstart::

    import repro
    report = repro.Session(parallel_passes=True).analyze(soc)

or, with explicit control::

    from repro.pipeline import Pipeline

    pipeline = (Pipeline.builder()
                .with_passes("scan_analysis", "memory_analysis")
                .parallel()
                .cached()
                .build())
    report = pipeline.run(soc).report

Custom passes register through the :func:`analysis_pass` decorator — see
``examples/custom_pass.py``.
"""

from repro.pipeline.base import AnalysisPass, FunctionPass, PassResult
from repro.pipeline.cache import ArtifactCache, netlist_signature
from repro.pipeline.context import (CONFIG_FACETS, MissingArtifactError,
                                    PipelineContext, SEED_ARTIFACTS)
from repro.pipeline.pipeline import (DependencyCycleError, PassEvent, Pipeline,
                                     PipelineBuilder, PipelineError,
                                     PipelineResult)
from repro.pipeline.registry import (DEFAULT_REGISTRY, PassRegistrationError,
                                     PassRegistry, analysis_pass)
# Importing the built-in passes registers them.
from repro.pipeline.passes import (LEGACY_RUNTIME_KEYS, REPORT_DETAIL_FIELDS,
                                   default_pass_names)

__all__ = [
    "AnalysisPass",
    "FunctionPass",
    "PassResult",
    "ArtifactCache",
    "netlist_signature",
    "PipelineContext",
    "MissingArtifactError",
    "SEED_ARTIFACTS",
    "CONFIG_FACETS",
    "Pipeline",
    "PipelineBuilder",
    "PipelineResult",
    "PipelineError",
    "DependencyCycleError",
    "PassEvent",
    "PassRegistry",
    "PassRegistrationError",
    "DEFAULT_REGISTRY",
    "analysis_pass",
    "default_pass_names",
    "LEGACY_RUNTIME_KEYS",
    "REPORT_DETAIL_FIELDS",
]
