"""Decorator-based registry of analysis passes.

The four paper analyses register themselves here at import time; user code
adds passes the same way::

    from repro.pipeline import PassResult, analysis_pass

    @analysis_pass(name="reset_tree", source="reset",
                   requires=("fault_universe", "baseline_untestable"),
                   provides=("reset_result",))
    def reset_tree(ctx):
        ...
        return PassResult(artifacts={"reset_result": result},
                          identified=result.newly_untestable)

A registered pass can then be selected by name when building a
:class:`repro.pipeline.pipeline.Pipeline` (or via
``repro.analyze(..., passes=[...])``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.pipeline.base import AnalysisPass, FunctionPass, PassResult


class PassRegistrationError(ValueError):
    """Raised on duplicate or malformed pass registrations."""


class PassRegistry:
    """Name -> pass mapping with provider lookup by artifact key."""

    def __init__(self) -> None:
        self._passes: Dict[str, AnalysisPass] = {}

    def register(self, pass_: AnalysisPass) -> AnalysisPass:
        name = getattr(pass_, "name", None)
        if not name or not isinstance(name, str):
            raise PassRegistrationError(
                f"pass {pass_!r} has no usable name")
        if name in self._passes:
            raise PassRegistrationError(
                f"a pass named {name!r} is already registered")
        self._passes[name] = pass_
        return pass_

    def unregister(self, name: str) -> None:
        self._passes.pop(name, None)

    def get(self, name: str) -> AnalysisPass:
        try:
            return self._passes[name]
        except KeyError:
            known = ", ".join(sorted(self._passes)) or "<none>"
            raise KeyError(
                f"unknown analysis pass {name!r}; registered passes: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._passes

    def names(self) -> List[str]:
        """Registered pass names, in registration order."""
        return list(self._passes)

    def passes(self) -> List[AnalysisPass]:
        return list(self._passes.values())

    def provider_of(self, artifact: str) -> Optional[AnalysisPass]:
        """The first registered pass that provides ``artifact`` (or None)."""
        for pass_ in self._passes.values():
            if artifact in pass_.provides:
                return pass_
        return None


#: The default process-wide registry (the paper's passes live here).
DEFAULT_REGISTRY = PassRegistry()


def analysis_pass(name: str,
                  *,
                  source: Optional[object] = None,
                  requires: Iterable[str] = (),
                  provides: Iterable[str] = (),
                  when: Optional[Callable] = None,
                  cacheable: bool = True,
                  cache_facets: Optional[Iterable[str]] = None,
                  persist: bool = True,
                  registry: Optional[PassRegistry] = None
                  ) -> Callable[[Callable], FunctionPass]:
    """Decorator turning ``fn(ctx) -> PassResult`` into a registered pass.

    ``cache_facets`` names the configuration facets (see
    :data:`repro.pipeline.context.CONFIG_FACETS`) that influence the pass's
    result; omit it to key on the full configuration (always safe).
    """
    target_registry = registry if registry is not None else DEFAULT_REGISTRY

    def decorate(fn: Callable[..., PassResult]) -> FunctionPass:
        pass_ = FunctionPass(fn, name=name, source=source,
                             requires=tuple(requires), provides=tuple(provides),
                             when=when, cacheable=cacheable,
                             cache_facets=(tuple(cache_facets)
                                           if cache_facets is not None
                                           else None),
                             persist=persist)
        target_registry.register(pass_)
        return pass_

    return decorate
