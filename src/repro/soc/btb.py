"""Branch Target Buffer generator.

A direct-mapped BTB: each entry stores a valid bit, a tag (the PC bits above
the index) and a predicted target address.  The entry is looked up with the
low PC bits; a hit (valid and tag match) supplies the predicted target to the
AGU.  Entries are updated whenever a branch or jump is taken.

All tag and target flip-flops are address-holding state, so they are part of
the ``address_registers`` record the memory-map analysis (§3.3) ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.soc.agu import AddressRegisterRecord
from repro.soc.generators import (
    binary_decoder,
    equality_comparator,
    mux_tree_word,
    register_word,
)


@dataclass
class BranchTargetBuffer:
    """Handles to the generated BTB."""

    predicted_target: List[str]
    hit: str
    address_registers: List[AddressRegisterRecord] = field(default_factory=list)


def build_btb(b: NetlistBuilder,
              clk: str,
              reset_n: str,
              pc: Sequence[str],
              update_target: Sequence[str],
              update_enable: str,
              n_entries: int,
              prefix: str = "btb") -> BranchTargetBuffer:
    """Generate the BTB; ``pc`` and ``update_target`` are full-width buses."""
    addr_width = len(pc)
    index_bits = max(1, (n_entries - 1).bit_length())
    index = list(pc[:index_bits])
    tag = list(pc[index_bits:])
    tag_width = len(tag)

    write_selects = binary_decoder(b, index, enable=update_enable,
                                   prefix=f"{prefix}_wdec")[:n_entries]

    targets: List[List[str]] = []
    tags: List[List[str]] = []
    valids: List[str] = []
    result = BranchTargetBuffer(predicted_target=[], hit="")

    one = b.tie1()
    for entry in range(n_entries):
        target_prefix = f"{prefix}_t{entry}"
        target_q = register_word(b, update_target, clk, write_selects[entry],
                                 prefix=target_prefix, reset_n=reset_n)
        targets.append(target_q)
        result.address_registers.append(AddressRegisterRecord(
            name=target_prefix,
            ff_instances=[f"{target_prefix}_ff{i}" for i in range(addr_width)],
            q_nets=target_q,
        ))

        tag_prefix = f"{prefix}_g{entry}"
        tag_q = register_word(b, tag, clk, write_selects[entry],
                              prefix=tag_prefix, reset_n=reset_n)
        tags.append(tag_q)
        result.address_registers.append(AddressRegisterRecord(
            name=tag_prefix,
            ff_instances=[f"{tag_prefix}_ff{i}" for i in range(tag_width)],
            q_nets=tag_q,
        ))

        valid_next = b.mux(write_selects[entry], f"{prefix}_v{entry}_q", one)
        b.netlist.get_or_create_net(f"{prefix}_v{entry}_q")
        b.dff(valid_next, clk, q=f"{prefix}_v{entry}_q", reset_n=reset_n,
              name=f"{prefix}_v{entry}_ff")
        valids.append(f"{prefix}_v{entry}_q")

    selected_target = mux_tree_word(b, index, targets, prefix=f"{prefix}_selt")
    selected_tag = mux_tree_word(b, index, tags, prefix=f"{prefix}_selg")
    selected_valid = mux_tree_word(b, index, [[v] for v in valids],
                                   prefix=f"{prefix}_selv")[0]

    tag_match = equality_comparator(b, selected_tag, tag, prefix=f"{prefix}_cmp")
    hit = b.gate("AND2", tag_match, selected_valid)

    result.predicted_target = selected_target
    result.hit = hit
    return result
