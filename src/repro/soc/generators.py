"""Parametric gate-level generators for common datapath and control blocks.

Every generator takes a :class:`~repro.netlist.builder.NetlistBuilder` plus
input net names (LSB-first buses) and returns output net names.  They are
composed by the CPU/SoC builders into one flat netlist.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.netlist.builder import NetlistBuilder


# --------------------------------------------------------------------------- #
# arithmetic
# --------------------------------------------------------------------------- #
def ripple_adder(b: NetlistBuilder, a: Sequence[str], bb: Sequence[str],
                 carry_in: Optional[str] = None,
                 prefix: str = "add") -> Tuple[List[str], str]:
    """Ripple-carry adder; returns (sum bus, carry out)."""
    if len(a) != len(bb):
        raise ValueError("adder operands must have equal width")
    carry = carry_in if carry_in is not None else b.tie0()
    sums: List[str] = []
    for i, (ai, bi) in enumerate(zip(a, bb)):
        s = b.new_net(f"{prefix}_s{i}")
        co = b.new_net(f"{prefix}_c{i}")
        b.cell("FA", {"A": ai, "B": bi, "CI": carry, "S": s, "CO": co})
        sums.append(s)
        carry = co
    return sums, carry


def incrementer(b: NetlistBuilder, a: Sequence[str],
                prefix: str = "inc") -> Tuple[List[str], str]:
    """Add-one circuit built from half adders; returns (sum bus, carry out)."""
    carry = b.tie1()
    sums: List[str] = []
    for i, ai in enumerate(a):
        s = b.new_net(f"{prefix}_s{i}")
        co = b.new_net(f"{prefix}_c{i}")
        b.cell("HA", {"A": ai, "B": carry, "S": s, "CO": co})
        sums.append(s)
        carry = co
    return sums, carry


def subtractor(b: NetlistBuilder, a: Sequence[str], bb: Sequence[str],
               prefix: str = "sub") -> Tuple[List[str], str]:
    """Two's-complement subtractor a - b; returns (difference, borrow-free carry)."""
    inverted = [b.inv(bit) for bit in bb]
    return ripple_adder(b, a, inverted, carry_in=b.tie1(), prefix=prefix)


def array_multiplier(b: NetlistBuilder, a: Sequence[str], bb: Sequence[str],
                     result_width: Optional[int] = None,
                     prefix: str = "mul") -> List[str]:
    """Unsigned array multiplier (partial products + carry-save-style rows).

    ``result_width`` trims the product bus (default: len(a) + len(b)).
    Adders are only instantiated where two partial-product bits actually
    overlap, so no cell input is tied to a constant (mirroring what a logic
    synthesiser would produce).
    """
    width = result_width if result_width is not None else len(a) + len(bb)

    # Row 0: the first partial products land directly in the accumulator.
    acc: List[Optional[str]] = [None] * width
    for i, ai in enumerate(a):
        if i < width:
            acc[i] = b.gate("AND2", ai, bb[0])

    for j, bj in enumerate(bb[1:], start=1):
        carry: Optional[str] = None
        top = j
        for i, ai in enumerate(a):
            pos = i + j
            if pos >= width:
                break
            top = pos
            partial = b.gate("AND2", ai, bj)
            existing = acc[pos]
            if existing is None and carry is None:
                acc[pos] = partial
            elif existing is None:
                s = b.new_net(f"{prefix}_s{j}_{pos}")
                co = b.new_net(f"{prefix}_c{j}_{pos}")
                b.cell("HA", {"A": partial, "B": carry, "S": s, "CO": co})
                acc[pos], carry = s, co
            elif carry is None:
                s = b.new_net(f"{prefix}_s{j}_{pos}")
                co = b.new_net(f"{prefix}_c{j}_{pos}")
                b.cell("HA", {"A": existing, "B": partial, "S": s, "CO": co})
                acc[pos], carry = s, co
            else:
                s = b.new_net(f"{prefix}_s{j}_{pos}")
                co = b.new_net(f"{prefix}_c{j}_{pos}")
                b.cell("FA", {"A": existing, "B": partial, "CI": carry,
                              "S": s, "CO": co})
                acc[pos], carry = s, co
        # Ripple the row's final carry into the upper accumulator bits.
        pos = top + 1
        while carry is not None and pos < width:
            existing = acc[pos]
            if existing is None:
                acc[pos], carry = carry, None
            else:
                s = b.new_net(f"{prefix}_s{j}_{pos}")
                co = b.new_net(f"{prefix}_c{j}_{pos}")
                b.cell("HA", {"A": existing, "B": carry, "S": s, "CO": co})
                acc[pos], carry = s, co
                pos += 1

    zero: Optional[str] = None
    result: List[str] = []
    for value in acc:
        if value is None:
            if zero is None:
                zero = b.tie0()
            value = zero
        result.append(value)
    return result


def equality_comparator(b: NetlistBuilder, a: Sequence[str], bb: Sequence[str],
                        prefix: str = "eq") -> str:
    """1 when the two buses are bit-for-bit equal."""
    if len(a) != len(bb):
        raise ValueError("comparator operands must have equal width")
    bits = [b.xnor(ai, bi) for ai, bi in zip(a, bb)]
    return b.and_(*bits)


def zero_detector(b: NetlistBuilder, a: Sequence[str]) -> str:
    """1 when every bit of the bus is 0."""
    any_one = b.or_(*a)
    return b.inv(any_one)


# --------------------------------------------------------------------------- #
# steering logic
# --------------------------------------------------------------------------- #
def mux2_word(b: NetlistBuilder, sel: str, d0: Sequence[str], d1: Sequence[str],
              prefix: str = "muxw") -> List[str]:
    """Word-wide 2:1 mux (sel=0 selects d0)."""
    if len(d0) != len(d1):
        raise ValueError("mux2_word operands must have equal width")
    return [b.mux(sel, a, c, output=b.new_net(f"{prefix}{i}"))
            for i, (a, c) in enumerate(zip(d0, d1))]


def mux_tree_word(b: NetlistBuilder, select: Sequence[str],
                  words: Sequence[Sequence[str]],
                  prefix: str = "muxt") -> List[str]:
    """Select one of ``words`` with a binary select bus (LSB first).

    Missing words (when len(words) < 2**len(select)) are padded with the
    last word, which keeps the tree full without extra tie cells.
    """
    if not words:
        raise ValueError("mux_tree_word requires at least one word")
    needed = 1 << len(select)
    padded = list(words) + [words[-1]] * (needed - len(words))
    level: List[Sequence[str]] = padded
    for stage, sel_bit in enumerate(select):
        nxt: List[Sequence[str]] = []
        for i in range(0, len(level), 2):
            nxt.append(mux2_word(b, sel_bit, level[i], level[i + 1],
                                 prefix=f"{prefix}_s{stage}_{i // 2}_"))
        level = nxt
    return list(level[0])


def binary_decoder(b: NetlistBuilder, select: Sequence[str],
                   enable: Optional[str] = None,
                   prefix: str = "dec") -> List[str]:
    """n-to-2^n one-hot decoder (optionally gated by an enable)."""
    inverted = [b.inv(s) for s in select]
    outputs: List[str] = []
    for code in range(1 << len(select)):
        terms = []
        for bit, sel in enumerate(select):
            terms.append(sel if (code >> bit) & 1 else inverted[bit])
        if enable is not None:
            terms.append(enable)
        outputs.append(b.and_(*terms, output=b.new_net(f"{prefix}{code}")))
    return outputs


def barrel_shifter(b: NetlistBuilder, data: Sequence[str], amount: Sequence[str],
                   left: bool = True, prefix: str = "shift") -> List[str]:
    """Logarithmic barrel shifter (logical shift, zero fill)."""
    zero = b.tie0()
    current = list(data)
    width = len(data)
    for stage, sel in enumerate(amount):
        distance = 1 << stage
        shifted: List[str] = []
        for i in range(width):
            source = i - distance if left else i + distance
            shifted.append(current[source] if 0 <= source < width else zero)
        current = mux2_word(b, sel, current, shifted,
                            prefix=f"{prefix}_st{stage}_")
    return current


# --------------------------------------------------------------------------- #
# storage
# --------------------------------------------------------------------------- #
def register_word(b: NetlistBuilder, d: Sequence[str], clk: str, enable: str,
                  prefix: str = "reg", reset_n: Optional[str] = None) -> List[str]:
    """A write-enabled register: each bit is a DFF fed by a hold/load mux."""
    q_bus = [b.new_net(f"{prefix}_q{i}") for i in range(len(d))]
    for i, di in enumerate(d):
        next_value = b.mux(enable, q_bus[i], di)
        b.dff(next_value, clk, q=q_bus[i], reset_n=reset_n, name=f"{prefix}_ff{i}")
    return q_bus


def shift_register(b: NetlistBuilder, serial_in: str, clk: str, enable: str,
                   length: int, prefix: str = "shreg",
                   reset_n: Optional[str] = None) -> List[str]:
    """Serial-in shift register with shift enable; returns the parallel outputs."""
    q_bus = [b.new_net(f"{prefix}_q{i}") for i in range(length)]
    previous = serial_in
    for i in range(length):
        next_value = b.mux(enable, q_bus[i], previous)
        b.dff(next_value, clk, q=q_bus[i], reset_n=reset_n, name=f"{prefix}_ff{i}")
        previous = q_bus[i]
    return q_bus


def buffer_tree(b: NetlistBuilder, sources: Sequence[str],
                prefix: str = "obsbuf", stages: int = 2) -> List[str]:
    """A chain of dedicated buffers per source (observation-only logic)."""
    outputs: List[str] = []
    for i, src in enumerate(sources):
        current = src
        for stage in range(stages):
            current = b.buf(current, output=b.new_net(f"{prefix}{i}_s{stage}"))
        outputs.append(current)
    return outputs


# --------------------------------------------------------------------------- #
# random-function synthesis (control logic filler with deterministic structure)
# --------------------------------------------------------------------------- #
def synthesize_function(b: NetlistBuilder, inputs: Sequence[str],
                        truth: Callable[[int], int],
                        prefix: str = "fn") -> str:
    """Synthesize a single-output boolean function of ``inputs`` as a MUX tree.

    ``truth`` maps the integer formed by the inputs (LSB-first) to 0/1.
    Used to build instruction decoders and FSM next-state logic without a
    full logic synthesiser.
    """
    zero = b.tie0()
    one = b.tie1()
    leaves: List[str] = [one if truth(code) else zero for code in range(1 << len(inputs))]
    level = leaves
    for stage, sel in enumerate(inputs):
        nxt: List[str] = []
        for i in range(0, len(level), 2):
            if level[i] == level[i + 1]:
                nxt.append(level[i])
            else:
                nxt.append(b.mux(sel, level[i], level[i + 1],
                                 output=b.new_net(f"{prefix}_s{stage}_{i // 2}")))
        level = nxt
    return level[0]
