"""SoC assembly: CPU core + scan insertion + mission environment.

:func:`build_soc` produces the object the identification flow consumes: the
processor-core netlist (with scan inserted, as in the industrial case study),
the mission memory map and the debug-interface specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.debug.interface import DebugInterface, discover_debug_interface
from repro.memory.memory_map import MemoryMap
from repro.netlist.module import Netlist
from repro.netlist.validate import check_netlist
from repro.scan.insertion import ScanInsertionResult, insert_scan
from repro.soc.config import SoCConfig
from repro.soc.cpu import build_cpu_core


@dataclass
class SoC:
    """A generated system-on-chip view: the core plus its mission context."""

    config: SoCConfig
    cpu: Netlist
    memory_map: MemoryMap
    debug_interface: Optional[DebugInterface]
    scan: Optional[ScanInsertionResult] = None

    @property
    def name(self) -> str:
        return self.cpu.name

    def stats(self) -> Dict[str, int]:
        stats = self.cpu.stats()
        stats["scan_cells"] = self.scan.total_cells if self.scan else 0
        stats["scan_chains"] = len(self.scan.chains) if self.scan else 0
        return stats

    def structural_problems(self) -> List[str]:
        """Netlist sanity check (unconnected SI pins are expected pre-scan)."""
        return check_netlist(self.cpu, allow_floating_inputs=False)


def build_soc(config: Optional[SoCConfig] = None) -> SoC:
    """Generate a complete SoC view from a configuration (default: date13)."""
    config = config or SoCConfig.date13()
    cpu = build_cpu_core(config.cpu)

    scan_result: Optional[ScanInsertionResult] = None
    if config.insert_scan:
        scan_result = insert_scan(
            cpu,
            n_chains=config.cpu.scan_chains,
            buffer_every=config.cpu.scan_buffer_every,
        )

    memory_map = config.resolved_memory_map()
    cpu.annotations["memory_map"] = memory_map

    debug_interface = discover_debug_interface(cpu)

    return SoC(
        config=config,
        cpu=cpu,
        memory_map=memory_map,
        debug_interface=debug_interface,
        scan=scan_result,
    )
