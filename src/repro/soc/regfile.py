"""General-purpose register file generator.

``n_registers`` words of ``data_width`` flip-flops with one write port and
two combinational read ports (mux trees).  The write path can be overridden
by the debug logic (register manipulation through the Nexus/JTAG interface),
which is exactly the kind of mission-unused control path §3.2.1 of the paper
prunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.soc.generators import binary_decoder, mux_tree_word, register_word


@dataclass
class RegisterFile:
    """Handles to the generated register file."""

    registers: List[List[str]]      # Q nets, one bus per architectural register
    read_data_a: List[str]
    read_data_b: List[str]
    write_enables: List[str]        # per-register decoded write enables


def build_register_file(b: NetlistBuilder,
                        clk: str,
                        n_registers: int,
                        data_width: int,
                        write_data: Sequence[str],
                        write_address: Sequence[str],
                        write_enable: str,
                        read_address_a: Sequence[str],
                        read_address_b: Sequence[str],
                        prefix: str = "rf") -> RegisterFile:
    """Generate the register file and return its interface nets."""
    if len(write_data) != data_width:
        raise ValueError("write_data width mismatch")

    enables = binary_decoder(b, write_address, enable=write_enable,
                             prefix=f"{prefix}_wdec")
    enables = enables[:n_registers]

    registers: List[List[str]] = []
    for index in range(n_registers):
        q_bus = register_word(b, write_data, clk, enables[index],
                              prefix=f"{prefix}_r{index}")
        registers.append(q_bus)

    read_a = mux_tree_word(b, read_address_a, registers, prefix=f"{prefix}_rda")
    read_b = mux_tree_word(b, read_address_b, registers, prefix=f"{prefix}_rdb")

    return RegisterFile(
        registers=registers,
        read_data_a=read_a,
        read_data_b=read_b,
        write_enables=enables,
    )
