"""Address-generation unit: program counter, branch adder, effective-address
adder and the memory address register.

These are exactly the "address generation, prediction and virtualization"
resources §3.3 of the paper singles out: when the mission memory map freezes
most address bits, the registers built here hold constants and the adders are
only partly exercised.  The CPU builder records every address-holding
flip-flop generated here in the ``address_registers`` netlist annotation so
the memory-map analysis can tie the frozen bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.soc.generators import incrementer, mux2_word, register_word, ripple_adder


@dataclass
class AddressRegisterRecord:
    """One address-holding register: per-bit flip-flop instance names."""

    name: str
    ff_instances: List[str]
    q_nets: List[str]

    @property
    def width(self) -> int:
        return len(self.ff_instances)


@dataclass
class AddressUnit:
    """Handles to the generated AGU."""

    pc: List[str]
    pc_plus_one: List[str]
    branch_target: List[str]
    effective_address: List[str]
    mem_address: List[str]
    address_registers: List[AddressRegisterRecord] = field(default_factory=list)


def build_address_unit(b: NetlistBuilder,
                       clk: str,
                       reset_n: str,
                       addr_width: int,
                       base_address: Sequence[str],
                       offset: Sequence[str],
                       branch_offset: Sequence[str],
                       take_branch: str,
                       jump: str,
                       predicted_target: Optional[Sequence[str]] = None,
                       use_prediction: Optional[str] = None,
                       pc_enable: Optional[str] = None,
                       prefix: str = "agu") -> AddressUnit:
    """Generate the AGU.

    Parameters
    ----------
    base_address / offset:
        Operands of the effective-address adder (load/store address).
    branch_offset:
        Added to the PC for the branch target.
    take_branch / jump:
        Redirect controls from the branch logic.
    predicted_target / use_prediction:
        Optional branch-target-buffer interface.
    pc_enable:
        Optional PC write enable (debug halt gating).
    """
    unit = AddressUnit(pc=[], pc_plus_one=[], branch_target=[],
                       effective_address=[], mem_address=[])

    # Program counter -------------------------------------------------- #
    pc_prefix = f"{prefix}_pc"
    pc_q = [f"{pc_prefix}_q{i}" for i in range(addr_width)]
    for net in pc_q:
        b.netlist.get_or_create_net(net)

    pc_plus_one, _ = incrementer(b, pc_q, prefix=f"{prefix}_pcinc")
    branch_target, _ = ripple_adder(b, pc_q, branch_offset, prefix=f"{prefix}_br")

    next_pc = mux2_word(b, take_branch, pc_plus_one, branch_target,
                        prefix=f"{prefix}_npc_br")
    if predicted_target is not None and use_prediction is not None:
        next_pc = mux2_word(b, use_prediction, next_pc, predicted_target,
                            prefix=f"{prefix}_npc_pred")
    # A jump redirects to the effective branch target as well.
    next_pc = mux2_word(b, jump, next_pc, branch_target, prefix=f"{prefix}_npc_jmp")

    if pc_enable is not None:
        next_pc = mux2_word(b, pc_enable, pc_q, next_pc, prefix=f"{prefix}_npc_en")

    for i in range(addr_width):
        b.dff(next_pc[i], clk, q=pc_q[i], reset_n=reset_n, name=f"{pc_prefix}_ff{i}")
    unit.pc = pc_q
    unit.pc_plus_one = pc_plus_one
    unit.branch_target = branch_target
    unit.address_registers.append(AddressRegisterRecord(
        name=pc_prefix,
        ff_instances=[f"{pc_prefix}_ff{i}" for i in range(addr_width)],
        q_nets=pc_q,
    ))

    # Effective address and memory address register --------------------- #
    effective, _ = ripple_adder(b, base_address, offset, prefix=f"{prefix}_ea")
    unit.effective_address = effective

    mar_prefix = f"{prefix}_mar"
    always_on = b.tie1()
    mar_q = register_word(b, effective, clk, always_on, prefix=mar_prefix,
                          reset_n=reset_n)
    unit.mem_address = mar_q
    unit.address_registers.append(AddressRegisterRecord(
        name=mar_prefix,
        ff_instances=[f"{mar_prefix}_ff{i}" for i in range(addr_width)],
        q_nets=list(mar_q),
    ))

    return unit
