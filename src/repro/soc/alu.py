"""Arithmetic/logic unit generator.

Operations (selected by a 3-bit opcode bus): ADD, SUB, AND, OR, XOR, shift
left (optional barrel shifter), multiply low half (optional array
multiplier), pass-through of operand B.  Produces the result bus plus a zero
flag used by the branch logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.soc.generators import (
    array_multiplier,
    barrel_shifter,
    mux_tree_word,
    ripple_adder,
    subtractor,
    zero_detector,
)


@dataclass
class Alu:
    """Handles to the generated ALU."""

    result: List[str]
    zero_flag: str
    carry_out: str


def build_alu(b: NetlistBuilder,
              operand_a: Sequence[str],
              operand_b: Sequence[str],
              op_select: Sequence[str],
              mult_width: int = 0,
              has_barrel_shifter: bool = True,
              prefix: str = "alu") -> Alu:
    """Generate the ALU; ``op_select`` is a 3-bit bus (LSB first)."""
    width = len(operand_a)
    if len(operand_b) != width:
        raise ValueError("ALU operands must have equal width")
    if len(op_select) != 3:
        raise ValueError("op_select must be exactly 3 bits")

    add_result, carry = ripple_adder(b, operand_a, operand_b, prefix=f"{prefix}_add")
    sub_result, _ = subtractor(b, operand_a, operand_b, prefix=f"{prefix}_sub")
    and_result = [b.gate("AND2", x, y) for x, y in zip(operand_a, operand_b)]
    or_result = [b.gate("OR2", x, y) for x, y in zip(operand_a, operand_b)]
    xor_result = [b.xor(x, y) for x, y in zip(operand_a, operand_b)]

    if has_barrel_shifter:
        shift_amount_bits = max(1, (width - 1).bit_length())
        shift_result = barrel_shifter(b, operand_a, operand_b[:shift_amount_bits],
                                      left=True, prefix=f"{prefix}_shl")
    else:
        shift_result = list(operand_b)

    if mult_width > 0:
        mult_result = array_multiplier(b, operand_a[:mult_width],
                                       operand_b[:mult_width],
                                       result_width=width, prefix=f"{prefix}_mul")
    else:
        mult_result = list(operand_a)

    pass_b = list(operand_b)

    words = [add_result, sub_result, and_result, or_result,
             xor_result, shift_result, mult_result, pass_b]
    result = mux_tree_word(b, op_select, words, prefix=f"{prefix}_res")
    zero = zero_detector(b, result)

    return Alu(result=result, zero_flag=zero, carry_out=carry)
