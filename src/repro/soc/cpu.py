"""Top-level generator of the synthetic embedded processor core.

:func:`build_cpu_core` assembles the fetch/decode/execute datapath, register
file, ALU, address-generation unit, branch target buffer, special-purpose
registers, memory interface and the CPU-internal debug logic into one flat
gate-level netlist, and annotates the netlist with everything the on-line
untestability flow needs to know about it:

* ``debug_interface`` — the 17 debug control inputs with their mission-mode
  constants and the two debug-only observation buses (§3.2);
* ``address_registers`` — every address-holding flip-flop with the address
  bit it stores (§3.3);
* ``core_config`` — the :class:`~repro.soc.config.CpuConfig` used.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.isa.opcodes import field_layout
from repro.netlist.builder import NetlistBuilder
from repro.netlist.module import Netlist
from repro.netlist.optimize import remove_dangling_logic
from repro.soc.agu import build_address_unit
from repro.soc.alu import build_alu
from repro.soc.btb import build_btb
from repro.soc.config import CpuConfig
from repro.soc.debug_logic import DEBUG_CONTROL_PORTS, build_debug_logic
from repro.soc.decoder import build_decoder
from repro.soc.generators import mux2_word, register_word
from repro.soc.regfile import build_register_file


def _resize(b: NetlistBuilder, bus: Sequence[str], width: int,
            sign_extend: bool = False) -> List[str]:
    """Trim or extend a bus to ``width`` bits (zero- or sign-extension)."""
    bus = list(bus)
    if len(bus) >= width:
        return bus[:width]
    if sign_extend and bus:
        fill = bus[-1]
        return bus + [b.buf(fill) for _ in range(width - len(bus))]
    zero = b.tie0()
    return bus + [zero] * (width - len(bus))


def build_cpu_core(config: CpuConfig) -> Netlist:
    """Generate the processor-core netlist for ``config``."""
    config.validate()
    b = NetlistBuilder(config.name)
    dw, aw, iw = config.data_width, config.addr_width, config.instr_width
    rbits = config.register_select_bits

    # ------------------------------------------------------------------ #
    # ports
    # ------------------------------------------------------------------ #
    clk = b.add_input("clk")
    rst_n = b.add_input("rst_n")
    instr_in = b.add_input_bus("instr_in", iw)
    mem_rdata = b.add_input_bus("mem_rdata", dw)
    irq = b.add_input("irq")

    mem_addr_ports = b.add_output_bus("mem_addr", aw)
    mem_wdata_ports = b.add_output_bus("mem_wdata", dw)
    mem_we_port = b.add_output("mem_we")
    mem_re_port = b.add_output("mem_re")
    halted_port = b.add_output("cpu_halted")

    debug_control_nets: Dict[str, str] = {}
    if config.has_debug:
        for port in DEBUG_CONTROL_PORTS:
            debug_control_nets[port] = b.add_input(port)
        dbg_gpr_ports = b.add_output_bus("dbg_gpr_obs", dw)
        dbg_spr_ports = b.add_output_bus("dbg_spr_obs", dw)
    else:
        dbg_gpr_ports, dbg_spr_ports = [], []

    # ------------------------------------------------------------------ #
    # fetch / decode
    # ------------------------------------------------------------------ #
    always = b.tie1()
    ir = register_word(b, instr_in, clk, always, prefix="ir", reset_n=rst_n)

    layout = field_layout(iw, rbits)

    def ir_field(name: str) -> List[str]:
        lsb, width = layout[name]
        return ir[lsb:lsb + width]

    opcode = ir_field("opcode")
    rd = ir_field("rd")
    rs1 = ir_field("rs1")
    rs2 = ir_field("rs2")
    imm = ir_field("imm")

    controls = build_decoder(b, opcode, prefix="dec")

    # ------------------------------------------------------------------ #
    # register file and ALU
    # ------------------------------------------------------------------ #
    # Placeholder nets for signals produced later (write-back and debug);
    # they are declared here so the register file can reference them.
    wb_data = b.new_bus("wb_data", dw)
    rf_waddr = b.new_bus("rf_waddr", rbits)
    rf_we = b.new_net("rf_we")

    regfile = build_register_file(
        b, clk,
        n_registers=config.n_registers,
        data_width=dw,
        write_data=wb_data,
        write_address=rf_waddr,
        write_enable=rf_we,
        read_address_a=rs1,
        read_address_b=rs2,
        prefix="rf",
    )

    imm_ext = _resize(b, imm, dw, sign_extend=True)
    operand_b = mux2_word(b, controls["alu_src_imm"], regfile.read_data_b,
                          imm_ext, prefix="opb")
    alu = build_alu(b, regfile.read_data_a, operand_b, controls.alu_op,
                    mult_width=config.mult_width,
                    has_barrel_shifter=config.has_barrel_shifter,
                    prefix="alu")

    # ------------------------------------------------------------------ #
    # branch decision and debug block
    # ------------------------------------------------------------------ #
    take_eq = b.gate("AND2", controls["branch_eq"], alu.zero_flag)
    take_ne = b.gate("AND2", controls["branch_ne"], b.inv(alu.zero_flag))
    take_branch = b.gate("OR2", take_eq, take_ne)

    # The PC is produced by the AGU below; pre-declare its net names so the
    # debug breakpoint comparator can reference them.
    pc_nets = [f"agu_pc_q{i}" for i in range(aw)]
    for net in pc_nets:
        b.netlist.get_or_create_net(net)

    if config.has_debug:
        gpr_obs_src = regfile.read_data_a
        spr_obs_src_placeholder = b.new_bus("spr_obs_src", dw)
        debug = build_debug_logic(
            b, clk, rst_n,
            control_ports=debug_control_nets,
            pc=pc_nets,
            gpr_observation_source=gpr_obs_src,
            spr_observation_source=spr_obs_src_placeholder,
            shift_length=config.debug_shift_length,
            data_width=dw,
            prefix="dbg",
        )
        halt_dbg = debug.halt
    else:
        debug = None
        halt_dbg = b.tie0()
        spr_obs_src_placeholder = []

    halt = b.gate("OR2", controls["halt"], halt_dbg, output=b.new_net("halt"))
    run = b.inv(halt, output=b.new_net("run"))
    b.buf(halt, output=halted_port)

    # ------------------------------------------------------------------ #
    # branch target buffer and address generation
    # ------------------------------------------------------------------ #
    branch_offset = _resize(b, imm, aw, sign_extend=True)
    base_address = _resize(b, regfile.read_data_a, aw)
    mem_offset = _resize(b, imm, aw, sign_extend=True)

    redirect = b.gate("OR2", take_branch, controls["jump"])

    # The BTB lookup uses the PC nets declared above; its update target is
    # the branch adder output produced by the AGU, so build the AGU first
    # with prediction wired afterwards through pre-declared nets.
    predicted = b.new_bus("btb_pred", aw)
    use_prediction = b.new_net("btb_use_pred")

    agu = build_address_unit(
        b, clk, rst_n, aw,
        base_address=base_address,
        offset=mem_offset,
        branch_offset=branch_offset,
        take_branch=take_branch,
        jump=controls["jump"],
        predicted_target=predicted,
        use_prediction=use_prediction,
        pc_enable=run,
        prefix="agu",
    )

    btb = build_btb(
        b, clk, rst_n,
        pc=agu.pc,
        update_target=agu.branch_target,
        update_enable=redirect,
        n_entries=config.btb_entries,
        prefix="btb",
    )
    for i in range(aw):
        b.buf(btb.predicted_target[i], output=predicted[i])
    no_redirect = b.inv(redirect)
    b.gate("AND2", btb.hit, no_redirect, output=use_prediction)

    # ------------------------------------------------------------------ #
    # special-purpose registers
    # ------------------------------------------------------------------ #
    spr_records: List[Dict[str, object]] = []
    status_bits = [alu.zero_flag, alu.carry_out, take_branch, halt, irq]
    status_d = _resize(b, status_bits, dw)
    status_q = register_word(b, status_d, clk, always, prefix="spr_status",
                             reset_n=rst_n)

    extra_spr: List[List[str]] = []
    if config.n_special_registers >= 2:
        epc_d = _resize(b, agu.pc, dw)
        epc_q = register_word(b, epc_d, clk, redirect, prefix="spr_epc",
                              reset_n=rst_n)
        extra_spr.append(epc_q)
        epc_bits = min(dw, aw)
        spr_records.append({
            "name": "spr_epc",
            "ff_instances": [f"spr_epc_ff{i}" for i in range(epc_bits)],
            "q_nets": epc_q[:epc_bits],
            "address_bits": list(range(epc_bits)),
        })
    if config.n_special_registers >= 3:
        cause_d = _resize(b, [irq, controls["halt"], take_branch], dw)
        cause_q = register_word(b, cause_d, clk, irq, prefix="spr_cause",
                                reset_n=rst_n)
        extra_spr.append(cause_q)
    if config.n_special_registers >= 4:
        count_src = _resize(b, status_q, dw)
        count_q = register_word(b, count_src, clk, always, prefix="spr_count",
                                reset_n=rst_n)
        extra_spr.append(count_q)

    if config.has_debug and debug is not None:
        for i in range(dw):
            b.buf(status_q[i], output=spr_obs_src_placeholder[i])

    # ------------------------------------------------------------------ #
    # memory interface and write-back
    # ------------------------------------------------------------------ #
    store_data = register_word(b, regfile.read_data_b, clk, controls["mem_we"],
                               prefix="lsu_wdata", reset_n=rst_n)
    for i in range(dw):
        b.buf(store_data[i], output=mem_wdata_ports[i])
    for i in range(aw):
        b.buf(agu.mem_address[i], output=mem_addr_ports[i])

    if config.has_debug and debug is not None:
        mem_we = b.or_(b.gate("AND2", controls["mem_we"], run), debug.mem_request)
        mem_re = b.or_(b.gate("AND2", controls["mem_re"], run), debug.mem_request)
    else:
        mem_we = b.gate("AND2", controls["mem_we"], run)
        mem_re = b.gate("AND2", controls["mem_re"], run)
    b.buf(mem_we, output=mem_we_port)
    b.buf(mem_re, output=mem_re_port)

    # Write-back mux chain: ALU result -> memory load -> debug override.
    wb_core = mux2_word(b, controls["wb_from_mem"], alu.result, mem_rdata,
                        prefix="wb_mux")
    if config.has_debug and debug is not None:
        wb_final = mux2_word(b, debug.reg_write_enable, wb_core,
                             debug.reg_write_data, prefix="wb_dbg")
        debug_waddr = _resize(b, debug.reg_write_select, rbits)
        waddr_final = mux2_word(b, debug.reg_write_enable, rd,
                                debug_waddr, prefix="wa_dbg")
        we_final = b.or_(b.gate("AND2", controls["reg_we"], run),
                         debug.reg_write_enable)
    else:
        wb_final = wb_core
        waddr_final = list(rd)
        we_final = b.gate("AND2", controls["reg_we"], run)

    for i in range(dw):
        b.buf(wb_final[i], output=wb_data[i])
    for i in range(rbits):
        b.buf(waddr_final[i], output=rf_waddr[i])
    b.buf(we_final, output=rf_we)

    # ------------------------------------------------------------------ #
    # debug observation output ports
    # ------------------------------------------------------------------ #
    if config.has_debug and debug is not None:
        for i in range(dw):
            b.buf(debug.observation_nets["gpr"][i], output=dbg_gpr_ports[i])
            b.buf(debug.observation_nets["spr"][i], output=dbg_spr_ports[i])

    # ------------------------------------------------------------------ #
    # clean-up and annotations
    # ------------------------------------------------------------------ #
    netlist = b.build()
    removed = remove_dangling_logic(netlist)
    netlist.annotations["dead_logic_removed"] = removed

    address_registers: List[Dict[str, object]] = []
    index_bits = config.btb_index_bits
    for record in agu.address_registers:
        address_registers.append({
            "name": record.name,
            "ff_instances": record.ff_instances,
            "q_nets": record.q_nets,
            "address_bits": list(range(record.width)),
        })
    for record in btb.address_registers:
        if "_g" in record.name:  # tag register: stores PC bits above the index
            bits = list(range(index_bits, index_bits + record.width))
        else:
            bits = list(range(record.width))
        address_registers.append({
            "name": record.name,
            "ff_instances": record.ff_instances,
            "q_nets": record.q_nets,
            "address_bits": bits,
        })
    address_registers.extend(spr_records)
    netlist.annotations["address_registers"] = address_registers

    if config.has_debug:
        netlist.annotations["debug_interface"] = {
            "control_inputs": dict(DEBUG_CONTROL_PORTS),
            "observation_outputs": (
                [f"dbg_gpr_obs[{i}]" for i in range(dw)]
                + [f"dbg_spr_obs[{i}]" for i in range(dw)]
            ),
        }
    netlist.annotations["core_config"] = config
    return netlist
