"""Configuration objects for the synthetic CPU core and SoC."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.memory.memory_map import MemoryMap


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the synthetic processor core.

    The defaults describe the "date13" configuration used for the Table-I
    style benchmark: a 32-bit core with a 32-entry register file, multiplier,
    barrel shifter, branch target buffer, Nexus/JTAG-style debug logic and
    full mux-scan.
    """

    name: str = "e200z0_like"
    data_width: int = 32
    addr_width: int = 32
    instr_width: int = 32
    n_registers: int = 32
    btb_entries: int = 4
    mult_width: int = 32          # operand width of the array multiplier (0 = none)
    has_barrel_shifter: bool = True
    n_special_registers: int = 4  # status/EPC/cause/... block
    # Debug infrastructure inside the core.
    has_debug: bool = True
    debug_shift_length: int = 32  # JTAG-fed debug data register length
    # Scan insertion.
    scan_chains: int = 4
    scan_buffer_every: int = 4

    @property
    def register_select_bits(self) -> int:
        return max(1, (self.n_registers - 1).bit_length())

    @property
    def btb_index_bits(self) -> int:
        return max(1, (self.btb_entries - 1).bit_length())

    @property
    def opcode_bits(self) -> int:
        return 5

    def validate(self) -> None:
        if self.data_width < 4:
            raise ValueError("data_width must be at least 4")
        if self.addr_width < 4:
            raise ValueError("addr_width must be at least 4")
        if self.instr_width < self.opcode_bits + 3 * self.register_select_bits:
            raise ValueError(
                "instr_width too small for opcode plus three register fields")
        if self.n_registers < 2:
            raise ValueError("n_registers must be at least 2")
        if self.btb_entries < 1:
            raise ValueError("btb_entries must be at least 1")
        if self.mult_width > self.data_width:
            raise ValueError("mult_width cannot exceed data_width")

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def tiny(cls) -> "CpuConfig":
        """A few hundred gates — used by unit tests and quick examples."""
        return cls(name="tiny_core", data_width=8, addr_width=8, instr_width=16,
                   n_registers=4, btb_entries=2, mult_width=0,
                   has_barrel_shifter=False, n_special_registers=2,
                   debug_shift_length=8, scan_chains=1, scan_buffer_every=2)

    @classmethod
    def small(cls) -> "CpuConfig":
        """A few thousand gates — integration tests and the SBST experiments."""
        return cls(name="small_core", data_width=16, addr_width=16, instr_width=24,
                   n_registers=8, btb_entries=4, mult_width=8,
                   has_barrel_shifter=True, n_special_registers=3,
                   debug_shift_length=16, scan_chains=2, scan_buffer_every=4)

    @classmethod
    def date13(cls) -> "CpuConfig":
        """The benchmark configuration approximating the paper's case study."""
        return cls()


@dataclass(frozen=True)
class SoCConfig:
    """The CPU configuration plus the mission environment around it."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    memory_map: Optional[MemoryMap] = None
    insert_scan: bool = True

    def __post_init__(self) -> None:
        self.cpu.validate()

    def resolved_memory_map(self) -> MemoryMap:
        if self.memory_map is not None:
            return self.memory_map
        if self.cpu.addr_width >= 32:
            return MemoryMap.date13_case_study()
        # Scale the two-region idea down to narrow address buses: a small
        # "flash" at the bottom and a small "sram" in the upper half.
        quarter = 1 << (self.cpu.addr_width - 2)
        from repro.memory.memory_map import MemoryRegion
        return MemoryMap(address_width=self.cpu.addr_width, regions=[
            MemoryRegion("flash", 0, quarter // 2),
            MemoryRegion("sram", 2 * quarter, quarter // 4),
        ])

    # ------------------------------------------------------------------ #
    @classmethod
    def tiny(cls) -> "SoCConfig":
        return cls(cpu=CpuConfig.tiny())

    @classmethod
    def small(cls) -> "SoCConfig":
        return cls(cpu=CpuConfig.small())

    @classmethod
    def date13(cls) -> "SoCConfig":
        return cls(cpu=CpuConfig.date13(), memory_map=MemoryMap.date13_case_study())

    @classmethod
    def named_configs(cls) -> dict:
        """Name -> factory for every preset configuration."""
        return {"tiny": cls.tiny, "small": cls.small, "date13": cls.date13}

    @classmethod
    def from_name(cls, name: str) -> "SoCConfig":
        """Look up a preset configuration by name (CLI / scripting entry)."""
        try:
            return cls.named_configs()[name]()
        except KeyError:
            known = ", ".join(sorted(cls.named_configs()))
            raise ValueError(
                f"unknown SoC configuration {name!r}; available: {known}"
            ) from None

    def with_cpu(self, **overrides) -> "SoCConfig":
        """Return a copy with CPU parameters replaced (used by ablations)."""
        return SoCConfig(cpu=replace(self.cpu, **overrides),
                         memory_map=self.memory_map,
                         insert_scan=self.insert_scan)
