"""Configuration objects for the synthetic CPU core and SoC.

Besides the frozen :class:`CpuConfig` / :class:`SoCConfig` dataclasses this
module hosts the *axis* vocabulary used by scenario sweeps: an axis is a
named knob over a :class:`SoCConfig` (core size preset, scan style, debug
interface, memory map, any ``cpu.<field>``) and :func:`expand_axes` turns a
base configuration plus ``{axis: [values, ...]}`` into the cartesian
product of labelled variant configurations.  :class:`repro.api.ScenarioGrid`
builds on these helpers and adds the run-level axes (ATPG effort).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.memory.memory_map import MemoryMap


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the synthetic processor core.

    The defaults describe the "date13" configuration used for the Table-I
    style benchmark: a 32-bit core with a 32-entry register file, multiplier,
    barrel shifter, branch target buffer, Nexus/JTAG-style debug logic and
    full mux-scan.
    """

    name: str = "e200z0_like"
    data_width: int = 32
    addr_width: int = 32
    instr_width: int = 32
    n_registers: int = 32
    btb_entries: int = 4
    mult_width: int = 32          # operand width of the array multiplier (0 = none)
    has_barrel_shifter: bool = True
    n_special_registers: int = 4  # status/EPC/cause/... block
    # Debug infrastructure inside the core.
    has_debug: bool = True
    debug_shift_length: int = 32  # JTAG-fed debug data register length
    # Scan insertion.
    scan_chains: int = 4
    scan_buffer_every: int = 4

    @property
    def register_select_bits(self) -> int:
        return max(1, (self.n_registers - 1).bit_length())

    @property
    def btb_index_bits(self) -> int:
        return max(1, (self.btb_entries - 1).bit_length())

    @property
    def opcode_bits(self) -> int:
        return 5

    def validate(self) -> None:
        if self.data_width < 4:
            raise ValueError("data_width must be at least 4")
        if self.addr_width < 4:
            raise ValueError("addr_width must be at least 4")
        if self.instr_width < self.opcode_bits + 3 * self.register_select_bits:
            raise ValueError(
                "instr_width too small for opcode plus three register fields")
        if self.n_registers < 2:
            raise ValueError("n_registers must be at least 2")
        if self.btb_entries < 1:
            raise ValueError("btb_entries must be at least 1")
        if self.mult_width > self.data_width:
            raise ValueError("mult_width cannot exceed data_width")

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def tiny(cls) -> "CpuConfig":
        """A few hundred gates — used by unit tests and quick examples."""
        return cls(name="tiny_core", data_width=8, addr_width=8, instr_width=16,
                   n_registers=4, btb_entries=2, mult_width=0,
                   has_barrel_shifter=False, n_special_registers=2,
                   debug_shift_length=8, scan_chains=1, scan_buffer_every=2)

    @classmethod
    def small(cls) -> "CpuConfig":
        """A few thousand gates — integration tests and the SBST experiments."""
        return cls(name="small_core", data_width=16, addr_width=16, instr_width=24,
                   n_registers=8, btb_entries=4, mult_width=8,
                   has_barrel_shifter=True, n_special_registers=3,
                   debug_shift_length=16, scan_chains=2, scan_buffer_every=4)

    @classmethod
    def date13(cls) -> "CpuConfig":
        """The benchmark configuration approximating the paper's case study."""
        return cls()


@dataclass(frozen=True)
class SoCConfig:
    """The CPU configuration plus the mission environment around it."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    memory_map: Optional[MemoryMap] = None
    insert_scan: bool = True

    def __post_init__(self) -> None:
        self.cpu.validate()

    def resolved_memory_map(self) -> MemoryMap:
        if self.memory_map is not None:
            return self.memory_map
        if self.cpu.addr_width >= 32:
            return MemoryMap.date13_case_study()
        # Scale the two-region idea down to narrow address buses: a small
        # "flash" at the bottom and a small "sram" in the upper half.
        quarter = 1 << (self.cpu.addr_width - 2)
        from repro.memory.memory_map import MemoryRegion
        return MemoryMap(address_width=self.cpu.addr_width, regions=[
            MemoryRegion("flash", 0, quarter // 2),
            MemoryRegion("sram", 2 * quarter, quarter // 4),
        ])

    # ------------------------------------------------------------------ #
    @classmethod
    def tiny(cls) -> "SoCConfig":
        return cls(cpu=CpuConfig.tiny())

    @classmethod
    def small(cls) -> "SoCConfig":
        return cls(cpu=CpuConfig.small())

    @classmethod
    def date13(cls) -> "SoCConfig":
        return cls(cpu=CpuConfig.date13(), memory_map=MemoryMap.date13_case_study())

    @classmethod
    def named_configs(cls) -> dict:
        """Name -> factory for every preset configuration."""
        return {"tiny": cls.tiny, "small": cls.small, "date13": cls.date13}

    @classmethod
    def from_name(cls, name: str) -> "SoCConfig":
        """Look up a preset configuration by name (CLI / scripting entry)."""
        try:
            return cls.named_configs()[name]()
        except KeyError:
            known = ", ".join(sorted(cls.named_configs()))
            raise ValueError(
                f"unknown SoC configuration {name!r}; available: {known}"
            ) from None

    def with_cpu(self, **overrides) -> "SoCConfig":
        """Return a copy with CPU parameters replaced (used by ablations)."""
        return SoCConfig(cpu=replace(self.cpu, **overrides),
                         memory_map=self.memory_map,
                         insert_scan=self.insert_scan)

    def with_axis(self, axis: str, value: object) -> "SoCConfig":
        """Return a copy with one scenario *axis* applied.

        Recognised axes:

        ``size`` (alias ``config``)
            A preset name (``tiny``/``small``/``date13``) or a
            :class:`CpuConfig` — replaces the CPU, keeping this config's
            memory map and scan choice.
        ``scan``
            ``bool`` toggles scan insertion; an ``int`` sets the number of
            scan chains (implying insertion).
        ``debug``
            ``bool`` — whether the core embeds the debug logic.
        ``memory_map``
            A :class:`MemoryMap` (or ``None`` to fall back to the derived
            default).
        ``insert_scan`` or ``cpu.<field>``
            Direct field overrides (e.g. ``cpu.mult_width``).
        """
        if axis in ("size", "config"):
            cpu = (self.from_name(value).cpu if isinstance(value, str)
                   else value)
            if not isinstance(cpu, CpuConfig):
                raise ValueError(
                    f"axis {axis!r} expects a preset name or CpuConfig, "
                    f"got {value!r}")
            return SoCConfig(cpu=cpu, memory_map=self.memory_map,
                             insert_scan=self.insert_scan)
        if axis == "scan":
            if isinstance(value, bool):
                return SoCConfig(cpu=self.cpu, memory_map=self.memory_map,
                                 insert_scan=value)
            if isinstance(value, int):
                return SoCConfig(cpu=replace(self.cpu, scan_chains=value),
                                 memory_map=self.memory_map, insert_scan=True)
            raise ValueError(
                f"axis 'scan' expects a bool or chain count, got {value!r}")
        if axis == "debug":
            return self.with_cpu(has_debug=bool(value))
        if axis == "memory_map":
            if value is not None and not isinstance(value, MemoryMap):
                raise ValueError(
                    f"axis 'memory_map' expects a MemoryMap or None (the "
                    f"derived default), got {value!r}")
            return SoCConfig(cpu=self.cpu, memory_map=value,
                             insert_scan=self.insert_scan)
        if axis == "insert_scan":
            return SoCConfig(cpu=self.cpu, memory_map=self.memory_map,
                             insert_scan=bool(value))
        if axis.startswith("cpu."):
            return self.with_cpu(**{axis[len("cpu."):]: value})
        raise ValueError(
            f"unknown scenario axis {axis!r}; expected size, scan, debug, "
            f"memory_map, insert_scan or cpu.<field>")


def axis_value_label(value: object) -> str:
    """A short, stable label for one axis value (used in scenario names)."""
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, CpuConfig):
        return value.name
    if isinstance(value, MemoryMap):
        return f"map{value.address_width}"
    if value is None:
        return "default"
    return getattr(value, "value", None) or str(value)


def expand_axes(base: SoCConfig,
                axes: Mapping[str, Sequence[object]]
                ) -> Iterator[Tuple[str, SoCConfig]]:
    """Expand a base config over config-level axes (cartesian product).

    Yields ``(label, config)`` pairs in deterministic order — axis order as
    given, values in their listed order.  An empty axis mapping yields the
    single degenerate point with an empty label.
    """
    names: List[str] = list(axes)
    for axis, values in axes.items():
        if not values:
            raise ValueError(f"scenario axis {axis!r} has no values")
    for point in itertools.product(*(axes[name] for name in names)):
        config = base
        parts = []
        for axis, value in zip(names, point):
            config = config.with_axis(axis, value)
            parts.append(f"{axis}={axis_value_label(value)}")
        yield ",".join(parts), config
