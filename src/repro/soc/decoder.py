"""Gate-level instruction decoder.

Synthesises, from the shared opcode table in :mod:`repro.isa`, one MUX-tree
function per control signal over the 5 opcode bits of the instruction
register.  The decoded signals drive the datapath, AGU, memory interface and
branch logic of the synthetic core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.isa.opcodes import CONTROL_SIGNAL_NAMES, control_signals_for
from repro.netlist.builder import NetlistBuilder
from repro.soc.generators import synthesize_function


@dataclass
class DecodedControls:
    """Net names of the decoded control signals."""

    signals: Dict[str, str] = field(default_factory=dict)

    def __getitem__(self, name: str) -> str:
        return self.signals[name]

    @property
    def alu_op(self) -> List[str]:
        return [self.signals["alu_op0"], self.signals["alu_op1"], self.signals["alu_op2"]]


def build_decoder(b: NetlistBuilder, opcode_bits: Sequence[str],
                  prefix: str = "dec") -> DecodedControls:
    """Generate the control decoder from the 5-bit opcode bus (LSB first)."""
    if len(opcode_bits) != 5:
        raise ValueError("the decoder expects a 5-bit opcode bus")

    controls = DecodedControls()
    for name in CONTROL_SIGNAL_NAMES:
        def truth(code: int, signal_name: str = name) -> int:
            return control_signals_for(code).as_dict()[signal_name]

        net = synthesize_function(b, opcode_bits, truth, prefix=f"{prefix}_{name}")
        # Give the decoded signal a stable, queryable net name.
        named = b.buf(net, output=b.new_net(f"{prefix}_{name}"))
        controls.signals[name] = named
    return controls
