"""Synthetic SoC / processor-core generators.

The paper's case study is an industrial automotive SoC with a 32-bit
embedded processor (e200z0-class), full scan, a Nexus-class debug interface
and a sparsely-populated 32-bit memory map.  That netlist is proprietary, so
this package generates a synthetic gate-level equivalent with the same
structural ingredients: register file, ALU with multiplier and barrel
shifter, address-generation unit, branch target buffer, pipeline registers,
instruction decoder, CPU-internal debug logic, mux-scan chains and the
mission memory map — everything the identification flow in
:mod:`repro.core` needs to exercise the same code paths as the paper.
"""

from repro.soc.config import CpuConfig, SoCConfig
from repro.soc.cpu import build_cpu_core
from repro.soc.soc_builder import SoC, build_soc

__all__ = [
    "CpuConfig",
    "SoCConfig",
    "build_cpu_core",
    "SoC",
    "build_soc",
]
