"""CPU-internal debug logic (Nexus/JTAG-class).

Generates the on-chip side of the debug interface the paper reasons about in
§3.2:

* a miniature IEEE 1149.1 TAP controller (16-state FSM) clocked from the
  JTAG port pins;
* a JTAG-fed debug data shift register;
* a control decoder turning the external debug request pins into internal
  halt / register-write / memory-request strobes;
* a hardware breakpoint comparator on the program counter;
* dedicated observation buffer trees that export general-purpose and
  special-purpose register values on debug-only output buses.

When the 17 external debug inputs are tied to their mission constants and
the observation buses are left floating, all of this logic becomes inert —
the faults inside it are exactly the on-line functionally untestable
population §3.2 identifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.netlist.builder import NetlistBuilder
from repro.soc.generators import (
    buffer_tree,
    equality_comparator,
    shift_register,
    synthesize_function,
)

# IEEE 1149.1 TAP state encoding and transition table (state, tms) -> state.
_TAP_STATES = {
    "TEST_LOGIC_RESET": 0, "RUN_TEST_IDLE": 1, "SELECT_DR": 2, "CAPTURE_DR": 3,
    "SHIFT_DR": 4, "EXIT1_DR": 5, "PAUSE_DR": 6, "EXIT2_DR": 7, "UPDATE_DR": 8,
    "SELECT_IR": 9, "CAPTURE_IR": 10, "SHIFT_IR": 11, "EXIT1_IR": 12,
    "PAUSE_IR": 13, "EXIT2_IR": 14, "UPDATE_IR": 15,
}

_TAP_TRANSITIONS = {
    "TEST_LOGIC_RESET": ("RUN_TEST_IDLE", "TEST_LOGIC_RESET"),
    "RUN_TEST_IDLE": ("RUN_TEST_IDLE", "SELECT_DR"),
    "SELECT_DR": ("CAPTURE_DR", "SELECT_IR"),
    "CAPTURE_DR": ("SHIFT_DR", "EXIT1_DR"),
    "SHIFT_DR": ("SHIFT_DR", "EXIT1_DR"),
    "EXIT1_DR": ("PAUSE_DR", "UPDATE_DR"),
    "PAUSE_DR": ("PAUSE_DR", "EXIT2_DR"),
    "EXIT2_DR": ("SHIFT_DR", "UPDATE_DR"),
    "UPDATE_DR": ("RUN_TEST_IDLE", "SELECT_DR"),
    "SELECT_IR": ("CAPTURE_IR", "TEST_LOGIC_RESET"),
    "CAPTURE_IR": ("SHIFT_IR", "EXIT1_IR"),
    "SHIFT_IR": ("SHIFT_IR", "EXIT1_IR"),
    "EXIT1_IR": ("PAUSE_IR", "UPDATE_IR"),
    "PAUSE_IR": ("PAUSE_IR", "EXIT2_IR"),
    "EXIT2_IR": ("SHIFT_IR", "UPDATE_IR"),
    "UPDATE_IR": ("RUN_TEST_IDLE", "SELECT_DR"),
}

_STATE_BY_CODE = {code: name for name, code in _TAP_STATES.items()}


def _tap_next_state(code: int, tms: int) -> int:
    name = _STATE_BY_CODE[code]
    return _TAP_STATES[_TAP_TRANSITIONS[name][tms]]


#: The 17 debug control inputs of the core and their mission-mode constants
#: (the values the pins are pulled to once the external debugger is removed).
DEBUG_CONTROL_PORTS: Dict[str, int] = {
    "jtag_tck": 0,
    "jtag_tms": 0,
    "jtag_tdi": 0,
    "jtag_trstn": 0,
    "dbg_enable": 0,
    "dbg_halt_req": 0,
    "dbg_resume": 0,
    "dbg_step": 0,
    "dbg_reg_we": 0,
    "dbg_sel0": 0,
    "dbg_sel1": 0,
    "dbg_sel2": 0,
    "dbg_sel3": 0,
    "dbg_bkpt_en": 0,
    "dbg_mem_req": 0,
    "dbg_reset_req": 0,
    "dbg_wdata_ser": 0,
}


@dataclass
class DebugLogic:
    """Handles to the generated debug block."""

    halt: str
    reg_write_enable: str
    reg_write_select: List[str]
    reg_write_data: List[str]
    mem_request: str
    observation_nets: Dict[str, List[str]] = field(default_factory=dict)
    tap_state: List[str] = field(default_factory=list)


def build_debug_logic(b: NetlistBuilder,
                      clk: str,
                      reset_n: str,
                      control_ports: Dict[str, str],
                      pc: Sequence[str],
                      gpr_observation_source: Sequence[str],
                      spr_observation_source: Sequence[str],
                      shift_length: int,
                      data_width: int,
                      prefix: str = "dbg") -> DebugLogic:
    """Generate the debug block.

    ``control_ports`` maps the logical names of :data:`DEBUG_CONTROL_PORTS`
    to the net names carrying them inside the netlist.
    """
    tck = control_ports["jtag_tck"]
    tms = control_ports["jtag_tms"]
    tdi = control_ports["jtag_tdi"]
    trstn = control_ports["jtag_trstn"]

    # TAP controller: 4 state flip-flops clocked from TCK, reset by TRSTN.
    state_q = [b.new_net(f"{prefix}_tap_q{i}") for i in range(4)]
    fsm_inputs = state_q + [tms]
    for bit in range(4):
        def truth(code: int, output_bit: int = bit) -> int:
            state = code & 0xF
            tms_value = (code >> 4) & 1
            return (_tap_next_state(state, tms_value) >> output_bit) & 1

        next_bit = synthesize_function(b, fsm_inputs, truth,
                                       prefix=f"{prefix}_tapns{bit}")
        b.dff(next_bit, tck, q=state_q[bit], reset_n=trstn,
              name=f"{prefix}_tap_ff{bit}")

    def state_decode(target: str) -> str:
        code = _TAP_STATES[target]
        bits = []
        for i in range(4):
            bits.append(state_q[i] if (code >> i) & 1 else b.inv(state_q[i]))
        return b.and_(*bits, output=b.new_net(f"{prefix}_is_{target.lower()}"))

    shift_dr = state_decode("SHIFT_DR")
    update_dr = state_decode("UPDATE_DR")

    enable = control_ports["dbg_enable"]

    # Debug data register: serial-in from TDI (or the dedicated serial pin),
    # shifted while the TAP sits in SHIFT_DR and debug is enabled.
    serial_in = b.gate("OR2", tdi, control_ports["dbg_wdata_ser"])
    shift_enable = b.and_(shift_dr, enable)
    ddr = shift_register(b, serial_in, clk, shift_enable, shift_length,
                         prefix=f"{prefix}_ddr", reset_n=reset_n)
    # Widen/narrow the debug data register to the datapath width.
    if shift_length >= data_width:
        reg_write_data = ddr[:data_width]
    else:
        zero = b.tie0()
        reg_write_data = list(ddr) + [zero] * (data_width - shift_length)

    # Control strobes.
    halt_request = b.and_(enable, control_ports["dbg_halt_req"])
    step_request = b.and_(enable, control_ports["dbg_step"])
    resume = b.and_(enable, control_ports["dbg_resume"])
    reset_request = b.and_(enable, control_ports["dbg_reset_req"])

    # Hardware breakpoint: compare the PC against the debug data register.
    compare_width = min(len(pc), shift_length)
    bkpt_match = equality_comparator(b, list(pc)[:compare_width],
                                     ddr[:compare_width], prefix=f"{prefix}_bkpt")
    bkpt_hit = b.and_(bkpt_match, control_ports["dbg_bkpt_en"], enable)

    halt_raw = b.or_(halt_request, bkpt_hit, reset_request)
    halt = b.and_(halt_raw, b.inv(resume), b.inv(step_request),
                  output=b.new_net(f"{prefix}_halt"))

    reg_write_enable = b.and_(enable, control_ports["dbg_reg_we"], update_dr,
                              output=b.new_net(f"{prefix}_reg_we"))
    reg_write_select = [control_ports["dbg_sel0"], control_ports["dbg_sel1"],
                        control_ports["dbg_sel2"], control_ports["dbg_sel3"]]
    mem_request = b.and_(enable, control_ports["dbg_mem_req"],
                         output=b.new_net(f"{prefix}_mem_req"))

    # Observation buffer trees (debug-only outputs).
    gpr_obs = buffer_tree(b, gpr_observation_source, prefix=f"{prefix}_gprobs")
    spr_obs = buffer_tree(b, spr_observation_source, prefix=f"{prefix}_sprobs")

    return DebugLogic(
        halt=halt,
        reg_write_enable=reg_write_enable,
        reg_write_select=reg_write_select,
        reg_write_data=reg_write_data,
        mem_request=mem_request,
        observation_nets={"gpr": gpr_obs, "spr": spr_obs},
        tap_state=state_q,
    )
