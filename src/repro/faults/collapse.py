"""Structural equivalence collapsing, delegated to the fault model.

The paper reports *uncollapsed* fault counts (that is what TetraMax prints by
default for coverage figures), but collapsing is a standard ATPG front-end
step and is used here for the ablation study: the on-line untestable fraction
is essentially unchanged whether counted on the collapsed or uncollapsed
universe.

Which faults are structurally equivalent depends on the fault model, so the
rules live with the model (:meth:`repro.faults.models.FaultModel
.equivalence_pairs`) and this module only runs the generic union-find:

* **stuck-at** — the classic gate-level equivalences: a gate-input fault
  that forces the controlled output value collapses onto the output fault
  (AND: in s-a-0 ≡ out s-a-0; NAND: in s-a-0 ≡ out s-a-1; ...), buffers and
  inverters collapse through (the inverter flipping polarity), and a
  fanout-free net merges its driver- and single-load-pin faults;
* **transition-delay** — only buffer/inverter chains (inverter swapping
  slow-to-rise with slow-to-fall) and fanout-free stem/branch pairs: the
  controlling-value rules are unsound once the two-pattern initialization
  condition is accounted for, so the same netlist collapses differently
  under the two models.

Class membership and representatives are deterministic: identical inputs
(netlist, fault order, model) produce identical classes in identical order,
independent of hash randomization.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.faults.faultlist import FaultList
from repro.faults.models import Fault, FaultModel, model_of, resolve_fault_model
from repro.netlist.module import Netlist


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Fault, Fault] = {}

    def find(self, x: Fault) -> Fault:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def equivalence_classes(netlist: Netlist, faults: Iterable[Fault],
                        model: Optional[FaultModel] = None
                        ) -> Dict[Fault, List[Fault]]:
    """Group faults into structural equivalence classes.

    Returns a mapping from class representative to the members of its
    class, in the order the faults were supplied.  Only faults present in
    ``faults`` participate.  ``model`` defaults to the model owning the
    first fault (every generated fault list is single-model).
    """
    ordered = list(dict.fromkeys(faults))
    present = set(ordered)
    if model is None:
        model = model_of(ordered[0]) if ordered else resolve_fault_model(None)

    uf = _UnionFind()
    for fault in ordered:
        uf.find(fault)
    for a, b in model.equivalence_pairs(netlist):
        if a in present and b in present:
            uf.union(a, b)

    classes: Dict[Fault, List[Fault]] = {}
    for fault in ordered:
        classes.setdefault(uf.find(fault), []).append(fault)
    return classes


def collapse_fault_list(netlist: Netlist, fault_list: FaultList,
                        model: Optional[FaultModel] = None) -> FaultList:
    """Return a collapsed fault list containing one representative per class."""
    classes = equivalence_classes(netlist, fault_list.faults(), model=model)
    collapsed = FaultList(netlist_name=fault_list.netlist_name)
    for representative in classes:
        collapsed.add(representative, fault_list.get_class(representative))
        source = fault_list.get_source(representative)
        if source is not None:
            collapsed.classify(representative,
                               fault_list.get_class(representative), source)
    return collapsed
