"""Structural equivalence collapsing of stuck-at faults.

The paper reports *uncollapsed* fault counts (that is what TetraMax prints by
default for coverage figures), but collapsing is a standard ATPG front-end
step and is used here for the ablation study: the on-line untestable fraction
is essentially unchanged whether counted on the collapsed or uncollapsed
universe.

Collapsing rules implemented (classic gate-level equivalences):

* a stuck-at fault on a gate *input* that forces the controlled output value
  is equivalent to the corresponding output fault
  (AND: in s-a-0 ≡ out s-a-0; OR: in s-a-1 ≡ out s-a-1;
  NAND: in s-a-0 ≡ out s-a-1; NOR: in s-a-1 ≡ out s-a-0);
* buffer: input s-a-v ≡ output s-a-v; inverter: input s-a-v ≡ output s-a-(1-v);
* a fanout-free net connects its driver-pin faults with its single load-pin
  faults (stem ≡ branch when there is exactly one branch).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.faults.fault import SA0, SA1, StuckAtFault
from repro.faults.faultlist import FaultList
from repro.netlist.module import Netlist


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[StuckAtFault, StuckAtFault] = {}

    def find(self, x: StuckAtFault) -> StuckAtFault:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: StuckAtFault, b: StuckAtFault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


# (cell prefix, input fault value, output fault value) equivalences.
_GATE_RULES: Dict[str, Tuple[int, int]] = {
    "AND": (SA0, SA0),
    "NAND": (SA0, SA1),
    "OR": (SA1, SA1),
    "NOR": (SA1, SA0),
}


def _base_cell(cell_name: str) -> str:
    return cell_name.rstrip("0123456789")


def equivalence_classes(netlist: Netlist,
                        faults: Iterable[StuckAtFault]) -> Dict[StuckAtFault, List[StuckAtFault]]:
    """Group faults into structural equivalence classes.

    Returns a mapping from class representative to the members of its class.
    Only faults present in ``faults`` participate.
    """
    present = set(faults)
    uf = _UnionFind()
    for fault in present:
        uf.find(fault)

    def maybe_union(a: StuckAtFault, b: StuckAtFault) -> None:
        if a in present and b in present:
            uf.union(a, b)

    for inst in netlist.instances.values():
        base = _base_cell(inst.cell.name)
        if inst.is_sequential:
            continue
        out_pins = inst.output_pins()
        if len(out_pins) != 1:
            continue
        out = out_pins[0]
        if base == "BUF":
            for value in (SA0, SA1):
                maybe_union(StuckAtFault(out.name, value),
                            StuckAtFault(inst.pin("A").name, value))
        elif base == "INV":
            for value in (SA0, SA1):
                maybe_union(StuckAtFault(out.name, value),
                            StuckAtFault(inst.pin("A").name, 1 - value))
        elif base in _GATE_RULES:
            in_value, out_value = _GATE_RULES[base]
            for pin in inst.input_pins():
                maybe_union(StuckAtFault(out.name, out_value),
                            StuckAtFault(pin.name, in_value))

    # Stem/branch equivalence on fanout-free nets.
    for net in netlist.nets.values():
        if len(net.loads) != 1 or net.driver is None:
            continue
        load = net.loads[0]
        for value in (SA0, SA1):
            maybe_union(StuckAtFault(net.driver.name, value),
                        StuckAtFault(load.name, value))

    classes: Dict[StuckAtFault, List[StuckAtFault]] = {}
    for fault in present:
        classes.setdefault(uf.find(fault), []).append(fault)
    return classes


def collapse_fault_list(netlist: Netlist, fault_list: FaultList) -> FaultList:
    """Return a collapsed fault list containing one representative per class."""
    classes = equivalence_classes(netlist, fault_list.faults())
    collapsed = FaultList(netlist_name=fault_list.netlist_name)
    for representative in classes:
        collapsed.add(representative, fault_list.get_class(representative))
        source = fault_list.get_source(representative)
        if source is not None:
            collapsed.classify(representative,
                               fault_list.get_class(representative), source)
    return collapsed
