"""The single stuck-at fault model.

Fault sites follow the pin-fault convention used by commercial ATPG tools
(and by the fault counts in the paper): every pin of every cell instance and
every module port is a site, and each site carries a stuck-at-0 and a
stuck-at-1 fault.  A site is identified by a string:

* ``"u_alu_add_7/A"`` — pin ``A`` of instance ``u_alu_add_7``;
* ``"dbg_jtag_tck"`` — a module port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netlist.module import Netlist, Pin

SA0 = 0
SA1 = 1


def site_is_port(site: str) -> bool:
    """Is a fault-site string a module port (vs an ``instance/PIN`` pin)?"""
    return "/" not in site


def site_instance_name(site: str) -> Optional[str]:
    """Instance part of a pin site (None for port sites)."""
    if site_is_port(site):
        return None
    return site.rpartition("/")[0]


def site_pin_name(site: str) -> Optional[str]:
    """Pin part of a pin site (None for port sites)."""
    if site_is_port(site):
        return None
    return site.rpartition("/")[2]


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault at a pin or port site."""

    site: str
    value: int  # SA0 or SA1

    def __post_init__(self) -> None:
        if self.value not in (SA0, SA1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {self.value!r}")

    @property
    def is_port_fault(self) -> bool:
        return site_is_port(self.site)

    @property
    def instance_name(self) -> Optional[str]:
        return site_instance_name(self.site)

    @property
    def pin_name(self) -> Optional[str]:
        return site_pin_name(self.site)

    def __str__(self) -> str:
        return f"{self.site} s-a-{self.value}"

    @classmethod
    def parse(cls, text: str) -> "StuckAtFault":
        """Parse the ``"site s-a-V"`` form produced by :meth:`__str__`."""
        site, _, tail = text.rpartition(" s-a-")
        if not site or tail not in ("0", "1"):
            raise ValueError(
                f"cannot parse stuck-at fault from {text!r}: expected "
                f"'<site> s-a-0' or '<site> s-a-1', where <site> is "
                f"'<instance>/<PIN>' or '<port>' — e.g. "
                f"'u_alu_add_7/A s-a-0'")
        return cls(site=site, value=int(tail))


def fault_site_pin(netlist: Netlist, fault: StuckAtFault) -> Optional[Pin]:
    """Resolve a fault site to its :class:`Pin` (None for port faults)."""
    if fault.is_port_fault:
        return None
    return netlist.pin_by_name(fault.site)


def fault_site_net(netlist: Netlist, fault: StuckAtFault) -> Optional[str]:
    """Name of the net the fault site lies on (None if the pin is unconnected)."""
    if fault.is_port_fault:
        return fault.site if fault.site in netlist.nets else None
    pin = netlist.pin_by_name(fault.site)
    return pin.net.name if pin.net is not None else None
