"""Fault classification taxonomy.

:class:`FaultClass` mirrors the classes a commercial ATPG tool (the paper
uses Synopsys TetraMax) assigns during test generation and untestability
analysis; :class:`OnlineUntestableSource` records *why* a fault was declared
on-line functionally untestable — the three sources studied in the paper
(scan, debug, memory map) plus the sub-split of debug into control and
observation used in Table I.
"""

from __future__ import annotations

from enum import Enum


class FaultClass(str, Enum):
    """ATPG-style fault classes."""

    #: Not yet classified.
    NC = "NC"
    #: Detected by a test pattern (fault simulation or ATPG).
    DT = "DT"
    #: Possibly detected (detected only through an X-valued output).
    PT = "PT"
    #: Proven untestable by exhaustive search (redundant logic).
    UU = "UU"
    #: Untestable because of a tied (constant) value — the class the paper's
    #: circuit-manipulation step turns on-line untestable faults into.
    UT = "UT"
    #: Untestable because all propagation paths are blocked by constants.
    UB = "UB"
    #: Untestable because the fault effect cannot reach any observation point
    #: (e.g. the logic only feeds a floating debug output).
    UO = "UO"
    #: ATPG gave up (backtrack limit) — not proven either way.
    AU = "AU"
    #: Not detected by the supplied patterns (fault-simulation only runs).
    ND = "ND"

    @property
    def is_untestable(self) -> bool:
        return self in _UNTESTABLE

    @property
    def is_detected(self) -> bool:
        return self in (FaultClass.DT, FaultClass.PT)


_UNTESTABLE = frozenset(
    {FaultClass.UU, FaultClass.UT, FaultClass.UB, FaultClass.UO}
)


class OnlineUntestableSource(str, Enum):
    """Source of on-line functional untestability (paper §3.1–§3.3)."""

    #: Scan-chain circuitry (SI/SE pins, scan-path buffers) — §3.1.
    SCAN = "scan"
    #: Debug control logic tied to its mission-mode constant — §3.2.1.
    DEBUG_CONTROL = "debug_control"
    #: Debug observation logic left floating — §3.2.2.
    DEBUG_OBSERVE = "debug_observe"
    #: Address bits frozen by the mission memory map — §3.3.
    MEMORY_MAP = "memory_map"
    #: Structurally untestable already in the original circuit (baseline).
    STRUCTURAL = "structural"

    @property
    def table_row(self) -> str:
        """Row label used in the Table-I style summary."""
        if self in (OnlineUntestableSource.DEBUG_CONTROL,
                    OnlineUntestableSource.DEBUG_OBSERVE):
            return "Debug"
        if self is OnlineUntestableSource.SCAN:
            return "Scan"
        if self is OnlineUntestableSource.MEMORY_MAP:
            return "Memory"
        return "Original"


#: First-source attribution order used by Table I: each on-line untestable
#: fault is credited to the first source that identifies it, scanning the
#: sources in this fixed order regardless of how the analyses were scheduled.
PAPER_SOURCE_ORDER = (
    OnlineUntestableSource.SCAN,
    OnlineUntestableSource.DEBUG_CONTROL,
    OnlineUntestableSource.DEBUG_OBSERVE,
    OnlineUntestableSource.MEMORY_MAP,
)


def source_label(source: object) -> str:
    """Human-readable label for a source (enum member or custom string)."""
    return getattr(source, "value", None) or str(source)
