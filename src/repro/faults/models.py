"""Pluggable fault models: site enumeration, injection, detection, collapse.

The paper's methodology is defined over fault *classes*, not over stuck-at
faults specifically — the identification flow, the simulators and the ATPG
engine only need a handful of per-model answers:

* which faults live at a pin/port *site* (site enumeration);
* how a fault perturbs the machine (an :class:`InjectionSpec`: the value
  forced at the site in the capture frame, and — for two-pattern models —
  the value the site must hold in the preceding frame);
* when a tied constant makes a fault unexcitable (detection semantics
  under circuit manipulation);
* which structural equivalences collapse the fault universe;
* how a fault is written and parsed (``"u1/A s-a-0"``, ``"u1/A str"``).

:class:`FaultModel` packages those answers; :data:`STUCK_AT` is the
refactored single stuck-at default and :data:`TRANSITION` adds
launch-on-capture transition-delay faults (slow-to-rise / slow-to-fall).
The execution layer (:mod:`repro.simulation`), PODEM, the tie analysis and
the collapse rules all dispatch through the model, so adding a fault model
never touches the kernels.

Every model registers itself in a process-global registry; configuration
surfaces (``FlowConfig.fault_model``, the ``--fault-model`` CLI flag, the
``fault_model`` scenario axis) name models by their registry key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.registry import Registry
from repro.faults.fault import (SA0, SA1, StuckAtFault, site_instance_name,
                                site_is_port, site_pin_name)
from repro.netlist.module import Netlist

#: Transition-fault polarities (classic launch-on-capture abbreviations).
SLOW_TO_RISE = "str"
SLOW_TO_FALL = "stf"


@dataclass(frozen=True, order=True)
class TransitionFault:
    """A transition-delay fault at a pin or port site.

    ``polarity`` is ``"str"`` (slow-to-rise: the 0→1 transition arrives
    late) or ``"stf"`` (slow-to-fall).  Under the launch-on-capture
    approximation the site behaves, in the capture frame, as if stuck at
    the value it failed to leave — exposed as :attr:`value` so the
    injection kernels treat both models uniformly.
    """

    site: str
    polarity: str

    def __post_init__(self) -> None:
        if self.polarity not in (SLOW_TO_RISE, SLOW_TO_FALL):
            raise ValueError(
                f"transition polarity must be {SLOW_TO_RISE!r} "
                f"(slow-to-rise) or {SLOW_TO_FALL!r} (slow-to-fall), "
                f"got {self.polarity!r}")

    @property
    def value(self) -> int:
        """The late value: what the site still shows in the capture frame."""
        return 0 if self.polarity == SLOW_TO_RISE else 1

    @property
    def is_port_fault(self) -> bool:
        return site_is_port(self.site)

    @property
    def instance_name(self) -> Optional[str]:
        return site_instance_name(self.site)

    @property
    def pin_name(self) -> Optional[str]:
        return site_pin_name(self.site)

    def __str__(self) -> str:
        return f"{self.site} {self.polarity}"

    @classmethod
    def parse(cls, text: str) -> "TransitionFault":
        """Parse the ``"site str"`` / ``"site stf"`` form of :meth:`__str__`."""
        site, _, tail = text.strip().rpartition(" ")
        if not site or tail not in (SLOW_TO_RISE, SLOW_TO_FALL):
            raise ValueError(
                f"cannot parse transition fault from {text!r}: expected "
                f"'<site> str' (slow-to-rise) or '<site> stf' "
                f"(slow-to-fall), where <site> is '<instance>/<PIN>' or "
                f"'<port>' — e.g. 'u_alu_add_7/A str'")
        return cls(site=site, polarity=tail)


#: Any fault object a registered model owns.
Fault = Union[StuckAtFault, TransitionFault]


@dataclass(frozen=True)
class InjectionSpec:
    """How a fault perturbs (and is detected on) the compiled machine.

    ``stuck_value`` is the value forced at the site in the capture frame —
    the only frame the combinational kernels simulate.  ``frames`` is 1 for
    single-pattern models and 2 for launch-on-capture models, whose
    detection additionally requires the site's *good* value in the
    preceding pattern to equal ``init_value`` (the initialization
    condition); the kernels express that as a pattern-pair mask.
    """

    stuck_value: int
    frames: int = 1
    init_value: Optional[int] = None


class FaultModel:
    """One fault model: enumeration, algebra, semantics, serialization."""

    #: Registry key (``"stuck_at"``, ``"transition"``, ...).
    name: str = ""
    #: Human wording used by the Table-I title ("stuck-at faults").
    label: str = ""
    #: The fault dataclass this model owns.
    fault_type: type = object
    #: Time frames one detection needs (1 = single pattern, 2 = pair).
    frames: int = 1

    # -- site enumeration ---------------------------------------------- #
    def site_faults(self, site: str) -> Tuple[Fault, ...]:
        """Every fault of this model living at one pin/port site."""
        raise NotImplementedError

    def constant_site_faults(self, site: str, value: int) -> Tuple[Fault, ...]:
        """The faults rendered on-line untestable when ``site`` is held at
        ``value`` for the whole mission (e.g. a scan enable parked at its
        functional level)."""
        raise NotImplementedError

    def generate(self, netlist: Netlist, include_ports: bool = True,
                 include_unconnected: bool = False) -> List[Fault]:
        """The uncollapsed pin-fault universe of a netlist for this model."""
        faults: List[Fault] = []
        for inst in netlist.instances.values():
            for pin in inst.pins.values():
                if pin.net is None and not include_unconnected:
                    continue
                faults.extend(self.site_faults(pin.name))
        if include_ports:
            for port in netlist.ports:
                faults.extend(self.site_faults(port))
        return faults

    # -- semantics ------------------------------------------------------ #
    def injection(self, fault: Fault) -> InjectionSpec:
        """The injection/detection spec the simulation kernels consume."""
        raise NotImplementedError

    def excitation_blocked(self, fault: Fault, constant: int) -> bool:
        """Is the fault unexcitable when its site is held at ``constant``?"""
        raise NotImplementedError

    # -- collapsing ----------------------------------------------------- #
    def equivalence_pairs(self, netlist: Netlist
                          ) -> Iterator[Tuple[Fault, Fault]]:
        """Structurally equivalent fault pairs (drives the union-find in
        :func:`repro.faults.collapse.equivalence_classes`)."""
        raise NotImplementedError

    # -- serialization -------------------------------------------------- #
    def format(self, fault: Fault) -> str:
        return str(fault)

    def parse(self, text: str) -> Fault:
        raise NotImplementedError

    def owns(self, fault: object) -> bool:
        return isinstance(fault, self.fault_type)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<FaultModel {self.name}>"


def _base_cell(cell_name: str) -> str:
    return cell_name.rstrip("0123456789")


# (cell family, input fault value, output fault value) equivalences.
_GATE_RULES: Dict[str, Tuple[int, int]] = {
    "AND": (SA0, SA0),
    "NAND": (SA0, SA1),
    "OR": (SA1, SA1),
    "NOR": (SA1, SA0),
}


def _single_output_gates(netlist: Netlist):
    """Combinational single-output instances, with their cell family."""
    for inst in netlist.instances.values():
        if inst.is_sequential:
            continue
        out_pins = inst.output_pins()
        if len(out_pins) != 1:
            continue
        yield inst, _base_cell(inst.cell.name), out_pins[0]


def _fanout_free_nets(netlist: Netlist):
    """Nets with a driver and exactly one load (stem ≡ branch)."""
    for net in netlist.nets.values():
        if len(net.loads) == 1 and net.driver is not None:
            yield net.driver, net.loads[0]


class StuckAtModel(FaultModel):
    """The classic single stuck-at model (the paper's fault universe)."""

    name = "stuck_at"
    label = "stuck-at"
    fault_type = StuckAtFault
    frames = 1

    def site_faults(self, site: str) -> Tuple[StuckAtFault, ...]:
        return (StuckAtFault(site, SA0), StuckAtFault(site, SA1))

    def constant_site_faults(self, site: str,
                             value: int) -> Tuple[StuckAtFault, ...]:
        # Only the stuck-at matching the held value is hidden; the opposite
        # fault corrupts mission behaviour and stays very much testable.
        return (StuckAtFault(site, value),)

    _SPECS = (InjectionSpec(stuck_value=0, frames=1),
              InjectionSpec(stuck_value=1, frames=1))

    def injection(self, fault: StuckAtFault) -> InjectionSpec:
        # Site-independent, so the two possible specs are shared.
        return self._SPECS[fault.value]

    def excitation_blocked(self, fault: StuckAtFault, constant: int) -> bool:
        return constant == fault.value

    def equivalence_pairs(self, netlist: Netlist):
        for inst, base, out in _single_output_gates(netlist):
            if base == "BUF":
                for value in (SA0, SA1):
                    yield (StuckAtFault(out.name, value),
                           StuckAtFault(inst.pin("A").name, value))
            elif base == "INV":
                for value in (SA0, SA1):
                    yield (StuckAtFault(out.name, value),
                           StuckAtFault(inst.pin("A").name, 1 - value))
            elif base in _GATE_RULES:
                in_value, out_value = _GATE_RULES[base]
                for pin in inst.input_pins():
                    yield (StuckAtFault(out.name, out_value),
                           StuckAtFault(pin.name, in_value))
        for driver, load in _fanout_free_nets(netlist):
            for value in (SA0, SA1):
                yield (StuckAtFault(driver.name, value),
                       StuckAtFault(load.name, value))

    def parse(self, text: str) -> StuckAtFault:
        return StuckAtFault.parse(text)


class TransitionDelayModel(FaultModel):
    """Launch-on-capture transition-delay faults (slow-to-rise/fall).

    Detection of ``site str`` by the consecutive pattern pair ``(v1, v2)``
    requires ``v1`` to set the site to 0 (initialization) and ``v2`` to
    detect the site stuck-at-0 (launch + propagate) — the standard
    two-pattern approximation, which is what lets every single-pattern
    kernel be reused with one extra pair mask.

    Collapsing is deliberately more conservative than stuck-at: the
    controlling-value gate rules do not carry over (a slow input transition
    is not equivalent to a slow output transition once the initialization
    condition is accounted for), so only buffer/inverter chains (the
    inverter swaps polarity) and fanout-free stem/branch pairs collapse.
    """

    name = "transition"
    label = "transition-delay"
    fault_type = TransitionFault
    frames = 2

    def site_faults(self, site: str) -> Tuple[TransitionFault, ...]:
        return (TransitionFault(site, SLOW_TO_RISE),
                TransitionFault(site, SLOW_TO_FALL))

    def constant_site_faults(self, site: str,
                             value: int) -> Tuple[TransitionFault, ...]:
        # A site held constant never transitions at all, so *both*
        # polarities are hidden from the mission.
        return self.site_faults(site)

    _SPECS = (InjectionSpec(stuck_value=0, frames=2, init_value=0),
              InjectionSpec(stuck_value=1, frames=2, init_value=1))

    def injection(self, fault: TransitionFault) -> InjectionSpec:
        # The late value doubles as the initialization value: slow-to-rise
        # needs a 0 in the launch frame and shows a 0 in the capture frame
        # — site-independent, so the two possible specs are shared.
        return self._SPECS[fault.value]

    def excitation_blocked(self, fault: TransitionFault,
                           constant: int) -> bool:
        # Any constant kills both transitions: a held net never toggles.
        return True

    def equivalence_pairs(self, netlist: Netlist):
        for inst, base, out in _single_output_gates(netlist):
            if base == "BUF":
                for polarity in (SLOW_TO_RISE, SLOW_TO_FALL):
                    yield (TransitionFault(out.name, polarity),
                           TransitionFault(inst.pin("A").name, polarity))
            elif base == "INV":
                yield (TransitionFault(out.name, SLOW_TO_RISE),
                       TransitionFault(inst.pin("A").name, SLOW_TO_FALL))
                yield (TransitionFault(out.name, SLOW_TO_FALL),
                       TransitionFault(inst.pin("A").name, SLOW_TO_RISE))
        for driver, load in _fanout_free_nets(netlist):
            for polarity in (SLOW_TO_RISE, SLOW_TO_FALL):
                yield (TransitionFault(driver.name, polarity),
                       TransitionFault(load.name, polarity))

    def parse(self, text: str) -> TransitionFault:
        return TransitionFault.parse(text)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
_MODELS: Registry = Registry("fault model")
#: Fast dispatch table for :func:`model_of` (fault type -> owning model).
_MODELS_BY_TYPE: Dict[type, FaultModel] = {}


def register_fault_model(model: FaultModel) -> FaultModel:
    """Register a model under its :attr:`~FaultModel.name`; returns it."""
    if not model.name:
        raise ValueError("fault model must define a non-empty name")
    _MODELS.register(model.name, model)
    if isinstance(model.fault_type, type) and model.fault_type is not object:
        _MODELS_BY_TYPE[model.fault_type] = model
    return model


STUCK_AT = register_fault_model(StuckAtModel())
TRANSITION = register_fault_model(TransitionDelayModel())

#: Registry key of the default model (the paper's universe).
DEFAULT_FAULT_MODEL = STUCK_AT.name


def fault_model_names() -> Tuple[str, ...]:
    """Registered model names, registration order."""
    return _MODELS.names()


def get_fault_model(name: str) -> FaultModel:
    return _MODELS.resolve(name)


def resolve_fault_model(spec: Union[str, FaultModel, None],
                        default: Optional[FaultModel] = None) -> FaultModel:
    """Coerce a model spec (instance, registry name or None) to a model.

    The single parser shared by :class:`repro.core.results.FlowConfig`,
    the Session defaults, the scenario-grid axis and the CLI.  ``None``
    resolves to ``default`` (or the stuck-at model).
    """
    if spec is None:
        return default if default is not None else STUCK_AT
    if isinstance(spec, FaultModel):
        return spec
    return get_fault_model(str(spec).strip().lower())


def model_of(fault: object) -> FaultModel:
    """The registered model owning a fault object (dispatch on type).

    An exact-type table serves the hot per-fault loops (tie analysis, the
    simulation kernels) in O(1); subclasses fall back to an ``owns`` scan.
    """
    model = _MODELS_BY_TYPE.get(type(fault))
    if model is not None:
        return model
    for model in _MODELS.values():
        if model.owns(fault):
            return model
    raise TypeError(
        f"no registered fault model owns {type(fault).__name__} objects")


def resolve_injection(fault: Fault) -> InjectionSpec:
    """Shorthand: the injection spec of a fault under its owning model."""
    return model_of(fault).injection(fault)


def parse_fault(text: str) -> Fault:
    """Parse a serialized fault of *any* registered model.

    Models are tried in registration order; the combined error lists every
    grammar so a typo in a persisted fault list is actionable.
    """
    errors: List[str] = []
    for model in _MODELS.values():
        try:
            return model.parse(text)
        except ValueError as exc:
            errors.append(str(exc))
    raise ValueError(
        f"cannot parse fault from {text!r} under any registered model "
        f"({', '.join(_MODELS)}):\n  - " + "\n  - ".join(errors))
