"""Fault-list container: generation, classification bookkeeping, pruning.

A :class:`FaultList` is the central object the identification flow operates
on.  It tracks, per fault, an ATPG-style :class:`~repro.faults.categories.FaultClass`
and (when applicable) the on-line untestability source that caused the fault
to be pruned, so the Table-I style report can be produced directly from it.

The container is model-agnostic: it holds whatever fault objects the
selected :class:`~repro.faults.models.FaultModel` enumerates (stuck-at by
default), and serialization round-trips through the model-dispatching
parser, so persisted lists of any model restore losslessly.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.faults.categories import FaultClass, OnlineUntestableSource
from repro.faults.models import (Fault, FaultModel, parse_fault,
                                 resolve_fault_model)
from repro.netlist.module import Netlist


def generate_fault_list(netlist: Netlist,
                        include_ports: bool = True,
                        include_unconnected: bool = False,
                        model: Union[str, FaultModel, None] = None
                        ) -> "FaultList":
    """Create the uncollapsed pin-fault universe of a netlist.

    Site enumeration is delegated to the fault model (default: single
    stuck-at — two faults per instance pin and, when ``include_ports`` is
    set, per module port).  Pins left unconnected are skipped unless
    ``include_unconnected`` is set (an unconnected pin has no observable
    behaviour at all).
    """
    resolved = resolve_fault_model(model)
    faults = resolved.generate(netlist, include_ports=include_ports,
                               include_unconnected=include_unconnected)
    return FaultList(faults, netlist_name=netlist.name)


class FaultList:
    """An ordered collection of faults (any model) with classification state."""

    def __init__(self, faults: Iterable[Fault] = (),
                 netlist_name: str = "") -> None:
        self.netlist_name = netlist_name
        self._faults: Dict[Fault, FaultClass] = {}
        self._sources: Dict[Fault, OnlineUntestableSource] = {}
        for f in faults:
            self._faults.setdefault(f, FaultClass.NC)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def __contains__(self, fault: Fault) -> bool:
        return fault in self._faults

    def add(self, fault: Fault,
            fault_class: FaultClass = FaultClass.NC) -> None:
        self._faults.setdefault(fault, fault_class)

    def faults(self) -> List[Fault]:
        return list(self._faults)

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #
    def classify(self, fault: Fault, fault_class: FaultClass,
                 source: Optional[OnlineUntestableSource] = None) -> None:
        if fault not in self._faults:
            raise KeyError(f"fault {fault} not in fault list")
        self._faults[fault] = fault_class
        if source is not None:
            self._sources[fault] = source

    def classify_many(self, faults: Iterable[Fault],
                      fault_class: FaultClass,
                      source: Optional[OnlineUntestableSource] = None) -> int:
        """Classify every listed fault that is present; returns how many were."""
        count = 0
        for fault in faults:
            if fault in self._faults:
                self.classify(fault, fault_class, source)
                count += 1
        return count

    def get_class(self, fault: Fault) -> FaultClass:
        return self._faults[fault]

    def get_source(self, fault: Fault) -> Optional[OnlineUntestableSource]:
        return self._sources.get(fault)

    def with_class(self, *classes: FaultClass) -> List[Fault]:
        wanted = set(classes)
        return [f for f, c in self._faults.items() if c in wanted]

    def with_source(self, *sources: OnlineUntestableSource) -> List[Fault]:
        wanted = set(sources)
        return [f for f in self._faults if self._sources.get(f) in wanted]

    def unclassified(self) -> List[Fault]:
        return self.with_class(FaultClass.NC)

    def untestable(self) -> List[Fault]:
        return [f for f, c in self._faults.items() if c.is_untestable]

    def detected(self) -> List[Fault]:
        return [f for f, c in self._faults.items() if c.is_detected]

    # ------------------------------------------------------------------ #
    # pruning and set operations
    # ------------------------------------------------------------------ #
    def prune(self, faults: Iterable[Fault]) -> "FaultList":
        """Return a new fault list with the given faults removed."""
        drop = set(faults)
        remaining = FaultList(netlist_name=self.netlist_name)
        for fault, cls in self._faults.items():
            if fault in drop:
                continue
            remaining._faults[fault] = cls
            if fault in self._sources:
                remaining._sources[fault] = self._sources[fault]
        return remaining

    def restrict_to_sites(self, predicate: Callable[[str], bool]) -> "FaultList":
        """Return the sub-list whose sites satisfy ``predicate``."""
        subset = FaultList(netlist_name=self.netlist_name)
        for fault, cls in self._faults.items():
            if predicate(fault.site):
                subset._faults[fault] = cls
                if fault in self._sources:
                    subset._sources[fault] = self._sources[fault]
        return subset

    def difference(self, other: "FaultList") -> List[Fault]:
        """Faults present here but not in ``other`` (order preserved)."""
        return [f for f in self._faults if f not in other]

    # ------------------------------------------------------------------ #
    # statistics and reporting
    # ------------------------------------------------------------------ #
    def class_counts(self) -> Counter:
        return Counter(self._faults.values())

    def source_counts(self) -> Counter:
        return Counter(self._sources.values())

    def coverage(self, exclude_untestable: bool = True) -> float:
        """Stuck-at fault coverage: detected / (total - untestable).

        With ``exclude_untestable`` the denominator excludes every fault
        proven untestable — the "testable fault coverage" figure the paper
        argues is the right metric once on-line untestable faults are pruned.
        """
        total = len(self._faults)
        detected = sum(1 for c in self._faults.values() if c.is_detected)
        if exclude_untestable:
            total -= sum(1 for c in self._faults.values() if c.is_untestable)
        if total <= 0:
            return 0.0
        return detected / total

    def group_by_prefix(self, depth: int = 1) -> Dict[str, int]:
        """Fault counts grouped by hierarchical instance-name prefix."""
        groups: Counter = Counter()
        for fault in self._faults:
            inst = fault.instance_name or "<ports>"
            prefix = ".".join(inst.split(".")[:depth])
            groups[prefix] += 1
        return dict(groups)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_lines(self) -> List[str]:
        """Serialise in a simple text format (one fault per line)."""
        lines = []
        for fault, cls in self._faults.items():
            source = self._sources.get(fault)
            tail = f" {source.value}" if source is not None else ""
            lines.append(f"{cls.value} {fault}{tail}")
        return lines

    @classmethod
    def from_lines(cls, lines: Iterable[str],
                   netlist_name: str = "") -> "FaultList":
        result = cls(netlist_name=netlist_name)
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(" ", 1)
            fault_class = FaultClass(parts[0])
            rest = parts[1]
            source = None
            for candidate in OnlineUntestableSource:
                if rest.endswith(" " + candidate.value):
                    source = candidate
                    rest = rest[: -len(candidate.value) - 1]
                    break
            fault = parse_fault(rest.strip())
            result._faults[fault] = fault_class
            if source is not None:
                result._sources[fault] = source
        return result

    def summary(self) -> Dict[str, int]:
        counts = self.class_counts()
        return {
            "total": len(self._faults),
            "detected": sum(counts.get(c, 0) for c in (FaultClass.DT, FaultClass.PT)),
            "untestable": sum(counts.get(c, 0) for c in
                              (FaultClass.UU, FaultClass.UT, FaultClass.UB, FaultClass.UO)),
            "abandoned": counts.get(FaultClass.AU, 0),
            "not_detected": counts.get(FaultClass.ND, 0),
            "unclassified": counts.get(FaultClass.NC, 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.summary()
        return (f"FaultList({self.netlist_name}, total={s['total']}, "
                f"untestable={s['untestable']}, detected={s['detected']})")
