"""Fault models, fault lists, classification taxonomy and collapsing."""

from repro.faults.fault import SA0, SA1, StuckAtFault, fault_site_net, fault_site_pin
from repro.faults.categories import FaultClass, OnlineUntestableSource
from repro.faults.models import (
    DEFAULT_FAULT_MODEL,
    SLOW_TO_FALL,
    SLOW_TO_RISE,
    STUCK_AT,
    TRANSITION,
    FaultModel,
    InjectionSpec,
    StuckAtModel,
    TransitionDelayModel,
    TransitionFault,
    fault_model_names,
    get_fault_model,
    model_of,
    parse_fault,
    register_fault_model,
    resolve_fault_model,
    resolve_injection,
)
from repro.faults.faultlist import FaultList, generate_fault_list
from repro.faults.collapse import collapse_fault_list, equivalence_classes

__all__ = [
    "SA0",
    "SA1",
    "SLOW_TO_RISE",
    "SLOW_TO_FALL",
    "StuckAtFault",
    "TransitionFault",
    "fault_site_net",
    "fault_site_pin",
    "FaultClass",
    "OnlineUntestableSource",
    "FaultModel",
    "InjectionSpec",
    "StuckAtModel",
    "TransitionDelayModel",
    "STUCK_AT",
    "TRANSITION",
    "DEFAULT_FAULT_MODEL",
    "register_fault_model",
    "fault_model_names",
    "get_fault_model",
    "resolve_fault_model",
    "model_of",
    "resolve_injection",
    "parse_fault",
    "FaultList",
    "generate_fault_list",
    "collapse_fault_list",
    "equivalence_classes",
]
