"""Stuck-at fault model, fault lists, classification taxonomy and collapsing."""

from repro.faults.fault import SA0, SA1, StuckAtFault, fault_site_net, fault_site_pin
from repro.faults.categories import FaultClass, OnlineUntestableSource
from repro.faults.faultlist import FaultList, generate_fault_list
from repro.faults.collapse import collapse_fault_list, equivalence_classes

__all__ = [
    "SA0",
    "SA1",
    "StuckAtFault",
    "fault_site_net",
    "fault_site_pin",
    "FaultClass",
    "OnlineUntestableSource",
    "FaultList",
    "generate_fault_list",
    "collapse_fault_list",
    "equivalence_classes",
]
