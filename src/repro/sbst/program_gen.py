"""SBST test-program generation.

Generates a deterministic suite of small self-test programs in the spirit of
the classic SBST literature the paper builds on: register-file march
sequences, ALU operation sweeps with complementary operand patterns,
branch/BTB exercising kernels and load/store address walks.  Each program is
a list of instruction words (plus the assembly text for inspection) ready to
be fed to the gate-level core's instruction port or to the ISA model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.opcodes import Opcode
from repro.sbst.assembler import assemble
from repro.soc.config import CpuConfig
from repro.utils.bitvec import mask


@dataclass
class SbstProgram:
    """One generated self-test program."""

    name: str
    source: str
    words: List[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.words)


def _alternating(width: int, phase: int) -> int:
    pattern = 0
    for bit in range(width):
        if (bit + phase) % 2 == 0:
            pattern |= 1 << bit
    return pattern


def _register_march(config: CpuConfig) -> str:
    """March through every register with complementary data patterns."""
    imm_width = config.instr_width - 5 - 3 * config.register_select_bits
    lines = []
    checker = _alternating(imm_width, 0) & mask(imm_width)
    inverse = _alternating(imm_width, 1) & mask(imm_width)
    for reg in range(1, config.n_registers):
        lines.append(f"movi r{reg}, {checker}")
    for reg in range(1, config.n_registers):
        lines.append(f"xor r{reg}, r{reg}, r{(reg % (config.n_registers - 1)) + 1}")
    for reg in range(1, config.n_registers):
        lines.append(f"movi r{reg}, {inverse}")
        lines.append(f"store r0, r{reg}, {reg % 8}")
    lines.append("halt")
    return "\n".join(lines)


def _alu_sweep(config: CpuConfig, seed: int) -> str:
    """Exercise every ALU operation with pseudo-random operands."""
    rng = random.Random(seed)
    imm_width = config.instr_width - 5 - 3 * config.register_select_bits
    imm_max = mask(max(1, imm_width))
    regs = list(range(1, config.n_registers))
    lines = []
    for reg in regs[:4]:
        lines.append(f"movi r{reg}, {rng.randint(0, imm_max)}")
    operations = ["add", "sub", "and", "or", "xor", "shl", "mul"]
    for _ in range(6 * len(operations)):
        op = rng.choice(operations)
        rd = rng.choice(regs)
        rs1 = rng.choice(regs)
        rs2 = rng.choice(regs)
        lines.append(f"{op} r{rd}, r{rs1}, r{rs2}")
        if rng.random() < 0.25:
            lines.append(f"store r0, r{rd}, {rng.randint(0, min(7, imm_max))}")
    lines.append("halt")
    return "\n".join(lines)


def _branch_kernel(config: CpuConfig) -> str:
    """A loop kernel exercising the branch logic and the BTB."""
    lines = [
        "movi r1, 0",
        f"movi r2, {min(7, mask(max(1, config.instr_width - 5 - 3 * config.register_select_bits)))}",
        "movi r3, 1",
        "loop: add r1, r1, r3",
        "store r0, r1, 0",
        "bne r1, r2, loop",
        "beq r1, r2, done",
        "jump loop",
        "done: halt",
    ]
    return "\n".join(lines)


def _memory_walk(config: CpuConfig) -> str:
    """Walk load/store addresses across the low immediate range."""
    imm_width = config.instr_width - 5 - 3 * config.register_select_bits
    span = min(8, mask(max(1, imm_width)) + 1)
    lines = ["movi r1, 1"]
    for offset in range(span):
        lines.append(f"store r0, r1, {offset}")
        lines.append(f"load r2, r0, {offset}")
        lines.append("add r1, r1, r2")
    lines.append("halt")
    return "\n".join(lines)


def generate_sbst_suite(config: Optional[CpuConfig] = None,
                        seed: int = 2013) -> List[SbstProgram]:
    """Generate the standard four-program SBST suite for a core configuration."""
    config = config or CpuConfig.date13()
    sources: Dict[str, str] = {
        "register_march": _register_march(config),
        "alu_sweep": _alu_sweep(config, seed),
        "branch_kernel": _branch_kernel(config),
        "memory_walk": _memory_walk(config),
    }
    programs = []
    for name, source in sources.items():
        words = assemble(source, instr_width=config.instr_width,
                         register_select_bits=config.register_select_bits)
        programs.append(SbstProgram(name=name, source=source, words=words))
    return programs
