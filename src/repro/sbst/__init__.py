"""Software-based self-test (SBST) substrate.

The paper's context is a mature SBST suite for an automotive processor: the
functional programs are what exercises the core in the field, the toggle
activity they produce is what shortlists the quiescent debug inputs (§4),
and the fault coverage they achieve is the figure that improves by ~13.8 %
once the on-line functionally untestable faults are pruned from the
denominator.

This package provides the equivalent machinery for the synthetic core: an
assembler for the miniature ISA, an instruction-level reference model, an
SBST program generator, a toggle-activity monitor over the gate-level
netlist, and a bus-observation fault-grading flow.
"""

from repro.sbst.assembler import AssemblerError, assemble, disassemble
from repro.sbst.cpu_model import CpuModel, ExecutionTrace
from repro.sbst.program_gen import SbstProgram, generate_sbst_suite
from repro.sbst.monitor import CapturedPatterns, ToggleMonitor
from repro.sbst.grading import CoverageComparison, FaultGrader

__all__ = [
    "AssemblerError",
    "assemble",
    "disassemble",
    "CpuModel",
    "ExecutionTrace",
    "SbstProgram",
    "generate_sbst_suite",
    "CapturedPatterns",
    "ToggleMonitor",
    "CoverageComparison",
    "FaultGrader",
]
