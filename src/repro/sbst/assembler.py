"""Two-pass assembler for the miniature ISA.

Syntax (one instruction per line, ``;`` or ``#`` starts a comment)::

    loop:   addi r1, r0, 5
            add  r2, r1, r1
            beq  r2, r1, done
            jump loop
    done:   halt

Registers are written ``r0`` ... ``rN``; immediates are decimal or ``0x``
hexadecimal; branch/jump targets may be labels (PC-relative offsets are
computed by the assembler) or literal immediates.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.opcodes import Opcode, decode_fields, encode_instruction
from repro.utils.bitvec import mask


class AssemblerError(Exception):
    """Raised on malformed assembly input."""


_REGISTER_RE = re.compile(r"^r(\d+)$", re.IGNORECASE)

# opcode -> (mnemonic operand format)
#   "rrr"  : rd, rs1, rs2
#   "rri"  : rd, rs1, imm
#   "bri"  : rs1 (base), rs2 (data), imm   (store)
#   "rrl"  : rs1, rs2, label/imm   (branches)
#   "l"    : label/imm             (jump)
#   "ri"   : rd, imm               (movi)
#   ""     : no operands
_FORMATS: Dict[Opcode, str] = {
    Opcode.NOP: "",
    Opcode.ADD: "rrr",
    Opcode.SUB: "rrr",
    Opcode.AND: "rrr",
    Opcode.OR: "rrr",
    Opcode.XOR: "rrr",
    Opcode.SHL: "rrr",
    Opcode.MUL: "rrr",
    Opcode.ADDI: "rri",
    Opcode.LOAD: "rri",
    Opcode.STORE: "bri",
    Opcode.BEQ: "rrl",
    Opcode.BNE: "rrl",
    Opcode.JUMP: "l",
    Opcode.MOVI: "ri",
    Opcode.HALT: "",
}

_MNEMONICS = {op.name.lower(): op for op in Opcode}


def _parse_register(token: str, line_no: int) -> int:
    match = _REGISTER_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"line {line_no}: expected a register, got {token!r}")
    return int(match.group(1))


def _parse_immediate(token: str, labels: Dict[str, int], line_no: int,
                     current_address: int, relative: bool) -> int:
    token = token.strip()
    if token in labels:
        target = labels[token]
        return (target - current_address - 1) if relative else target
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: unknown label or immediate {token!r}") from None


def _split_statement(line: str) -> Tuple[Optional[str], str]:
    """Return (label, remainder) for one source line."""
    code = re.split(r"[;#]", line, maxsplit=1)[0].rstrip()
    label = None
    if ":" in code:
        label_part, code = code.split(":", 1)
        label = label_part.strip()
        if label and not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", label):
            raise AssemblerError(f"invalid label {label!r}")
    return label, code.strip()


def assemble(source: str, instr_width: int = 32,
             register_select_bits: int = 5) -> List[int]:
    """Assemble a program into a list of instruction words."""
    lines = source.splitlines()

    # Pass 1: collect label addresses.
    labels: Dict[str, int] = {}
    address = 0
    statements: List[Tuple[int, str]] = []
    for line_no, line in enumerate(lines, start=1):
        label, code = _split_statement(line)
        if label:
            if label in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = address
        if code:
            statements.append((line_no, code))
            address += 1

    # Pass 2: encode.
    words: List[int] = []
    address = 0
    imm_width = instr_width - 5 - 3 * register_select_bits
    for line_no, code in statements:
        parts = code.replace(",", " ").split()
        mnemonic = parts[0].lower()
        if mnemonic not in _MNEMONICS:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        opcode = _MNEMONICS[mnemonic]
        fmt = _FORMATS[opcode]
        operands = parts[1:]

        rd = rs1 = rs2 = imm = 0
        try:
            if fmt == "rrr":
                rd = _parse_register(operands[0], line_no)
                rs1 = _parse_register(operands[1], line_no)
                rs2 = _parse_register(operands[2], line_no)
            elif fmt == "rri":
                rd = _parse_register(operands[0], line_no)
                rs1 = _parse_register(operands[1], line_no)
                imm = _parse_immediate(operands[2], labels, line_no, address, False)
            elif fmt == "bri":
                rs1 = _parse_register(operands[0], line_no)
                rs2 = _parse_register(operands[1], line_no)
                imm = _parse_immediate(operands[2], labels, line_no, address, False)
            elif fmt == "rrl":
                rs1 = _parse_register(operands[0], line_no)
                rs2 = _parse_register(operands[1], line_no)
                imm = _parse_immediate(operands[2], labels, line_no, address, True)
            elif fmt == "l":
                imm = _parse_immediate(operands[0], labels, line_no, address, True)
            elif fmt == "ri":
                rd = _parse_register(operands[0], line_no)
                imm = _parse_immediate(operands[1], labels, line_no, address, False)
            elif fmt == "":
                if operands:
                    raise AssemblerError(
                        f"line {line_no}: {mnemonic} takes no operands")
        except IndexError:
            raise AssemblerError(
                f"line {line_no}: not enough operands for {mnemonic}") from None

        words.append(encode_instruction(opcode, rd=rd, rs1=rs1, rs2=rs2,
                                        imm=imm & mask(imm_width) if imm_width > 0 else 0,
                                        instr_width=instr_width,
                                        register_select_bits=register_select_bits))
        address += 1
    return words


def disassemble(words: Sequence[int], instr_width: int = 32,
                register_select_bits: int = 5) -> List[str]:
    """Disassemble instruction words back into readable mnemonics."""
    lines = []
    for word in words:
        fields = decode_fields(word, instr_width, register_select_bits)
        try:
            opcode = Opcode(fields["opcode"])
        except ValueError:
            lines.append(f".word 0x{word:08X}")
            continue
        fmt = _FORMATS[opcode]
        name = opcode.name.lower()
        if fmt == "rrr":
            lines.append(f"{name} r{fields['rd']}, r{fields['rs1']}, r{fields['rs2']}")
        elif fmt == "rri":
            lines.append(f"{name} r{fields['rd']}, r{fields['rs1']}, {fields['imm']}")
        elif fmt == "bri":
            lines.append(f"{name} r{fields['rs1']}, r{fields['rs2']}, {fields['imm']}")
        elif fmt == "rrl":
            lines.append(f"{name} r{fields['rs1']}, r{fields['rs2']}, {fields['imm']}")
        elif fmt == "l":
            lines.append(f"{name} {fields['imm']}")
        elif fmt == "ri":
            lines.append(f"{name} r{fields['rd']}, {fields['imm']}")
        else:
            lines.append(name)
    return lines
