"""Instruction-level reference model of the miniature ISA.

The model executes the same opcode table the gate-level decoder is
synthesised from, so it serves as the golden reference for the SBST program
generator (expected register/memory results) and for integration tests that
drive the gate-level core with an instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.opcodes import Opcode, decode_fields
from repro.utils.bitvec import mask, sign_extend


@dataclass
class ExecutionTrace:
    """Per-cycle record of an executed program."""

    pcs: List[int] = field(default_factory=list)
    instructions: List[int] = field(default_factory=list)
    register_writes: List[Dict[str, int]] = field(default_factory=list)
    memory_writes: List[Dict[str, int]] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        return len(self.pcs)


class CpuModel:
    """A simple fetch/execute interpreter for the miniature ISA."""

    def __init__(self, data_width: int = 32, n_registers: int = 32,
                 instr_width: int = 32, register_select_bits: Optional[int] = None,
                 memory_size: int = 4096) -> None:
        self.data_width = data_width
        self.n_registers = n_registers
        self.instr_width = instr_width
        self.register_select_bits = (register_select_bits
                                     if register_select_bits is not None
                                     else max(1, (n_registers - 1).bit_length()))
        self.memory_size = memory_size
        self.registers = [0] * n_registers
        self.memory: Dict[int, int] = {}
        self.pc = 0
        self.halted = False

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.registers = [0] * self.n_registers
        self.memory.clear()
        self.pc = 0
        self.halted = False

    def _mask(self, value: int) -> int:
        return value & mask(self.data_width)

    def _imm(self, fields: Dict[str, int], signed: bool = True) -> int:
        imm_width = self.instr_width - 5 - 3 * self.register_select_bits
        value = fields["imm"]
        if signed and imm_width > 0:
            return sign_extend(value, imm_width, self.data_width)
        return value

    def _read_reg(self, index: int) -> int:
        return self.registers[index % self.n_registers]

    def _write_reg(self, index: int, value: int) -> None:
        self.registers[index % self.n_registers] = self._mask(value)

    # ------------------------------------------------------------------ #
    def step(self, instruction: int) -> Dict[str, int]:
        """Execute one instruction word; returns the register/memory effects."""
        fields = decode_fields(instruction, self.instr_width, self.register_select_bits)
        try:
            opcode = Opcode(fields["opcode"])
        except ValueError:
            opcode = Opcode.NOP

        rd, rs1, rs2 = fields["rd"], fields["rs1"], fields["rs2"]
        a, bb = self._read_reg(rs1), self._read_reg(rs2)
        imm = self._imm(fields)
        effects: Dict[str, int] = {}
        next_pc = self.pc + 1

        if opcode is Opcode.ADD:
            self._write_reg(rd, a + bb); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.SUB:
            self._write_reg(rd, a - bb); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.AND:
            self._write_reg(rd, a & bb); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.OR:
            self._write_reg(rd, a | bb); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.XOR:
            self._write_reg(rd, a ^ bb); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.SHL:
            self._write_reg(rd, a << (bb % self.data_width))
            effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.MUL:
            self._write_reg(rd, a * bb); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.ADDI:
            self._write_reg(rd, a + imm); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.MOVI:
            self._write_reg(rd, imm); effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.LOAD:
            address = self._mask(a + imm) % self.memory_size
            self._write_reg(rd, self.memory.get(address, 0))
            effects[f"r{rd}"] = self._read_reg(rd)
        elif opcode is Opcode.STORE:
            address = self._mask(a + imm) % self.memory_size
            self.memory[address] = self._read_reg(rs2)
            effects[f"mem[{address}]"] = self.memory[address]
        elif opcode is Opcode.BEQ:
            if a == bb:
                next_pc = self.pc + 1 + imm
        elif opcode is Opcode.BNE:
            if a != bb:
                next_pc = self.pc + 1 + imm
        elif opcode is Opcode.JUMP:
            next_pc = self.pc + 1 + imm
        elif opcode is Opcode.HALT:
            self.halted = True
            next_pc = self.pc

        self.pc = next_pc & mask(self.data_width)
        return effects

    def run(self, program: Sequence[int], max_cycles: int = 10_000) -> ExecutionTrace:
        """Run a program (a list of instruction words) until HALT or the limit."""
        trace = ExecutionTrace()
        for _ in range(max_cycles):
            if self.halted or not (0 <= self.pc < len(program)):
                break
            instruction = program[self.pc]
            trace.pcs.append(self.pc)
            trace.instructions.append(instruction)
            effects = self.step(instruction)
            register_effects = {k: v for k, v in effects.items() if k.startswith("r")}
            memory_effects = {k: v for k, v in effects.items() if k.startswith("mem")}
            trace.register_writes.append(register_effects)
            trace.memory_writes.append(memory_effects)
        return trace
