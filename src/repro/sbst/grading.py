"""Functional fault grading of SBST programs and the coverage-gain experiment.

The paper's practical pay-off is that pruning the on-line functionally
untestable faults from the fault list raises the reported SBST fault
coverage by roughly the pruned fraction (~13.8 % on the industrial SoC).
:class:`FaultGrader` reproduces that comparison: it fault-grades captured
functional patterns against the core with mission-mode observability (the
memory bus only, like the paper's evaluation) and reports the coverage with
and without OLFU pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.faults.models import Fault, FaultModel, resolve_fault_model
from repro.faults.faultlist import FaultList, generate_fault_list
from repro.netlist.module import Netlist
from repro.sbst.monitor import CapturedPatterns, pattern_windows
from repro.simulation.parallel import ParallelPatternSimulator
from repro.simulation.simulator import MISSION_CAPTURE_ROLES


@dataclass
class CoverageComparison:
    """Fault coverage before and after pruning on-line untestable faults."""

    total_faults: int
    detected: int
    pruned: int
    detected_after_pruning: int

    @property
    def coverage_before(self) -> float:
        return self.detected / self.total_faults if self.total_faults else 0.0

    @property
    def coverage_after(self) -> float:
        denominator = self.total_faults - self.pruned
        return (self.detected_after_pruning / denominator) if denominator else 0.0

    @property
    def coverage_gain(self) -> float:
        return self.coverage_after - self.coverage_before

    def summary(self) -> str:
        return (f"coverage {self.coverage_before:.1%} -> {self.coverage_after:.1%} "
                f"(+{self.coverage_gain:.1%}) after pruning "
                f"{self.pruned:,}/{self.total_faults:,} on-line untestable faults")


class FaultGrader:
    """Grades functional patterns against a core with mission-mode observability.

    ``drop_detected`` (on by default) applies fault dropping across the
    pattern windows: once any window detects a fault, the fault leaves the
    simulation for all subsequent windows — the same speed-up the serial
    :class:`~repro.simulation.fault_sim.FaultSimulator` applies per pattern.

    ``jobs`` > 1 switches :meth:`grade` to the cone-aware sharded engine
    (:mod:`repro.simulation.sharded`): the fault population is partitioned
    into cone-aware shards graded across worker processes/threads, with
    per-window verdicts merged through a shared detection frontier.  The
    detected-fault set is identical to the serial path; ``backend`` and
    ``shards`` tune how the shards run (defaults: best available backend,
    four shards per worker).
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 word_size: int = 64, drop_detected: bool = True,
                 jobs: int = 1, backend: Optional[str] = None,
                 shards: Optional[int] = None,
                 fault_model: "Union[str, FaultModel, None]" = None,
                 kernel: Optional[str] = None,
                 pool=None,
                 chunk: Optional[int] = None) -> None:
        # Mission-mode observation: the system-bus outputs plus the values
        # captured into the architectural state (a captured error eventually
        # propagates to memory over the following cycles of the self-test
        # program, so observing the flip-flop inputs approximates multi-cycle
        # propagation — see DESIGN.md).  The debug-only observation buses are
        # explicitly excluded: in the field no debugger reads them.
        self.netlist = netlist
        self.word_size = word_size
        self.drop_detected = drop_detected
        self.jobs = max(1, jobs if jobs is not None else 1)
        self.backend = backend
        self.shards = shards
        self.pool = pool
        self.chunk = chunk
        #: Model used to enumerate the default fault universe when a grade
        #: call does not bring its own fault list.
        self.fault_model = resolve_fault_model(fault_model)
        exclude: set = set(netlist.unobservable_ports)
        debug_spec = netlist.annotations.get("debug_interface")
        if isinstance(debug_spec, dict):
            exclude.update(debug_spec.get("observation_outputs", []))
        # Scan-out pins are never observed during the mission either.
        scan_spec = netlist.annotations.get("scan_insertion", {})
        exclude.update(scan_spec.get("scan_out_ports", []))
        # Only capture through functional pins (D, reset) counts: a fault
        # effect reaching a scan SI/SE or debug DI/DE pin is never stored
        # into architectural state once the tester/debugger is gone, so it
        # must not count as mission-mode detection.
        self.simulator = ParallelPatternSimulator(
            netlist, observe_state_inputs=observe_state_inputs,
            exclude_output_ports=exclude,
            state_input_roles=MISSION_CAPTURE_ROLES,
            kernel=kernel)

    # ------------------------------------------------------------------ #
    def grade(self, patterns: CapturedPatterns,
              faults: Optional[Iterable[Fault]] = None) -> Set[Fault]:
        """Return the faults detected by the captured functional patterns.

        Model-generic: two-pattern faults treat the captured cycle stream
        as consecutive launch-on-capture pairs (across window boundaries
        too), so the verdicts are independent of ``word_size``.
        """
        fault_universe = (list(faults) if faults is not None
                          else generate_fault_list(
                              self.netlist, model=self.fault_model).faults())
        if self.jobs > 1 or self.pool is not None:
            from repro.simulation.sharded import sharded_mission_grade

            return sharded_mission_grade(
                self.netlist, fault_universe, patterns,
                observation_nets=self.simulator.observation_nets,
                word_size=self.word_size, drop_detected=self.drop_detected,
                jobs=self.jobs, backend=self.backend, shards=self.shards,
                kernel=self.simulator.kernel.name,
                pool=self.pool, chunk=self.chunk)
        windows = pattern_windows(patterns, self.word_size)
        return self.simulator.run_windows(fault_universe, windows,
                                          drop_detected=self.drop_detected)

    # ------------------------------------------------------------------ #
    def compare_with_pruning(self, patterns: CapturedPatterns,
                             online_untestable: Set[Fault],
                             faults: Optional[Iterable[Fault]] = None
                             ) -> CoverageComparison:
        """Coverage with the full fault list vs. the OLFU-pruned fault list."""
        fault_universe = (list(faults) if faults is not None
                          else generate_fault_list(
                              self.netlist, model=self.fault_model).faults())
        detected = self.grade(patterns, fault_universe)
        pruned_set = set(online_untestable) & set(fault_universe)
        detected_after = detected - pruned_set
        return CoverageComparison(
            total_faults=len(fault_universe),
            detected=len(detected),
            pruned=len(pruned_set),
            detected_after_pruning=len(detected_after),
        )
