"""Gate-level execution of SBST programs: toggle monitoring and pattern capture.

The paper's §4 workflow uses high-level activity metrics (toggle/condition
coverage) collected while the mature SBST suite runs to shortlist the debug
signals that never move in mission mode.  :class:`ToggleMonitor` provides the
equivalent here: it drives the gate-level core with an instruction stream
through the sequential simulator, counts toggles per net and captures, for
every cycle, the values of all controllable nets (primary inputs plus
flip-flop outputs) — the functional patterns later used for fault grading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.cells import LOGIC_X
from repro.netlist.module import Netlist
from repro.simulation.sequential import SequentialSimulator
from repro.utils.bitvec import bit


@dataclass
class CapturedPatterns:
    """Fully-specified per-cycle patterns over the controllable nets."""

    controllable_nets: List[str] = field(default_factory=list)
    cycles: List[Dict[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    def as_parallel_words(self) -> Dict[str, int]:
        """Pack the patterns into bit-vector words (pattern i = bit i)."""
        words: Dict[str, int] = {net: 0 for net in self.controllable_nets}
        for index, cycle in enumerate(self.cycles):
            for net, value in cycle.items():
                if value == 1:
                    words[net] |= 1 << index
        return words


def pattern_windows(patterns: "CapturedPatterns",
                    word_size: int) -> List[Tuple[Dict[str, int], int]]:
    """Chunk captured cycles into ``(word dict, n_patterns)`` windows.

    The single packing used by the serial grader
    (:meth:`repro.simulation.parallel.ParallelPatternSimulator.run_windows`)
    and the sharded mission-grading engine, so both see byte-identical
    windows of the same cycle stream.
    """
    windows: List[Tuple[Dict[str, int], int]] = []
    cycles = patterns.cycles
    for start in range(0, len(cycles), word_size):
        window = cycles[start:start + word_size]
        words = {net: 0 for net in patterns.controllable_nets}
        for index, cycle in enumerate(window):
            for net, value in cycle.items():
                if value == 1 and net in words:
                    words[net] |= 1 << index
        windows.append((words, len(window)))
    return windows


class ToggleMonitor:
    """Runs instruction streams on the gate-level core and records activity."""

    def __init__(self, netlist: Netlist,
                 mission_inputs: Optional[Mapping[str, int]] = None,
                 kernel: Optional[str] = None) -> None:
        self.netlist = netlist
        self.sim = SequentialSimulator(netlist, kernel=kernel)
        #: Default value of every input port in mission mode (debug/scan
        #: inputs pulled to constants, reset deasserted).
        self.mission_inputs: Dict[str, int] = {p: 0 for p in netlist.input_ports()}
        self.mission_inputs["rst_n"] = 1
        if mission_inputs:
            self.mission_inputs.update(mission_inputs)
        self.toggle_counts: Dict[str, int] = {n: 0 for n in netlist.nets}
        self._previous_values: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    def _instruction_inputs(self, word: int, mem_rdata: int = 0) -> Dict[str, int]:
        inputs = dict(self.mission_inputs)
        instr_ports = [p for p in self.netlist.input_ports() if p.startswith("instr_in[")]
        for port in instr_ports:
            index = int(port[port.index("[") + 1:-1])
            inputs[port] = bit(word, index)
        for port in self.netlist.input_ports():
            if port.startswith("mem_rdata["):
                index = int(port[port.index("[") + 1:-1])
                inputs[port] = bit(mem_rdata, index)
        return inputs

    def _record_toggles(self, values: Dict[str, int]) -> None:
        if self._previous_values is not None:
            for net, value in values.items():
                previous = self._previous_values.get(net, LOGIC_X)
                if (value != previous and value != LOGIC_X and previous != LOGIC_X):
                    self.toggle_counts[net] = self.toggle_counts.get(net, 0) + 1
        self._previous_values = dict(values)

    # ------------------------------------------------------------------ #
    def run_program(self, words: Sequence[int],
                    cycles_per_instruction: int = 1,
                    mem_rdata_stream: Optional[Sequence[int]] = None,
                    capture: bool = True) -> CapturedPatterns:
        """Feed an instruction stream into the core, one word per cycle.

        The synthetic core is not a cycle-accurate implementation of the ISA;
        what matters here is realistic functional activity, so the words are
        streamed in program order (optionally repeated) regardless of the
        core's own branching.
        """
        controllable = (self.netlist.input_ports()
                        + self.sim.sim.state_nets)
        patterns = CapturedPatterns(controllable_nets=list(controllable))

        for index, word in enumerate(words):
            mem_rdata = (mem_rdata_stream[index % len(mem_rdata_stream)]
                         if mem_rdata_stream else (index * 2654435761) & 0xFFFFFFFF)
            inputs = self._instruction_inputs(word, mem_rdata)
            for _ in range(cycles_per_instruction):
                if capture:
                    snapshot = dict(inputs)
                    snapshot.update({n: (v if v != LOGIC_X else 0)
                                     for n, v in self.sim.state.items()})
                    patterns.cycles.append(snapshot)
                values = self.sim.step(inputs)
                self._record_toggles(values)
        return patterns

    def run_suite(self, programs: Sequence, capture: bool = True) -> CapturedPatterns:
        """Run several :class:`repro.sbst.program_gen.SbstProgram` objects."""
        merged = CapturedPatterns()
        for program in programs:
            captured = self.run_program(program.words, capture=capture)
            if not merged.controllable_nets:
                merged.controllable_nets = captured.controllable_nets
            merged.cycles.extend(captured.cycles)
        return merged

    # ------------------------------------------------------------------ #
    def quiescent_nets(self) -> List[str]:
        """Nets that never toggled during the monitored runs."""
        return [net for net, count in self.toggle_counts.items() if count == 0]

    def activity_report(self, top: int = 20) -> List[str]:
        ranked = sorted(self.toggle_counts.items(), key=lambda kv: -kv[1])
        return [f"{net}: {count}" for net, count in ranked[:top]]
