"""repro — reproduction of Bernardi et al., "On-line Functionally Untestable
Fault Identification in Embedded Processor Cores", DATE 2013.

The package is organised as a set of substrates (netlist, simulation, faults,
ATPG, scan, debug, memory, manipulation, soc, sbst) plus the paper's primary
contribution — identification of on-line functionally untestable (OLFU)
stuck-at faults via circuit manipulation followed by
structural-untestability analysis — implemented as composable analysis
passes in :mod:`repro.pipeline` and orchestrated through the
:class:`Session`/:class:`Design` API in :mod:`repro.api`.

Quickstart::

    import repro

    session = repro.Session()
    report = session.analyze("small")        # preset name, SoCConfig,
    print(report.to_table())                 # SoC, Netlist or Design

Scenario sweeps expand a grid of SoC variants (core size, scan style,
debug interface, memory map, ATPG effort) and run them through a pluggable
executor backend with cross-scenario artifact reuse::

    grid = (repro.ScenarioGrid("tiny")
            .axis("debug", [True, False])
            .axis("effort", ["tie", "random"]))
    sweep = session.sweep(grid, executor="thread")
    print(sweep.to_table())                  # per-scenario Table I + deltas
    open("sweep.json", "w").write(sweep.to_json())

Artifacts can outlive the process: ``Session(store=DIR)`` layers a
durable content-addressed store (:mod:`repro.store`) under the session
cache, and :mod:`repro.service` serves the same sessions as a long-lived
asyncio job service (``python -m repro serve`` / ``submit`` / ``jobs``).

The same flows run from the command line (``python -m repro analyze small``,
``python -m repro sweep --base tiny --axis effort=tie,random``,
``python -m repro report sweep.json``).  Custom analyses plug in through
the :func:`repro.pipeline.analysis_pass` decorator (see
``examples/custom_pass.py``); custom sweep backends implement the
:class:`repro.api.Executor` protocol.

The legacy one-shot entry points are kept for compatibility:
:func:`repro.analyze` (deprecated — a thin shim over ``Session``) and the
original :class:`repro.core.OnlineUntestableFlow` driver.
"""

import warnings
from typing import Iterable, Optional, Sequence, Union

from repro._version import __version__
from repro.api import (Design, Executor, ProcessExecutor, Scenario,
                       ScenarioGrid, SerialExecutor, Session, SweepReport,
                       SweepResult, ThreadExecutor)
from repro.atpg.engine import AtpgEffort, resolve_effort
from repro.core.flow import (FlowConfig, OnlineUntestableFlow,
                             OnlineUntestableReport)
from repro.faults.models import (FaultModel, StuckAtFault, TransitionFault,
                                 fault_model_names, register_fault_model,
                                 resolve_fault_model)
from repro.pipeline import (AnalysisPass, ArtifactCache, Pipeline,
                            PipelineBuilder, PipelineResult, analysis_pass,
                            default_pass_names)
from repro.store import ArtifactStore, LocalDirStore, resolve_store

__all__ = [
    # primary API
    "Session",
    "Design",
    "ScenarioGrid",
    "Scenario",
    "SweepResult",
    "SweepReport",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    # pipeline layer
    "Pipeline",
    "AnalysisPass",
    "ArtifactCache",
    # durable artifact store
    "ArtifactStore",
    "LocalDirStore",
    "resolve_store",
    "AtpgEffort",
    "resolve_effort",
    # fault models
    "FaultModel",
    "StuckAtFault",
    "TransitionFault",
    "fault_model_names",
    "register_fault_model",
    "resolve_fault_model",
    # legacy surface
    "analyze",
    "OnlineUntestableFlow",
    "FlowConfig",
    "__version__",
]


def analyze(target,
            *,
            passes: Optional[Sequence] = None,
            effort: Union[AtpgEffort, str, None] = None,
            parallel: Union[bool, int] = False,
            config: Optional[FlowConfig] = None,
            memory_map=None,
            faults: Optional[Iterable] = None,
            cache: Optional[ArtifactCache] = None) -> OnlineUntestableReport:
    """Identify the on-line functionally untestable faults of ``target``.

    .. deprecated::
        ``repro.analyze`` is a thin shim kept for existing callers; new code
        should create a :class:`repro.Session` (which adds a shared artifact
        cache, executor backends and scenario sweeps) and call
        :meth:`~repro.api.Session.analyze`.

    Parameters mirror the original one-shot entry point: ``passes`` selects
    analysis passes (dependencies resolved automatically), ``effort`` the
    ATPG effort, ``parallel`` runs independent passes concurrently (int for
    an explicit worker count), ``config`` supplies a full
    :class:`FlowConfig`, and ``memory_map`` / ``faults`` / ``cache`` give an
    explicit mission map, a restricted fault universe and a reusable
    :class:`ArtifactCache`.
    """
    warnings.warn(
        "repro.analyze() is deprecated; use repro.Session().analyze(...) "
        "(sessions add artifact-cache reuse, executor backends and "
        "scenario sweeps)", DeprecationWarning, stacklevel=2)
    from repro.api import RunOptions

    session = Session(cache=cache, cache_entries=None)
    return session.analyze(target, passes=passes, parallel=parallel,
                           config=config, memory_map=memory_map,
                           faults=faults,
                           options=RunOptions(effort=effort))
