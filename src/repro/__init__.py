"""repro — reproduction of Bernardi et al., "On-line Functionally Untestable
Fault Identification in Embedded Processor Cores", DATE 2013.

The package is organised as a set of substrates (netlist, simulation, faults,
ATPG, scan, debug, memory, manipulation, soc, sbst) plus the paper's primary
contribution in :mod:`repro.core` — identification of on-line functionally
untestable (OLFU) stuck-at faults via circuit manipulation followed by
structural-untestability analysis.

Quickstart::

    from repro.soc import build_soc, SoCConfig
    from repro.core import OnlineUntestableFlow

    soc = build_soc(SoCConfig.small())
    flow = OnlineUntestableFlow(soc)
    report = flow.run()
    print(report.to_table())
"""

from repro._version import __version__

__all__ = ["__version__"]
