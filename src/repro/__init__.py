"""repro — reproduction of Bernardi et al., "On-line Functionally Untestable
Fault Identification in Embedded Processor Cores", DATE 2013.

The package is organised as a set of substrates (netlist, simulation, faults,
ATPG, scan, debug, memory, manipulation, soc, sbst) plus the paper's primary
contribution — identification of on-line functionally untestable (OLFU)
stuck-at faults via circuit manipulation followed by
structural-untestability analysis — implemented as composable analysis
passes in :mod:`repro.pipeline` and orchestrated by :func:`repro.analyze`.

Quickstart::

    import repro
    from repro.soc import build_soc, SoCConfig

    soc = build_soc(SoCConfig.small())
    report = repro.analyze(soc, parallel=True)
    print(report.to_table())

``analyze`` accepts a pass selection (``passes=["scan_analysis", ...]``), an
ATPG effort (``effort="tie" | "random" | "full"``), concurrent execution
(``parallel=True``) and an :class:`repro.pipeline.ArtifactCache` for reuse
across scenario variants.  The legacy driver is still available::

    from repro.core import OnlineUntestableFlow
    report = OnlineUntestableFlow(soc).run()

and produces the identical report.  Custom analyses plug in through the
:func:`repro.pipeline.analysis_pass` decorator (see
``examples/custom_pass.py``), and ``python -m repro small --parallel``
runs the whole flow from the command line.
"""

from dataclasses import replace as _replace
from typing import Iterable, Optional, Sequence, Union

from repro._version import __version__
from repro.atpg.engine import AtpgEffort
from repro.core.flow import (FlowConfig, OnlineUntestableFlow,
                             OnlineUntestableReport)
from repro.pipeline import (AnalysisPass, ArtifactCache, Pipeline,
                            PipelineBuilder, PipelineResult, analysis_pass,
                            default_pass_names)

__all__ = [
    "analyze",
    "Pipeline",
    "AnalysisPass",
    "OnlineUntestableFlow",
    "FlowConfig",
    "__version__",
]


def _resolve_effort(effort: Union[AtpgEffort, str, None]) -> Optional[AtpgEffort]:
    if effort is None or isinstance(effort, AtpgEffort):
        return effort
    try:
        return AtpgEffort(effort.lower())
    except ValueError:
        names = ", ".join(e.value for e in AtpgEffort)
        raise ValueError(
            f"unknown ATPG effort {effort!r}; expected one of: {names}"
        ) from None


def analyze(target,
            *,
            passes: Optional[Sequence] = None,
            effort: Union[AtpgEffort, str, None] = None,
            parallel: Union[bool, int] = False,
            config: Optional[FlowConfig] = None,
            memory_map=None,
            faults: Optional[Iterable] = None,
            cache: Optional[ArtifactCache] = None) -> OnlineUntestableReport:
    """Identify the on-line functionally untestable faults of ``target``.

    Parameters
    ----------
    target:
        A :class:`repro.soc.soc_builder.SoC` or a bare netlist.
    passes:
        Pass names / :class:`AnalysisPass` objects to run (dependencies are
        resolved automatically).  Default: the paper's full §4 flow.
    effort:
        ATPG effort — an :class:`AtpgEffort` or its string value.
    parallel:
        ``True`` to run independent passes concurrently, or an int for an
        explicit worker count.
    config:
        A full :class:`FlowConfig` (``effort`` overrides its effort field).
    memory_map / faults:
        Optional explicit memory map and restricted fault universe.
    cache:
        An :class:`ArtifactCache` to reuse pass results across calls.

    Returns the same :class:`OnlineUntestableReport` as the legacy
    :class:`OnlineUntestableFlow`.
    """
    resolved_effort = _resolve_effort(effort)
    if config is None:
        config = FlowConfig()
    if resolved_effort is not None:
        config = _replace(config, effort=resolved_effort)

    max_workers = parallel if isinstance(parallel, int) and not isinstance(parallel, bool) else None
    pipeline = Pipeline(list(passes) if passes is not None else default_pass_names(config),
                        parallel=bool(parallel),
                        max_workers=max_workers,
                        cache=cache)
    result = pipeline.run(target, config=config, memory_map=memory_map,
                          faults=faults)
    return result.report
