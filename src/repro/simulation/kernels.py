"""Pluggable simulation kernels: the Python-int oracle and a numpy engine.

Every simulator in :mod:`repro.simulation` dispatches its hot loops through
a *kernel* object resolved by :func:`get_kernel`:

``int`` (:class:`IntKernel`)
    The existing Python big-int engine — event-driven cone walks for fault
    detection, the per-op plane loop for full passes.  Always available;
    it is the oracle every other backend must match byte-for-byte.

``numpy`` (:class:`NumpyKernel`)
    Lowers the level-ordered op arrays of a
    :class:`~repro.netlist.compiled.CompiledNetlist` into contiguous
    per-(level, cell-kind) ndarray plans — gather indices per input pin and
    scatter indices per output pin — so one level executes as a handful of
    vectorized gather/bitwise-op/scatter calls, and fault detection batches
    up to :data:`WORD_LANES` faulty machines into one ``(nets, faults)``
    uint64 matrix sweep (bit *i* of a word = pattern *i* of the window).

``auto`` (or ``None``)
    ``numpy`` when importable, else ``int``.  Requesting ``numpy``
    explicitly in an environment without it falls back to ``int`` with a
    one-time warning — numpy is an optional extra, never a hard dependency.

Byte-identity is the contract, not a goal: the batched numpy sweep forces
every injected net at initialization, at each level boundary and after the
final level (levelization makes re-forcing equivalent to the int engines'
skip-frozen-writes rule), reads detection from exactly the same observation
nets, and returns the *full* per-fault detection mask so first/last
detecting-pattern indices match the oracle under both drop modes.  Plans
fall back to the int engine whenever a cell has no vector model, the window
exceeds 64 patterns, or the frozen set is not exactly the tied nets.
"""

from __future__ import annotations

import heapq
import threading
import warnings
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.registry import Registry
from repro.netlist.compiled import NO_NET, CompiledNetlist

#: Registered kernels, keyed by choice name.  ``auto`` is a routing alias
#: resolved by :func:`get_kernel`, not an entry here.
KERNELS: Registry = Registry("simulation kernel")

#: Kernel names accepted everywhere a ``kernel=`` knob exists.
KERNEL_CHOICES = ("auto", "int", "numpy")

#: Faulty machines batched per vectorized sweep.  Word (two-valued) sweeps
#: carry one matrix, plane (three-valued) sweeps carry two — sized so the
#: working set stays cache-friendly (measured optimum on the date13 core).
WORD_LANES = 256
PLANE_LANES = 128

#: Hybrid routing: a fault whose fanout cone holds at most this many ops is
#: graded by the event-driven int walk even under the numpy kernel — for
#: tiny cones the walk touches a handful of ops (and may early-exit on the
#: first observed difference) while a batch lane always pays the full
#: levelized sweep.  Verdicts and masks are identical either way, so the
#: cutoff is purely a performance knob (measured optimum on the date13
#: core; 0 disables routing).
WORD_WALK_CUTOFF = 128
PLANE_WALK_CUTOFF = 512

_UNSET = object()
_STATE = {"numpy": _UNSET, "warned": False}
_STATE_LOCK = threading.Lock()


def _load_numpy():
    """Import numpy at most once; cache the module (or the failure)."""
    module = _STATE["numpy"]
    if module is _UNSET:
        with _STATE_LOCK:
            module = _STATE["numpy"]
            if module is _UNSET:
                try:
                    import numpy  # type: ignore[import-not-found]
                    module = numpy
                except Exception:
                    module = None
                _STATE["numpy"] = module
    return module


def numpy_available() -> bool:
    """True when the numpy backend can actually run."""
    return _load_numpy() is not None


def reset_kernel_state() -> None:
    """Forget the cached numpy import and the one-time fallback warning.

    Test hook: lets a ``sys.modules`` guard simulate a numpy-less
    environment (and restore it) within one process.
    """
    with _STATE_LOCK:
        _STATE["numpy"] = _UNSET
        _STATE["warned"] = False


def _warn_numpy_missing() -> None:
    with _STATE_LOCK:
        if _STATE["warned"]:
            return
        _STATE["warned"] = True
    warnings.warn(
        "simulation kernel 'numpy' requested but numpy is not importable; "
        "falling back to the Python-int kernel (install the [numpy] extra "
        "to enable vectorized simulation)", RuntimeWarning, stacklevel=3)


def normalize_kernel(spec: Optional[str]) -> str:
    """Validate a kernel spec string; returns the normalized choice name."""
    if spec is None:
        return "auto"
    name = str(spec).strip().lower()
    if name not in KERNEL_CHOICES:
        # Same uniform message as Registry.resolve, with the "auto" routing
        # alias folded into the accepted names.
        known = ", ".join(KERNEL_CHOICES)
        raise ValueError(
            f"unknown {KERNELS.kind} {spec!r}; expected one of: {known}")
    return name


def get_kernel(spec=None) -> "IntKernel":
    """Resolve a kernel spec (name, None or kernel object) to a kernel.

    ``None``/``"auto"`` pick numpy when available; ``"numpy"`` without
    numpy warns once and falls back to the int oracle.
    """
    if isinstance(spec, IntKernel):
        return spec
    name = normalize_kernel(spec)
    if name == "int":
        return _INT_KERNEL
    if name == "numpy" and not numpy_available():
        _warn_numpy_missing()
        return _INT_KERNEL
    # "auto" or an explicit, available "numpy"
    return _NUMPY_KERNEL if numpy_available() else _INT_KERNEL


def kernel_info(spec=None) -> Dict[str, Optional[str]]:
    """Attribution record for stats/bench JSON: resolved kernel + version."""
    kernel = get_kernel(spec)
    info: Dict[str, Optional[str]] = {"kernel": kernel.name}
    if kernel.name == "numpy":
        module = _load_numpy()
        info["numpy_version"] = getattr(module, "__version__", "unknown")
    return info


# --------------------------------------------------------------------- #
# int oracle: event-driven faulty-machine walks
# --------------------------------------------------------------------- #
def detect_mask_planes(compiled: CompiledNetlist, program, site: Tuple,
                       fault_value: int, g1: List[int], g0: List[int],
                       frozen, mask: int, obs_flags) -> int:
    """Three-valued (two-plane) detection mask of one fault over a window.

    Event-driven equivalent of the serial simulator's cone sweep: ops are
    evaluated in topological order starting from the fault site, but only
    when one of their inputs actually differs from the good machine, and
    only differing nets enter the overlay.  Nets equal to the good value
    contribute nothing to detection, so the returned mask is identical to
    the full cone sweep's.
    """
    f1 = mask if fault_value else 0
    f0 = 0 if fault_value else mask
    forced = -1
    branch_op = -1
    branch_pos = -1
    overlay: Dict[int, Tuple[int, int]] = {}
    heap: List[int] = []
    scheduled: Set[int] = set()
    net_load_ops = compiled.net_load_ops
    op_fanin = compiled.op_fanin
    op_fanout = compiled.op_fanout
    det = 0

    if site[0] == "net":
        forced = site[1]
        if g1[forced] == f1 and g0[forced] == f0:
            return 0  # forced value equals the good value everywhere
        overlay[forced] = (f1, f0)
        if obs_flags[forced]:
            det |= (g1[forced] & f0) | (g0[forced] & f1)
        for op, _pos in net_load_ops[forced]:
            if op not in scheduled:
                scheduled.add(op)
                heapq.heappush(heap, op)
    elif site[0] == "branch":
        branch_op, branch_pos = site[1], site[2]
        scheduled.add(branch_op)
        heapq.heappush(heap, branch_op)
    else:
        return 0

    while heap:
        op = heapq.heappop(heap)
        args = []
        for pos, nid in enumerate(op_fanin[op]):
            if nid < 0:
                args.append(0)
                args.append(0)
                continue
            if op == branch_op and pos == branch_pos:
                args.append(f1)
                args.append(f0)
                continue
            entry = overlay.get(nid)
            if entry is None:
                args.append(g1[nid])
                args.append(g0[nid])
            else:
                args.append(entry[0])
                args.append(entry[1])
        out = program[op](mask, *args)
        for pos, nid in enumerate(op_fanout[op]):
            if nid < 0 or frozen[nid] or nid == forced:
                continue
            o1 = out[2 * pos]
            o0 = out[2 * pos + 1]
            if o1 == g1[nid] and o0 == g0[nid]:
                continue
            overlay[nid] = (o1, o0)
            if obs_flags[nid]:
                # Definite on both sides and different: good 1 vs faulty
                # 0, or good 0 vs faulty 1.
                det |= (g1[nid] & o0) | (g0[nid] & o1)
            for lop, _pos in net_load_ops[nid]:
                if lop not in scheduled:
                    scheduled.add(lop)
                    heapq.heappush(heap, lop)
    return det & mask


def detects_words(compiled: CompiledNetlist, program, site: Tuple,
                  fault_value: int, good: List[int], word_mask: int,
                  obs_flags, allowed: Optional[int] = None) -> bool:
    """Two-valued (word) detection of one fault over a pattern window.

    Same event-driven walk as :func:`detect_mask_planes`, with one extra
    liberty the boolean contract allows: return as soon as an observation
    point differs under an *allowed* pattern (the verdict cannot change
    once such a difference is observed).  ``allowed`` is the pattern-pair
    mask of two-pattern models; ``None`` allows the whole window.
    """
    if allowed is None:
        allowed = word_mask
    elif not allowed:
        return False
    fault_word = word_mask if fault_value else 0
    forced = -1
    branch_op = -1
    branch_pos = -1
    overlay: Dict[int, int] = {}
    heap: List[int] = []
    scheduled: Set[int] = set()
    net_load_ops = compiled.net_load_ops
    tied = compiled.tied
    op_fanin = compiled.op_fanin
    op_fanout = compiled.op_fanout

    if site[0] == "net":
        forced = site[1]
        if good[forced] == fault_word:
            return False
        overlay[forced] = fault_word
        if obs_flags[forced] and (good[forced] ^ fault_word) & allowed:
            return True
        for op, _pos in net_load_ops[forced]:
            if op not in scheduled:
                scheduled.add(op)
                heapq.heappush(heap, op)
    elif site[0] == "branch":
        branch_op, branch_pos = site[1], site[2]
        scheduled.add(branch_op)
        heapq.heappush(heap, branch_op)
    else:
        return False

    while heap:
        op = heapq.heappop(heap)
        args = []
        for pos, nid in enumerate(op_fanin[op]):
            if nid < 0:
                args.append(0)
                continue
            if op == branch_op and pos == branch_pos:
                args.append(fault_word)
                continue
            value = overlay.get(nid)
            args.append(good[nid] if value is None else value)
        out = program[op](word_mask, *args)
        for pos, nid in enumerate(op_fanout[op]):
            if nid < 0 or tied[nid] is not None or nid == forced:
                continue
            value = out[pos] & word_mask
            if value == good[nid]:
                continue
            overlay[nid] = value
            if obs_flags[nid] and (value ^ good[nid]) & allowed:
                return True
            for lop, _pos in net_load_ops[nid]:
                if lop not in scheduled:
                    scheduled.add(lop)
                    heapq.heappush(heap, lop)
    return False


class IntKernel:
    """The Python big-int oracle kernel.

    Thin dispatcher over the existing engines: the per-op plane loop for
    full passes and the event-driven cone walks above for fault detection.
    Simulator modules are imported lazily so :mod:`repro.simulation.kernels`
    stays importable from any of them without a cycle.
    """

    name = "int"

    def run_plane_ops(self, compiled: CompiledNetlist, p1: List[int],
                      p0: List[int], mask: int, frozen) -> None:
        """One full levelized three-valued pass, in place."""
        from repro.simulation.simulator import plane_program, run_plane_ops
        program, _ = plane_program(compiled)
        run_plane_ops(compiled, program, p1, p0, mask, frozen)

    def detect_planes(self, compiled: CompiledNetlist,
                      items: Sequence[Tuple[Tuple, int]],
                      g1: List[int], g0: List[int], frozen, mask: int,
                      obs_flags) -> List[int]:
        """Per-fault three-valued detection masks over one window.

        ``items`` is a sequence of ``(resolved site, stuck value)``; the
        result holds one full detection mask per item (pattern-pair masks
        of two-pattern models are the caller's business).
        """
        from repro.simulation.simulator import plane_program
        program, _ = plane_program(compiled)
        return [detect_mask_planes(compiled, program, site, value, g1, g0,
                                   frozen, mask, obs_flags)
                for site, value in items]

    def detect_words(self, compiled: CompiledNetlist,
                     items: Sequence[Tuple[Tuple, int, Optional[int]]],
                     good: List[int], word_mask: int,
                     obs_flags) -> List[bool]:
        """Per-fault two-valued detection verdicts over one window.

        ``items`` is a sequence of ``(resolved site, stuck value, allowed
        pattern mask or None)``.
        """
        from repro.simulation.parallel import word_program
        program = word_program(compiled)
        return [detects_words(compiled, program, site, value, good,
                              word_mask, obs_flags, allowed)
                for site, value, allowed in items]


# --------------------------------------------------------------------- #
# numpy backend: per-(level, kind) gather/scatter plans
# --------------------------------------------------------------------- #
class _Group:
    """All same-kind ops of one level, as contiguous gather/scatter indices."""

    __slots__ = ("level", "kind", "in_idx", "out_idx", "n_out", "size")

    def __init__(self, level, kind, in_idx, out_idx, n_out, size):
        self.level = level
        self.kind = kind
        self.in_idx = in_idx      # (size, arity) int32, NO_NET -> read sink
        self.out_idx = out_idx    # (n_out, size) int32, tied -> write sink
        self.n_out = n_out
        self.size = size


class _Plan:
    """The lowered form of a compiled netlist for vectorized execution.

    Value matrices carry two extra rows beyond the real nets: a *read sink*
    (always zero — the value of unconnected input pins) and a *write sink*
    (tied nets and dangling outputs scatter there, so no masking is needed
    in the inner loop).
    """

    __slots__ = ("n_rows", "read_sink", "write_sink", "groups", "op_slot",
                 "net_first_group", "tied_frozen")

    def __init__(self, compiled: CompiledNetlist, np) -> None:
        n_nets = compiled.n_nets
        self.read_sink = n_nets
        self.write_sink = n_nets + 1
        self.n_rows = n_nets + 2
        tied = compiled.tied
        self.tied_frozen = bytes(
            1 if tied[nid] is not None else 0 for nid in range(n_nets))

        buckets: Dict[Tuple[int, str], List[int]] = {}
        for op in range(compiled.n_ops):
            key = (compiled.op_level[op], compiled.op_cell[op].name)
            buckets.setdefault(key, []).append(op)

        self.groups: List[_Group] = []
        self.op_slot: Dict[int, Tuple[int, int]] = {}
        for (level, kind) in sorted(buckets):
            ops = buckets[(level, kind)]
            arity = len(compiled.op_fanin[ops[0]])
            n_out = len(compiled.op_fanout[ops[0]])
            in_idx = np.empty((len(ops), max(arity, 1)), dtype=np.int32)
            out_idx = np.empty((n_out, len(ops)), dtype=np.int32)
            serial = len(self.groups)
            for row, op in enumerate(ops):
                self.op_slot[op] = (serial, row)
                fanin = compiled.op_fanin[op]
                for pos in range(max(arity, 1)):
                    nid = fanin[pos] if pos < arity else NO_NET
                    in_idx[row, pos] = nid if nid >= 0 else self.read_sink
                for pos, nid in enumerate(compiled.op_fanout[op]):
                    out_idx[pos, row] = (nid if nid >= 0 and tied[nid] is None
                                         else self.write_sink)
            self.groups.append(
                _Group(level, kind, in_idx, out_idx, n_out, len(ops)))

        # First group (serial) whose ops read a given net: the batched
        # sweep may start there — everything earlier recomputes good values.
        first = [len(self.groups)] * n_nets
        for op in range(compiled.n_ops):
            serial = self.op_slot[op][0]
            for nid in compiled.op_fanin[op]:
                if nid >= 0 and serial < first[nid]:
                    first[nid] = serial
        self.net_first_group = first


def _build_np_word_fns(np):
    """Two-valued per-pin vector functions, keyed by cell kind.

    Each takes ``(mask, [per-pin arrays], shape)`` and returns one array
    per output pin.  Plain binary ops over per-pin gathers measurably beat
    a 3-D gather + axis reduction, so that is the only shape used here.
    """
    U64 = np.uint64

    def and_n(m, pins, shape):
        acc = pins[0] & pins[1]
        for p in pins[2:]:
            acc = acc & p
        return (acc,)

    def nand_n(m, pins, shape):
        acc = pins[0] & pins[1]
        for p in pins[2:]:
            acc = acc & p
        return (~acc & m,)

    def or_n(m, pins, shape):
        acc = pins[0] | pins[1]
        for p in pins[2:]:
            acc = acc | p
        return (acc,)

    def nor_n(m, pins, shape):
        acc = pins[0] | pins[1]
        for p in pins[2:]:
            acc = acc | p
        return (~acc & m,)

    fns = {
        "TIE0": lambda m, pins, shape: (np.zeros(shape, dtype=U64),),
        "TIE1": lambda m, pins, shape: (np.full(shape, m, dtype=U64),),
        "BUF": lambda m, pins, shape: (pins[0],),
        "INV": lambda m, pins, shape: (~pins[0] & m,),
        "XOR2": lambda m, pins, shape: (pins[0] ^ pins[1],),
        "XNOR2": lambda m, pins, shape: (~(pins[0] ^ pins[1]) & m,),
        "MUX2": lambda m, pins, shape: (
            pins[0] & ~pins[2] | pins[1] & pins[2],),
        "AO21": lambda m, pins, shape: (pins[0] & pins[1] | pins[2],),
        "OA21": lambda m, pins, shape: ((pins[0] | pins[1]) & pins[2],),
        "AOI21": lambda m, pins, shape: (
            ~(pins[0] & pins[1] | pins[2]) & m,),
        "OAI21": lambda m, pins, shape: (
            ~((pins[0] | pins[1]) & pins[2]) & m,),
        "HA": lambda m, pins, shape: (pins[0] ^ pins[1], pins[0] & pins[1]),
        "FA": lambda m, pins, shape: (
            pins[0] ^ pins[1] ^ pins[2],
            pins[0] & pins[1] | pins[0] & pins[2] | pins[1] & pins[2]),
    }
    for arity in (2, 3, 4):
        fns[f"AND{arity}"] = and_n
        fns[f"NAND{arity}"] = nand_n
        fns[f"OR{arity}"] = or_n
        fns[f"NOR{arity}"] = nor_n
    return fns


def _build_np_plane_fns(np):
    """Three-valued per-pin vector functions, keyed by cell kind.

    Each takes ``(mask, [per-pin 1-planes], [per-pin 0-planes], shape)``
    and returns the flat ``(y1, y0[, z1, z0...])`` tuple of the int plane
    algebra.  The plane algebra never complements, so no masking is needed.
    """
    U64 = np.uint64

    def and_n(m, p1, p0, shape):
        r1 = p1[0] & p1[1]
        r0 = p0[0] | p0[1]
        for a1, a0 in zip(p1[2:], p0[2:]):
            r1 = r1 & a1
            r0 = r0 | a0
        return (r1, r0)

    def nand_n(m, p1, p0, shape):
        r1, r0 = and_n(m, p1, p0, shape)
        return (r0, r1)

    def or_n(m, p1, p0, shape):
        r1 = p1[0] | p1[1]
        r0 = p0[0] & p0[1]
        for a1, a0 in zip(p1[2:], p0[2:]):
            r1 = r1 | a1
            r0 = r0 & a0
        return (r1, r0)

    def nor_n(m, p1, p0, shape):
        r1, r0 = or_n(m, p1, p0, shape)
        return (r0, r1)

    def xor2(m, p1, p0, shape):
        return ((p1[0] & p0[1]) | (p0[0] & p1[1]),
                (p1[0] & p1[1]) | (p0[0] & p0[1]))

    def xnor2(m, p1, p0, shape):
        y1, y0 = xor2(m, p1, p0, shape)
        return (y0, y1)

    def mux2(m, p1, p0, shape):
        d01, d11, s1 = p1
        d00, d10, s0 = p0
        return ((s0 & d01) | (s1 & d11) | (d01 & d11),
                (s0 & d00) | (s1 & d10) | (d00 & d10))

    def ha(m, p1, p0, shape):
        s1, s0 = xor2(m, p1, p0, shape)
        return (s1, s0, p1[0] & p1[1], p0[0] | p0[1])

    def fa(m, p1, p0, shape):
        t1 = (p1[0] & p0[1]) | (p0[0] & p1[1])
        t0 = (p1[0] & p1[1]) | (p0[0] & p0[1])
        s1 = (t1 & p0[2]) | (t0 & p1[2])
        s0 = (t1 & p1[2]) | (t0 & p0[2])
        co1 = (p1[0] & p1[1]) | (p1[0] & p1[2]) | (p1[1] & p1[2])
        co0 = (p0[0] & p0[1]) | (p0[0] & p0[2]) | (p0[1] & p0[2])
        return (s1, s0, co1, co0)

    fns = {
        "TIE0": lambda m, p1, p0, shape: (np.zeros(shape, dtype=U64),
                                          np.full(shape, m, dtype=U64)),
        "TIE1": lambda m, p1, p0, shape: (np.full(shape, m, dtype=U64),
                                          np.zeros(shape, dtype=U64)),
        "BUF": lambda m, p1, p0, shape: (p1[0], p0[0]),
        "INV": lambda m, p1, p0, shape: (p0[0], p1[0]),
        "XOR2": xor2,
        "XNOR2": xnor2,
        "MUX2": mux2,
        "AO21": lambda m, p1, p0, shape: ((p1[0] & p1[1]) | p1[2],
                                          (p0[0] | p0[1]) & p0[2]),
        "OA21": lambda m, p1, p0, shape: ((p1[0] | p1[1]) & p1[2],
                                          (p0[0] & p0[1]) | p0[2]),
        "AOI21": lambda m, p1, p0, shape: ((p0[0] | p0[1]) & p0[2],
                                           (p1[0] & p1[1]) | p1[2]),
        "OAI21": lambda m, p1, p0, shape: ((p0[0] & p0[1]) | p0[2],
                                           (p1[0] | p1[1]) & p1[2]),
        "HA": ha,
        "FA": fa,
    }
    for arity in (2, 3, 4):
        fns[f"AND{arity}"] = and_n
        fns[f"NAND{arity}"] = nand_n
        fns[f"OR{arity}"] = or_n
        fns[f"NOR{arity}"] = nor_n
    return fns


_NP_TABLES: Optional[Tuple[dict, dict]] = None


def _np_tables(np) -> Tuple[dict, dict]:
    global _NP_TABLES
    if _NP_TABLES is None:
        _NP_TABLES = (_build_np_word_fns(np), _build_np_plane_fns(np))
    return _NP_TABLES


class NumpyKernel(IntKernel):
    """The vectorized numpy kernel.

    Inherits the int implementations as the fallback for everything a plan
    cannot express (non-library cells, >64-pattern windows, frozen sets
    beyond the tied nets), so a single instance is always safe to dispatch
    through.
    """

    name = "numpy"

    # ------------------------------------------------------------------ #
    def _plan(self, compiled: CompiledNetlist) -> Optional[_Plan]:
        np = _load_numpy()
        if np is None:
            return None

        def build(compiled: CompiledNetlist) -> Optional[_Plan]:
            word_fns, plane_fns = _np_tables(np)
            for cell in compiled.op_cell:
                if cell.name not in word_fns or cell.name not in plane_fns:
                    return None  # custom cell: the int oracle handles it
            return _Plan(compiled, np)

        return compiled.extension("numpy_kernel_plan", build)

    # ------------------------------------------------------------------ #
    def run_plane_ops(self, compiled: CompiledNetlist, p1: List[int],
                      p0: List[int], mask: int, frozen) -> None:
        np = _load_numpy()
        plan = (self._plan(compiled)
                if np is not None and 0 < mask < (1 << 64) else None)
        if plan is None:
            super().run_plane_ops(compiled, p1, p0, mask, frozen)
            return
        _, plane_fns = _np_tables(np)
        U64 = np.uint64
        m = U64(mask)
        n = compiled.n_nets
        V1 = np.zeros(plan.n_rows, dtype=U64)
        V0 = np.zeros(plan.n_rows, dtype=U64)
        V1[:n] = np.array(p1, dtype=U64)
        V0[:n] = np.array(p0, dtype=U64)
        # Frozen nets (ties, overrides, forced sites) are re-forced at
        # every level boundary: by levelization this is equivalent to the
        # int loop's skip-frozen-writes rule.
        fr = np.flatnonzero(np.frombuffer(frozen, dtype=np.uint8))
        keep1 = V1[fr]
        keep0 = V0[fr]
        level = None
        for group in plan.groups:
            if level is not None and group.level != level and fr.size:
                V1[fr] = keep1
                V0[fr] = keep0
            level = group.level
            arity = group.in_idx.shape[1]
            p1s = [V1[group.in_idx[:, k]] for k in range(arity)]
            p0s = [V0[group.in_idx[:, k]] for k in range(arity)]
            out = plane_fns[group.kind](m, p1s, p0s, (group.size,))
            for pos in range(group.n_out):
                V1[group.out_idx[pos]] = out[2 * pos]
                V0[group.out_idx[pos]] = out[2 * pos + 1]
        if fr.size:
            V1[fr] = keep1
            V0[fr] = keep0
        p1[:] = V1[:n].tolist()
        p0[:] = V0[:n].tolist()

    # ------------------------------------------------------------------ #
    def detect_words(self, compiled: CompiledNetlist, items, good,
                     word_mask: int, obs_flags) -> List[bool]:
        np = _load_numpy()
        plan = (self._plan(compiled)
                if np is not None and 0 < word_mask < (1 << 64) else None)
        if plan is None:
            return super().detect_words(compiled, items, good, word_mask,
                                        obs_flags)
        results = [False] * len(items)
        n_groups = len(plan.groups)
        cone_sizes = compiled.fanout_cone_sizes()
        walk_program = None
        # Prefilter exactly like the int walk: inert/phantom sites and
        # net forces equal to the good value can never detect.  Small-cone
        # faults are routed straight through the walk (see
        # :data:`WORD_WALK_CUTOFF`).
        entries = []  # (item index, site, fault word, start group, allowed)
        for index, (site, stuck_value, allowed) in enumerate(items):
            if allowed is None:
                allowed = word_mask
            elif not allowed:
                continue
            fault_word = word_mask if stuck_value else 0
            if site[0] == "net":
                if good[site[1]] == fault_word:
                    continue
                start = plan.net_first_group[site[1]]
                cone = cone_sizes[site[1]]
            elif site[0] == "branch":
                start = plan.op_slot[site[1]][0]
                cone = 1 + max((cone_sizes[nid]
                                for nid in compiled.op_fanout[site[1]]
                                if nid >= 0), default=0)
            else:
                continue
            if cone <= WORD_WALK_CUTOFF:
                if walk_program is None:
                    from repro.simulation.parallel import word_program
                    walk_program = word_program(compiled)
                results[index] = detects_words(
                    compiled, walk_program, site, stuck_value, good,
                    word_mask, obs_flags, allowed)
                continue
            entries.append((index, site, fault_word, start, allowed))
        if not entries:
            return results
        entries.sort(key=lambda entry: entry[3])

        word_fns, _ = _np_tables(np)
        U64 = np.uint64
        m = U64(word_mask)
        good_arr = np.zeros(plan.n_rows, dtype=U64)
        good_arr[:compiled.n_nets] = np.array(good, dtype=U64)
        obs_rows = np.flatnonzero(np.frombuffer(obs_flags, dtype=np.uint8))
        good_obs = good_arr[obs_rows]

        for lo in range(0, len(entries), WORD_LANES):
            chunk = entries[lo:lo + WORD_LANES]
            batch = len(chunk)
            V = np.repeat(good_arr[:, None], batch, axis=1)
            net_rows: List[int] = []
            net_cols: List[int] = []
            net_words: List[int] = []
            branch_by_group: Dict[int, List[Tuple[int, int, int, int]]] = {}
            start_group = n_groups
            for col, (_index, site, fword, start, _allowed) in enumerate(chunk):
                if start < start_group:
                    start_group = start
                if site[0] == "net":
                    net_rows.append(site[1])
                    net_cols.append(col)
                    net_words.append(fword)
                else:
                    serial, row = plan.op_slot[site[1]]
                    branch_by_group.setdefault(serial, []).append(
                        (row, site[2], col, fword))
            force = None
            if net_rows:
                force = (np.array(net_rows, dtype=np.int64),
                         np.array(net_cols, dtype=np.int64),
                         np.array(net_words, dtype=U64))
                V[force[0], force[1]] = force[2]
            level = None
            for serial in range(start_group, n_groups):
                group = plan.groups[serial]
                if level is not None and group.level != level and force:
                    V[force[0], force[1]] = force[2]
                level = group.level
                arity = group.in_idx.shape[1]
                pins = [V[group.in_idx[:, k]] for k in range(arity)]
                overrides = branch_by_group.get(serial)
                if overrides:
                    for row, pos, col, fword in overrides:
                        pins[pos][row, col] = fword
                out = word_fns[group.kind](m, pins, (group.size, batch))
                for pos in range(group.n_out):
                    V[group.out_idx[pos]] = out[pos]
            if force:
                V[force[0], force[1]] = force[2]
            det = np.bitwise_or.reduce(V[obs_rows] ^ good_obs[:, None],
                                       axis=0)
            for col, (index, _site, _fword, _start, allowed) in enumerate(chunk):
                results[index] = bool(int(det[col]) & allowed)
        return results

    # ------------------------------------------------------------------ #
    def detect_planes(self, compiled: CompiledNetlist, items, g1, g0,
                      frozen, mask: int, obs_flags) -> List[int]:
        np = _load_numpy()
        plan = (self._plan(compiled)
                if np is not None and 0 < mask < (1 << 64) else None)
        if plan is not None and bytes(frozen) != plan.tied_frozen:
            plan = None  # extra frozen nets: only the int walk honours them
        if plan is None:
            return super().detect_planes(compiled, items, g1, g0, frozen,
                                         mask, obs_flags)
        results = [0] * len(items)
        n_groups = len(plan.groups)
        cone_sizes = compiled.fanout_cone_sizes()
        walk_program = None
        entries = []  # (item index, site, f1, f0, start group)
        for index, (site, stuck_value) in enumerate(items):
            f1 = mask if stuck_value else 0
            f0 = 0 if stuck_value else mask
            if site[0] == "net":
                if g1[site[1]] == f1 and g0[site[1]] == f0:
                    continue
                start = plan.net_first_group[site[1]]
                cone = cone_sizes[site[1]]
            elif site[0] == "branch":
                start = plan.op_slot[site[1]][0]
                cone = 1 + max((cone_sizes[nid]
                                for nid in compiled.op_fanout[site[1]]
                                if nid >= 0), default=0)
            else:
                continue
            if cone <= PLANE_WALK_CUTOFF:
                if walk_program is None:
                    from repro.simulation.simulator import plane_program
                    walk_program = plane_program(compiled)[0]
                results[index] = detect_mask_planes(
                    compiled, walk_program, site, stuck_value, g1, g0,
                    frozen, mask, obs_flags)
                continue
            entries.append((index, site, f1, f0, start))
        if not entries:
            return results
        entries.sort(key=lambda entry: entry[4])

        _, plane_fns = _np_tables(np)
        U64 = np.uint64
        m = U64(mask)
        good1 = np.zeros(plan.n_rows, dtype=U64)
        good0 = np.zeros(plan.n_rows, dtype=U64)
        good1[:compiled.n_nets] = np.array(g1, dtype=U64)
        good0[:compiled.n_nets] = np.array(g0, dtype=U64)
        obs_rows = np.flatnonzero(np.frombuffer(obs_flags, dtype=np.uint8))
        good1_obs = good1[obs_rows][:, None]
        good0_obs = good0[obs_rows][:, None]

        for lo in range(0, len(entries), PLANE_LANES):
            chunk = entries[lo:lo + PLANE_LANES]
            batch = len(chunk)
            V1 = np.repeat(good1[:, None], batch, axis=1)
            V0 = np.repeat(good0[:, None], batch, axis=1)
            net_rows: List[int] = []
            net_cols: List[int] = []
            net_f1: List[int] = []
            net_f0: List[int] = []
            branch_by_group: Dict[int, List[Tuple[int, int, int, int, int]]] = {}
            start_group = n_groups
            for col, (_index, site, f1, f0, start) in enumerate(chunk):
                if start < start_group:
                    start_group = start
                if site[0] == "net":
                    net_rows.append(site[1])
                    net_cols.append(col)
                    net_f1.append(f1)
                    net_f0.append(f0)
                else:
                    serial, row = plan.op_slot[site[1]]
                    branch_by_group.setdefault(serial, []).append(
                        (row, site[2], col, f1, f0))
            force = None
            if net_rows:
                force = (np.array(net_rows, dtype=np.int64),
                         np.array(net_cols, dtype=np.int64),
                         np.array(net_f1, dtype=U64),
                         np.array(net_f0, dtype=U64))
                V1[force[0], force[1]] = force[2]
                V0[force[0], force[1]] = force[3]
            level = None
            for serial in range(start_group, n_groups):
                group = plan.groups[serial]
                if level is not None and group.level != level and force:
                    V1[force[0], force[1]] = force[2]
                    V0[force[0], force[1]] = force[3]
                level = group.level
                arity = group.in_idx.shape[1]
                p1s = [V1[group.in_idx[:, k]] for k in range(arity)]
                p0s = [V0[group.in_idx[:, k]] for k in range(arity)]
                overrides = branch_by_group.get(serial)
                if overrides:
                    for row, pos, col, f1, f0 in overrides:
                        p1s[pos][row, col] = f1
                        p0s[pos][row, col] = f0
                out = plane_fns[group.kind](m, p1s, p0s, (group.size, batch))
                for pos in range(group.n_out):
                    V1[group.out_idx[pos]] = out[2 * pos]
                    V0[group.out_idx[pos]] = out[2 * pos + 1]
            if force:
                V1[force[0], force[1]] = force[2]
                V0[force[0], force[1]] = force[3]
            # Definite on both sides and different: good 1 vs faulty 0, or
            # good 0 vs faulty 1.  Nets equal to the good machine (including
            # every net the fault never reached) contribute nothing.
            det = np.bitwise_or.reduce(
                (good1_obs & V0[obs_rows]) | (good0_obs & V1[obs_rows]),
                axis=0)
            for col, (index, _site, _f1, _f0, _start) in enumerate(chunk):
                results[index] = int(det[col]) & mask
        return results


_INT_KERNEL = KERNELS.register("int", IntKernel())
_NUMPY_KERNEL = KERNELS.register("numpy", NumpyKernel())
