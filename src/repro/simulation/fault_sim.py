"""Serial single-fault simulation on the combinational view (any model).

Given a set of input patterns (primary inputs plus flip-flop state values),
the simulator determines which faults are detected: a fault is detected by a
pattern when at least one observation point (observable output port, or
sequential-cell data input when ``observe_state_inputs`` is set) differs
between the good machine and the faulty machine with a definite (non-X)
value on both sides.

The engine is model-generic: every fault resolves — through its registered
:class:`~repro.faults.models.FaultModel` — to an injection+detection spec
(:class:`~repro.faults.models.InjectionSpec`), never to hardcoded stuck-at
values.  Single-pattern models (stuck-at) force the spec's value at the
site; two-pattern launch-on-capture models (transition-delay) additionally
require the site's *good* value in the immediately preceding pattern to
equal the spec's initialization value, expressed as a pattern-pair mask
ANDed onto the per-window detection mask — pairs crossing a window
boundary carry the last bit of the previous window's good planes.

The engine runs on the compiled netlist IR (:mod:`repro.netlist.compiled`):

* patterns are batched into machine words and simulated through the
  two-bit-plane engine of :mod:`repro.simulation.simulator`, so one good
  simulation covers up to ``word_size`` patterns;
* each faulty machine is only re-evaluated over the precomputed fanout cone
  of its fault site (ID-indexed op lists), with all pattern batches of the
  window evaluated at once;
* *fault dropping* (``drop_detected``, on by default) stops simulating a
  fault as soon as one pattern detects it.

Pin-fault semantics are respected: a fault on an instance *input* pin only
perturbs the value seen by that pin; a fault on an *output* pin or module
port perturbs the whole net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.faults.models import Fault, InjectionSpec, resolve_injection
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import NO_NET, CompiledNetlist
from repro.netlist.module import Netlist
from repro.simulation.simulator import (CombinationalSimulator,
                                        observed_state_input_nets,
                                        plane_program, run_plane_ops)

#: Injection descriptors resolved once per fault.
_INERT = ("inert",)


def observation_net_names(netlist: Netlist, observe_state_inputs: bool = True,
                          state_input_roles: Optional[Sequence[str]] = None
                          ) -> Set[str]:
    """Observation-point net names: observable output ports plus (optionally)
    the observed sequential-cell input nets."""
    nets: Set[str] = set(netlist.observable_output_ports())
    if observe_state_inputs:
        for inst in netlist.sequential_instances():
            nets.update(observed_state_input_nets(inst, state_input_roles))
    return nets


def resolve_site(compiled: CompiledNetlist, fault: Fault) -> Tuple:
    """Classify a fault site against the compiled IR.

    Returns ``("net", nid)`` for stem/port faults, ``("branch", op, pos)``
    for combinational input-pin faults, ``("phantom",)`` for port faults on
    unknown nets and ``("inert",)`` for sites that cannot perturb the
    combinational time frame.  Shared by the serial and the sharded fault
    simulators, so both classify every site identically.
    """
    if fault.is_port_fault:
        nid = compiled.id_of(fault.site)
        if nid is None:
            return ("phantom",)  # unknown net: no effect on the machine
        return ("net", nid)
    kind, index, pos, is_input = compiled.pin_ref(fault.site)
    table = ((compiled.op_fanin if is_input else compiled.op_fanout)
             if kind == "op"
             else (compiled.seq_fanin if is_input else compiled.seq_fanout))
    nid = table[index][pos]
    if nid == NO_NET:
        return _INERT
    if not is_input:
        return ("net", nid)
    if kind == "seq":
        # A branch fault on a sequential input pin perturbs only what the
        # flip-flop captures; the combinational time frame never changes.
        return _INERT
    return ("branch", index, pos)


def excitation_net_id(compiled: CompiledNetlist, site: Tuple) -> int:
    """The net whose good value excites a fault at a resolved site.

    For stem/port sites this is the forced net itself; for branch sites it
    is the net feeding the perturbed input pin (the value the pin sees in
    the good machine).  ``-1`` for inert/phantom sites.  Two-pattern models
    evaluate their initialization condition on this net.
    """
    if site[0] == "net":
        return site[1]
    if site[0] == "branch":
        return compiled.op_fanin[site[1]][site[2]]
    return -1


def pair_allowed_mask(compiled: CompiledNetlist, site: Tuple,
                      spec: InjectionSpec, g1: Sequence[int],
                      g0: Sequence[int], mask: int,
                      prev: Optional[Tuple] = None) -> int:
    """Pattern-pair mask of a two-pattern fault over one plane window.

    Bit *i* is set when pattern *i* may serve as the capture pattern: the
    good machine held the spec's initialization value — definitely — at the
    excitation net under pattern *i-1*.  ``prev`` is the previous window's
    ``(g1, g0, width)`` (or None at the very first window), so consecutive
    pairs spanning a window boundary are honoured; bit 0 of the first
    window has no predecessor and is never allowed.

    Shared by the serial and the sharded simulators, so both mask every
    detection identically (the byte-identity contract).
    """
    nid = excitation_net_id(compiled, site)
    if nid < 0:
        return 0
    init_plane = g0 if spec.init_value == 0 else g1
    allowed = (init_plane[nid] << 1) & mask
    if prev is not None:
        prev_g1, prev_g0, prev_width = prev
        prev_plane = prev_g0 if spec.init_value == 0 else prev_g1
        if (prev_plane[nid] >> (prev_width - 1)) & 1:
            allowed |= 1
    return allowed


def good_planes(compiled: CompiledNetlist, program,
                window: Sequence[Mapping[str, int]], kernel=None):
    """Pattern-parallel good-machine simulation of a pattern window.

    Returns ``(g1, g0, frozen, mask)`` — the two value planes per net, the
    per-net frozen flags (ties) and the all-ones window mask.  ``kernel``
    (a resolved kernel object) routes the levelized pass through that
    backend; None runs the classic int loop with ``program`` directly.
    """
    n = compiled.n_nets
    g1 = [0] * n
    g0 = [0] * n
    frozen = bytearray(n)
    tied = compiled.tied
    mask = (1 << len(window)) - 1
    for nid in range(n):
        t = tied[nid]
        if t is not None:
            if t:
                g1[nid] = mask
            else:
                g0[nid] = mask
            frozen[nid] = 1
    net_id = compiled.net_id
    for index, pattern in enumerate(window):
        bit = 1 << index
        for name, value in pattern.items():
            nid = net_id.get(name)
            if nid is None or tied[nid] is not None:
                continue
            if value == LOGIC_1:
                g1[nid] |= bit
            elif value == LOGIC_0:
                g0[nid] |= bit
    if kernel is None:
        run_plane_ops(compiled, program, g1, g0, mask, frozen)
    else:
        kernel.run_plane_ops(compiled, g1, g0, mask, frozen)
    return g1, g0, frozen, mask


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run."""

    detected: Set[Fault] = field(default_factory=set)
    undetected: Set[Fault] = field(default_factory=set)
    detecting_pattern: Dict[Fault, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 0.0


class FaultSimulator:
    """Serial single-fault simulator over the compiled IR.

    For each window of up to ``word_size`` patterns the good machine is
    simulated once (pattern-parallel); each fault is then simulated by
    re-evaluating only the ops in the structural fan-out cone of the fault
    site — over the whole window at once.  With ``drop_detected`` (the
    default) a fault leaves the simulation as soon as a pattern detects it.
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 state_input_roles: Optional[Sequence[str]] = None,
                 drop_detected: bool = True,
                 word_size: int = 64,
                 kernel: Optional[str] = None) -> None:
        self.netlist = netlist
        self.sim = CombinationalSimulator(netlist, kernel=kernel)
        self.kernel = self.sim.kernel
        self.observe_state_inputs = observe_state_inputs
        self.state_input_roles = (tuple(state_input_roles)
                                  if state_input_roles is not None else None)
        self.drop_detected = drop_detected
        self.word_size = word_size
        self._observation_nets = self._compute_observation_nets()

    def _compute_observation_nets(self) -> Set[str]:
        return observation_net_names(self.netlist, self.observe_state_inputs,
                                     self.state_input_roles)

    def _observation_ids(self, compiled: CompiledNetlist) -> List[int]:
        net_id = compiled.net_id
        return [net_id[name] for name in self._observation_nets
                if name in net_id]

    def _observation_flags(self, compiled: CompiledNetlist) -> bytearray:
        flags = bytearray(compiled.n_nets)
        for nid in self._observation_ids(compiled):
            flags[nid] = 1
        return flags

    # ------------------------------------------------------------------ #
    # fault-site resolution
    # ------------------------------------------------------------------ #
    def _resolve(self, compiled: CompiledNetlist, fault: Fault) -> Tuple:
        """Classify the fault site: net force, comb branch pin, or inert."""
        return resolve_site(compiled, fault)

    # ------------------------------------------------------------------ #
    # plane seeding
    # ------------------------------------------------------------------ #
    def _good_planes(self, compiled: CompiledNetlist, program,
                     window: Sequence[Mapping[str, int]]):
        """Pattern-parallel good-machine simulation of a pattern window."""
        return good_planes(compiled, program, window, kernel=self.kernel)

    def _planes_from_values(self, compiled: CompiledNetlist,
                            values: Mapping[str, int]):
        """Lift a full name→value map (e.g. a cached good simulation) back
        onto width-1 planes."""
        n = compiled.n_nets
        g1 = [0] * n
        g0 = [0] * n
        frozen = bytearray(n)
        net_id = compiled.net_id
        for name, value in values.items():
            nid = net_id.get(name)
            if nid is None:
                continue
            if value == LOGIC_1:
                g1[nid] = 1
            elif value == LOGIC_0:
                g0[nid] = 1
        for nid, t in enumerate(compiled.tied):
            if t is not None:
                frozen[nid] = 1
        return g1, g0, frozen, 1

    # ------------------------------------------------------------------ #
    # faulty-machine simulation (cone-limited, pattern-parallel)
    # ------------------------------------------------------------------ #
    def _faulty_overlay(self, compiled: CompiledNetlist, program, site: Tuple,
                        fault_value: int, g1, g0, frozen, mask
                        ) -> Optional[Dict[int, Tuple[int, int]]]:
        """Sparse {net id: (f1, f0)} of nets that differ in the faulty
        machine; None when the fault cannot perturb anything."""
        forced = -1
        branch_op = -1
        branch_pos = -1
        overlay: Dict[int, Tuple[int, int]] = {}
        f1 = mask if fault_value else 0
        f0 = 0 if fault_value else mask

        if site[0] == "net":
            forced = site[1]
            if g1[forced] == f1 and g0[forced] == f0:
                return None  # forced value equals the good value everywhere
            overlay[forced] = (f1, f0)
            cone = compiled.fanout_ops(forced)
        elif site[0] == "branch":
            branch_op, branch_pos = site[1], site[2]
            cone = compiled.branch_cone(branch_op)
        else:
            return None

        op_fanin = compiled.op_fanin
        op_fanout = compiled.op_fanout
        for op in cone:
            changed = False
            args = []
            for pos, nid in enumerate(op_fanin[op]):
                if nid < 0:
                    args.append(0)
                    args.append(0)
                    continue
                if op == branch_op and pos == branch_pos:
                    args.append(f1)
                    args.append(f0)
                    changed = True
                    continue
                entry = overlay.get(nid)
                if entry is None:
                    args.append(g1[nid])
                    args.append(g0[nid])
                else:
                    args.append(entry[0])
                    args.append(entry[1])
                    if entry[0] != g1[nid] or entry[1] != g0[nid]:
                        changed = True
            if not changed:
                continue
            out = program[op](mask, *args)
            for pos, nid in enumerate(op_fanout[op]):
                if nid < 0 or frozen[nid] or nid == forced:
                    continue
                overlay[nid] = (out[2 * pos], out[2 * pos + 1])
        return overlay

    # ------------------------------------------------------------------ #
    # single-pattern primitives
    # ------------------------------------------------------------------ #
    def good_values(self, pattern: Mapping[str, int]) -> Dict[str, int]:
        """Simulate the fault-free machine for one pattern (flat input map)."""
        return self.sim.evaluate(pattern, state=pattern)

    def faulty_values(self, fault: Fault,
                      pattern: Mapping[str, int],
                      good: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Simulate the faulty machine for one pattern.

        For a two-pattern model this is the *capture-frame* view: the site
        shows the spec's stuck value (the transition arrived late).
        """
        good = good if good is not None else self.good_values(pattern)
        compiled = self.sim._refresh()
        program, _ = plane_program(compiled)
        values = dict(good)
        spec = resolve_injection(fault)
        site = self._resolve(compiled, fault)
        if site[0] == "phantom":
            values[fault.site] = spec.stuck_value
            return values
        g1, g0, frozen, mask = self._planes_from_values(compiled, good)
        overlay = self._faulty_overlay(compiled, program, site,
                                       spec.stuck_value, g1, g0, frozen, mask)
        if overlay:
            names = compiled.net_names
            for nid, (f1, f0) in overlay.items():
                values[names[nid]] = (LOGIC_1 if f1 else
                                      (LOGIC_0 if f0 else LOGIC_X))
        return values

    def detects(self, fault: Fault, pattern: Mapping[str, int],
                good: Optional[Mapping[str, int]] = None,
                prev_pattern: Optional[Mapping[str, int]] = None) -> bool:
        """True if ``pattern`` detects ``fault`` at an observation point.

        For a two-pattern model ``prev_pattern`` supplies the launch
        pattern (the preceding one); a lone pattern never detects a
        two-pattern fault, so without it the answer is always False.
        """
        compiled = self.sim._refresh()
        program, _ = plane_program(compiled)
        if good is None:
            g1, g0, frozen, mask = self._good_planes(compiled, program, [pattern])
        else:
            g1, g0, frozen, mask = self._planes_from_values(compiled, good)
        spec = resolve_injection(fault)
        site = self._resolve(compiled, fault)
        obs_flags = self._observation_flags(compiled)
        det = self.kernel.detect_planes(compiled, [(site, spec.stuck_value)],
                                        g1, g0, frozen, mask, obs_flags)[0]
        if det and spec.frames > 1:
            if prev_pattern is None:
                return False
            p1, p0, _, _ = self._good_planes(compiled, program,
                                             [prev_pattern])
            det &= pair_allowed_mask(compiled, site, spec, g1, g0, mask,
                                     prev=(p1, p0, 1))
        return bool(det)

    # ------------------------------------------------------------------ #
    # multi-pattern runs
    # ------------------------------------------------------------------ #
    def run(self, faults: Iterable[Fault],
            patterns: Sequence[Mapping[str, int]],
            drop_detected: Optional[bool] = None) -> FaultSimResult:
        """Fault-simulate ``patterns`` against ``faults``.

        With ``drop_detected`` (fault dropping, the constructor default — on
        unless overridden) a fault is not re-simulated once a pattern
        detects it: the standard fault-simulation speed-up.  Two-pattern
        faults treat ``patterns`` as one consecutive launch-on-capture
        sequence (pattern *i-1* launches, pattern *i* captures — across
        window boundaries too).
        """
        drop = self.drop_detected if drop_detected is None else drop_detected
        compiled = self.sim._refresh()
        program, _ = plane_program(compiled)
        obs_flags = self._observation_flags(compiled)

        result = FaultSimResult()
        remaining: List[Fault] = list(faults)
        sites = {fault: self._resolve(compiled, fault) for fault in remaining}
        specs = {fault: resolve_injection(fault) for fault in remaining}

        start = 0
        n_patterns = len(patterns)
        prev_planes: Optional[Tuple] = None
        while start < n_patterns and remaining:
            window = patterns[start:start + self.word_size]
            g1, g0, frozen, mask = self._good_planes(compiled, program, window)
            items = [(sites[fault], specs[fault].stuck_value)
                     for fault in remaining]
            dets = self.kernel.detect_planes(compiled, items, g1, g0, frozen,
                                             mask, obs_flags)
            still_undetected: List[Fault] = []
            for fault, det in zip(remaining, dets):
                spec = specs[fault]
                if det and spec.frames > 1:
                    det &= pair_allowed_mask(compiled, sites[fault], spec,
                                             g1, g0, mask, prev=prev_planes)
                if det:
                    result.detected.add(fault)
                    if drop:
                        # First detecting pattern of the window.
                        result.detecting_pattern[fault] = (
                            start + (det & -det).bit_length() - 1)
                    else:
                        # Keep simulating; like the serial reference, the
                        # recorded index is the *last* detecting pattern.
                        result.detecting_pattern[fault] = (
                            start + det.bit_length() - 1)
                        still_undetected.append(fault)
                else:
                    still_undetected.append(fault)
            remaining = still_undetected
            prev_planes = (g1, g0, len(window))
            start += len(window)
        result.undetected.update(remaining)
        return result
