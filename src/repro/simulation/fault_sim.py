"""Serial stuck-at fault simulation on the combinational view.

Given a set of fully-specified input patterns (primary inputs plus flip-flop
state values), the simulator determines which faults are detected: a fault is
detected by a pattern when at least one observation point (observable output
port, or sequential-cell data input when ``observe_state_inputs`` is set)
differs between the good machine and the faulty machine with a definite
(non-X) value on both sides.

Pin-fault semantics are respected: a fault on an instance *input* pin only
perturbs the value seen by that pin; a fault on an *output* pin or module
port perturbs the whole net.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.faults.fault import StuckAtFault
from repro.netlist.cells import LOGIC_X
from repro.netlist.module import Netlist, Pin
from repro.simulation.simulator import CombinationalSimulator, observed_state_input_nets


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run."""

    detected: Set[StuckAtFault] = field(default_factory=set)
    undetected: Set[StuckAtFault] = field(default_factory=set)
    detecting_pattern: Dict[StuckAtFault, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 0.0


class FaultSimulator:
    """Serial single-fault simulator.

    For each pattern the good machine is simulated once; each fault is then
    simulated by re-evaluating only the instances in the structural fan-out
    of the fault site, which keeps the serial approach workable for the
    module-sized netlists used in the tests and the SBST grading flow.
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 state_input_roles: Optional[Sequence[str]] = None) -> None:
        self.netlist = netlist
        self.sim = CombinationalSimulator(netlist)
        self.observe_state_inputs = observe_state_inputs
        self.state_input_roles = (tuple(state_input_roles)
                                  if state_input_roles is not None else None)
        self._observation_nets = self._compute_observation_nets()

    def _compute_observation_nets(self) -> Set[str]:
        nets: Set[str] = set(self.netlist.observable_output_ports())
        if self.observe_state_inputs:
            for inst in self.netlist.sequential_instances():
                nets.update(observed_state_input_nets(inst, self.state_input_roles))
        return nets

    # ------------------------------------------------------------------ #
    # single-pattern primitives
    # ------------------------------------------------------------------ #
    def good_values(self, pattern: Mapping[str, int]) -> Dict[str, int]:
        """Simulate the fault-free machine for one pattern (flat input map)."""
        return self.sim.evaluate(pattern, state=pattern)

    def faulty_values(self, fault: StuckAtFault,
                      pattern: Mapping[str, int],
                      good: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Simulate the faulty machine for one pattern."""
        good = good if good is not None else self.good_values(pattern)
        values = dict(good)

        faulty_pin: Optional[Pin] = None
        if fault.is_port_fault:
            values[fault.site] = fault.value
        else:
            pin = self.netlist.pin_by_name(fault.site)
            if pin.net is None:
                return values
            if pin.is_output:
                values[pin.net.name] = fault.value
            else:
                faulty_pin = pin

        # Re-evaluate the combinational logic in topological order; only
        # instances whose inputs changed (or that see the faulty branch pin)
        # can change their outputs.
        for inst in self.sim.order:
            pin_values = {}
            changed_input = False
            for pin in inst.input_pins():
                if pin.net is None:
                    pin_values[pin.port] = LOGIC_X
                    continue
                value = values[pin.net.name]
                if faulty_pin is not None and pin is faulty_pin:
                    value = fault.value
                    changed_input = True
                elif value != good[pin.net.name]:
                    changed_input = True
                pin_values[pin.port] = value
            if not changed_input:
                continue
            outputs = inst.cell.evaluate(pin_values)
            for out_pin in inst.output_pins():
                if out_pin.net is None:
                    continue
                net = out_pin.net
                if net.tied is not None:
                    continue
                if not fault.is_port_fault and out_pin.name == fault.site:
                    continue  # stuck output stays at the fault value
                values[net.name] = outputs.get(out_pin.port, LOGIC_X)

        return values

    def detects(self, fault: StuckAtFault, pattern: Mapping[str, int],
                good: Optional[Mapping[str, int]] = None) -> bool:
        """True if ``pattern`` detects ``fault`` at an observation point."""
        good = good if good is not None else self.good_values(pattern)
        faulty = self.faulty_values(fault, pattern, good)
        for net in self._observation_nets:
            g, f = good.get(net, LOGIC_X), faulty.get(net, LOGIC_X)
            if g != LOGIC_X and f != LOGIC_X and g != f:
                return True
        return False

    # ------------------------------------------------------------------ #
    # multi-pattern runs
    # ------------------------------------------------------------------ #
    def run(self, faults: Iterable[StuckAtFault],
            patterns: Sequence[Mapping[str, int]],
            drop_detected: bool = True) -> FaultSimResult:
        """Fault-simulate ``patterns`` against ``faults``.

        With ``drop_detected`` (fault dropping) a fault is not re-simulated
        once a pattern detects it — the standard fault-simulation speed-up.
        """
        result = FaultSimResult()
        remaining: List[StuckAtFault] = list(faults)
        for index, pattern in enumerate(patterns):
            if not remaining:
                break
            good = self.good_values(pattern)
            still_undetected: List[StuckAtFault] = []
            for fault in remaining:
                if self.detects(fault, pattern, good):
                    result.detected.add(fault)
                    result.detecting_pattern[fault] = index
                    if not drop_detected:
                        still_undetected.append(fault)
                else:
                    still_undetected.append(fault)
            remaining = still_undetected
        result.undetected.update(remaining)
        return result
