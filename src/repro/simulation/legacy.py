"""The pre-compiled-IR reference simulators (string-keyed object-graph walk).

These are the original, straightforward implementations of the three-valued
combinational simulator and the serial fault simulator: they traverse the
:class:`~repro.netlist.module.Netlist` object graph through string-keyed
dicts and evaluate cells via their ``eval_fn``.  They are kept as the
*reference semantics* for the compiled execution layer:

* the property tests cross-check the compiled engines against them on random
  circuits;
* ``benchmarks/test_runtime.py`` measures the compiled engines' speedup over
  them and asserts verdict equality.

They are not exported from :mod:`repro.simulation`; production code uses the
compiled-IR :class:`~repro.simulation.simulator.CombinationalSimulator` and
:class:`~repro.simulation.fault_sim.FaultSimulator`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.faults.fault import StuckAtFault
from repro.netlist.cells import LOGIC_X
from repro.netlist.module import Netlist, Pin
from repro.netlist.traversal import topological_instances


class LegacyCombinationalSimulator:
    """Evaluates the combinational network by walking the object graph."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.order = topological_instances(netlist)
        self._state_nets = [
            pin.net.name
            for inst in netlist.sequential_instances()
            for pin in inst.output_pins()
            if pin.net is not None
        ]

    @property
    def state_nets(self) -> list:
        return list(self._state_nets)

    def evaluate(self, inputs: Mapping[str, int],
                 state: Optional[Mapping[str, int]] = None,
                 overrides: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        values: Dict[str, int] = {}

        for name, net in self.netlist.nets.items():
            if net.tied is not None:
                values[name] = net.tied
            else:
                values[name] = LOGIC_X

        for name in self.netlist.input_ports():
            net = self.netlist.net(name)
            if net.tied is None:
                values[name] = inputs.get(name, LOGIC_X)

        if state:
            for name, value in state.items():
                if name in values and self.netlist.nets[name].tied is None:
                    values[name] = value

        if overrides:
            values.update(overrides)

        for inst in self.order:
            pin_values = {}
            for pin in inst.input_pins():
                pin_values[pin.port] = (
                    values[pin.net.name] if pin.net is not None else LOGIC_X
                )
            outputs = inst.cell.evaluate(pin_values)
            for pin in inst.output_pins():
                if pin.net is None:
                    continue
                net = pin.net
                if overrides and net.name in overrides:
                    continue
                if net.tied is not None:
                    continue
                values[net.name] = outputs.get(pin.port, LOGIC_X)

        return values

    def next_state(self, values: Mapping[str, int]) -> Dict[str, int]:
        nxt: Dict[str, int] = {}
        for inst in self.netlist.sequential_instances():
            pin_values = {}
            for pin in inst.input_pins():
                pin_values[pin.port] = (
                    values[pin.net.name] if pin.net is not None else LOGIC_X
                )
            result = inst.cell.evaluate(pin_values)
            new_value = result.get("__next__", LOGIC_X)
            for pin in inst.output_pins():
                if pin.net is not None:
                    if pin.net.tied is not None:
                        nxt[pin.net.name] = pin.net.tied
                    else:
                        nxt[pin.net.name] = new_value
        return nxt


class LegacyFaultSimulator:
    """Serial single-fault simulator over the netlist object graph.

    For each pattern the good machine is simulated once; each fault is then
    simulated by re-walking the full topological order, re-evaluating only
    instances whose inputs changed.
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 state_input_roles: Optional[Sequence[str]] = None) -> None:
        from repro.simulation.simulator import observed_state_input_nets

        self.netlist = netlist
        self.sim = LegacyCombinationalSimulator(netlist)
        self.observe_state_inputs = observe_state_inputs
        self.state_input_roles = (tuple(state_input_roles)
                                  if state_input_roles is not None else None)
        nets: Set[str] = set(netlist.observable_output_ports())
        if observe_state_inputs:
            for inst in netlist.sequential_instances():
                nets.update(observed_state_input_nets(inst, self.state_input_roles))
        self._observation_nets = nets

    # ------------------------------------------------------------------ #
    def good_values(self, pattern: Mapping[str, int]) -> Dict[str, int]:
        return self.sim.evaluate(pattern, state=pattern)

    def faulty_values(self, fault: StuckAtFault,
                      pattern: Mapping[str, int],
                      good: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        good = good if good is not None else self.good_values(pattern)
        values = dict(good)

        faulty_pin: Optional[Pin] = None
        if fault.is_port_fault:
            values[fault.site] = fault.value
        else:
            pin = self.netlist.pin_by_name(fault.site)
            if pin.net is None:
                return values
            if pin.is_output:
                values[pin.net.name] = fault.value
            else:
                faulty_pin = pin

        for inst in self.sim.order:
            pin_values = {}
            changed_input = False
            for pin in inst.input_pins():
                if pin.net is None:
                    pin_values[pin.port] = LOGIC_X
                    continue
                value = values[pin.net.name]
                if faulty_pin is not None and pin is faulty_pin:
                    value = fault.value
                    changed_input = True
                elif value != good[pin.net.name]:
                    changed_input = True
                pin_values[pin.port] = value
            if not changed_input:
                continue
            outputs = inst.cell.evaluate(pin_values)
            for out_pin in inst.output_pins():
                if out_pin.net is None:
                    continue
                net = out_pin.net
                if net.tied is not None:
                    continue
                if not fault.is_port_fault and out_pin.name == fault.site:
                    continue  # stuck output stays at the fault value
                values[net.name] = outputs.get(out_pin.port, LOGIC_X)

        return values

    def detects(self, fault: StuckAtFault, pattern: Mapping[str, int],
                good: Optional[Mapping[str, int]] = None) -> bool:
        good = good if good is not None else self.good_values(pattern)
        faulty = self.faulty_values(fault, pattern, good)
        for net in self._observation_nets:
            g, f = good.get(net, LOGIC_X), faulty.get(net, LOGIC_X)
            if g != LOGIC_X and f != LOGIC_X and g != f:
                return True
        return False

    # ------------------------------------------------------------------ #
    def run(self, faults: Iterable[StuckAtFault],
            patterns: Sequence[Mapping[str, int]],
            drop_detected: bool = True):
        from repro.simulation.fault_sim import FaultSimResult

        result = FaultSimResult()
        remaining: List[StuckAtFault] = list(faults)
        for index, pattern in enumerate(patterns):
            if not remaining:
                break
            good = self.good_values(pattern)
            still_undetected: List[StuckAtFault] = []
            for fault in remaining:
                if self.detects(fault, pattern, good):
                    result.detected.add(fault)
                    result.detecting_pattern[fault] = index
                    if not drop_detected:
                        still_undetected.append(fault)
                else:
                    still_undetected.append(fault)
            remaining = still_undetected
        result.undetected.update(remaining)
        return result
