"""Levelised three-valued combinational simulation.

The simulator operates on the *combinational view* of a netlist: callers
provide values for the primary inputs and for the outputs of sequential
cells (the current state); the simulator computes the value of every net.
Tied nets (circuit manipulation, §3.2/§3.3 of the paper) override whatever
would otherwise drive them.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.netlist.cells import LOGIC_X
from repro.netlist.module import Netlist
from repro.netlist.traversal import topological_instances


class CombinationalSimulator:
    """Evaluates the combinational network of a netlist.

    The topological order is computed once at construction; repeated
    :meth:`evaluate` calls reuse it, which is what the fault simulator and
    the ATPG forward-implication step rely on.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.order = topological_instances(netlist)
        self._state_nets = [
            pin.net.name
            for inst in netlist.sequential_instances()
            for pin in inst.output_pins()
            if pin.net is not None
        ]

    @property
    def state_nets(self) -> list:
        """Net names driven by sequential cells (the pseudo-primary inputs)."""
        return list(self._state_nets)

    def evaluate(self, inputs: Mapping[str, int],
                 state: Optional[Mapping[str, int]] = None,
                 overrides: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Compute all net values.

        Parameters
        ----------
        inputs:
            Values for primary-input nets (missing inputs default to X).
        state:
            Values for sequential-cell output nets (missing default to X).
        overrides:
            Net values forced regardless of their driver — used for fault
            injection and for what-if analyses.  Overrides take precedence
            over ties.
        """
        values: Dict[str, int] = {}

        for name, net in self.netlist.nets.items():
            if net.tied is not None:
                values[name] = net.tied
            else:
                values[name] = LOGIC_X

        for name in self.netlist.input_ports():
            net = self.netlist.net(name)
            if net.tied is None:
                values[name] = inputs.get(name, LOGIC_X)

        if state:
            for name, value in state.items():
                if name in values and self.netlist.nets[name].tied is None:
                    values[name] = value

        if overrides:
            values.update(overrides)

        for inst in self.order:
            pin_values = {}
            for pin in inst.input_pins():
                pin_values[pin.port] = (
                    values[pin.net.name] if pin.net is not None else LOGIC_X
                )
            outputs = inst.cell.evaluate(pin_values)
            for pin in inst.output_pins():
                if pin.net is None:
                    continue
                net = pin.net
                if overrides and net.name in overrides:
                    continue
                if net.tied is not None:
                    continue
                values[net.name] = outputs.get(pin.port, LOGIC_X)

        return values

    def output_values(self, values: Mapping[str, int],
                      observable_only: bool = True) -> Dict[str, int]:
        """Extract the module output-port values from a full value map."""
        ports = (self.netlist.observable_output_ports() if observable_only
                 else self.netlist.output_ports())
        return {p: values[p] for p in ports}

    def next_state(self, values: Mapping[str, int]) -> Dict[str, int]:
        """Compute the next value of every sequential cell's output net.

        The keys of the returned dict are the *output net names* of the
        sequential instances, so the result can be fed back as ``state`` in
        the next :meth:`evaluate` call.
        """
        nxt: Dict[str, int] = {}
        for inst in self.netlist.sequential_instances():
            pin_values = {}
            for pin in inst.input_pins():
                pin_values[pin.port] = (
                    values[pin.net.name] if pin.net is not None else LOGIC_X
                )
            result = inst.cell.evaluate(pin_values)
            new_value = result.get("__next__", LOGIC_X)
            for pin in inst.output_pins():
                if pin.net is not None:
                    if pin.net.tied is not None:
                        nxt[pin.net.name] = pin.net.tied
                    else:
                        nxt[pin.net.name] = new_value
        return nxt


#: Sequential input-pin roles through which a fault effect is captured into
#: architectural state in mission mode.  Scan (SI/SE) and debug (DI/DE) pins
#: are excluded: nothing reads what they would capture once the tester and
#: the debugger are gone.  Clock and reset pins stay observable — a fault
#: effect reaching them stops or resets a mission register, which is very
#: much visible in the field.
MISSION_CAPTURE_ROLES = ("data", "reset", "clock")


def observed_state_input_nets(inst, roles=None):
    """Net names of ``inst``'s input pins that count as observation points.

    ``roles=None`` observes every input pin (off-line view: the scan chain
    makes all captured values readable).  With an explicit role tuple only
    the pins playing one of those roles on the cell are observed.
    """
    if roles is None:
        return [pin.net.name for pin in inst.input_pins() if pin.net is not None]
    allowed = {inst.cell.role_pin(role) for role in roles}
    allowed.discard(None)
    return [pin.net.name for pin in inst.input_pins()
            if pin.net is not None and pin.port in allowed]
