"""Levelised three-valued simulation over the compiled netlist IR.

The execution model is *two bit-planes over Python ints*: the value of a net
across ``W`` patterns is a pair of arbitrary-width integers ``(p1, p0)``
where bit *i* of ``p1`` means "1 under pattern *i*", bit *i* of ``p0`` means
"0 under pattern *i*", and neither bit set means X.  Gate evaluation is pure
bitwise arithmetic (AND of the 1-planes, OR of the 0-planes, ...), so one
pass over the level-ordered op arrays of a
:class:`~repro.netlist.compiled.CompiledNetlist` simulates up to a machine
word of three-valued patterns at once.  A single pattern is simply the
width-1 case.

The per-cell plane functions are built once at module import
(:data:`_PLANE_OPS` / :data:`_SEQ_PLANE_OPS`); the per-op program for a
netlist is resolved once per *compiled netlist* (not per simulator) through
:meth:`CompiledNetlist.extension`.  Cells outside the standard library fall
back to a per-bit truth-table evaluation of their ``eval_fn``.

:class:`CombinationalSimulator` keeps its historical API — dict-in /
dict-out, ``order`` and ``state_nets`` attributes — while the fault
simulators use the integer-plane internals directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import CompiledNetlist, get_compiled
from repro.netlist.module import Netlist


# --------------------------------------------------------------------- #
# plane algebra: value planes are interleaved flat arguments
# (a1, a0, b1, b0, ...); results are flat (y1, y0[, z1, z0...]) tuples.
# --------------------------------------------------------------------- #
def _plane_buf(m, a1, a0):
    return (a1, a0)


def _plane_inv(m, a1, a0):
    return (a0, a1)


def _make_and(invert: bool):
    def fn(m, *flat):
        r1, r0 = m, 0
        it = iter(flat)
        for a1 in it:
            r1 &= a1
            r0 |= next(it)
        return (r0, r1) if invert else (r1, r0)
    return fn


def _make_or(invert: bool):
    def fn(m, *flat):
        r1, r0 = 0, m
        it = iter(flat)
        for a1 in it:
            r1 |= a1
            r0 &= next(it)
        return (r0, r1) if invert else (r1, r0)
    return fn


def _xor2(a1, a0, b1, b0):
    return ((a1 & b0) | (a0 & b1), (a1 & b1) | (a0 & b0))


def _plane_xor2(m, a1, a0, b1, b0):
    return _xor2(a1, a0, b1, b0)


def _plane_xnor2(m, a1, a0, b1, b0):
    y1, y0 = _xor2(a1, a0, b1, b0)
    return (y0, y1)


def _mux(d01, d00, d11, d10, s1, s0):
    """v_mux(sel, d0, d1) on planes: defined when the selected leg is
    definite, or when the select is X but both legs agree definitely."""
    return ((s0 & d01) | (s1 & d11) | (d01 & d11),
            (s0 & d00) | (s1 & d10) | (d00 & d10))


def _plane_mux2(m, d01, d00, d11, d10, s1, s0):
    return _mux(d01, d00, d11, d10, s1, s0)


def _plane_ao21(m, a1, a0, b1, b0, c1, c0):
    return ((a1 & b1) | c1, (a0 | b0) & c0)


def _plane_oa21(m, a1, a0, b1, b0, c1, c0):
    return ((a1 | b1) & c1, (a0 & b0) | c0)


def _plane_aoi21(m, a1, a0, b1, b0, c1, c0):
    return ((a0 | b0) & c0, (a1 & b1) | c1)


def _plane_oai21(m, a1, a0, b1, b0, c1, c0):
    return ((a0 & b0) | c0, (a1 | b1) & c1)


def _plane_ha(m, a1, a0, b1, b0):
    s1, s0 = _xor2(a1, a0, b1, b0)
    return (s1, s0, a1 & b1, a0 | b0)


def _plane_fa(m, a1, a0, b1, b0, c1, c0):
    t1, t0 = _xor2(a1, a0, b1, b0)
    s1, s0 = _xor2(t1, t0, c1, c0)
    co1 = (a1 & b1) | (a1 & c1) | (b1 & c1)
    co0 = (a0 & b0) | (a0 & c0) | (b0 & c0)
    return (s1, s0, co1, co0)


_PLANE_OPS: Dict[str, Callable] = {
    "TIE0": lambda m: (0, m),
    "TIE1": lambda m: (m, 0),
    "BUF": _plane_buf,
    "INV": _plane_inv,
    "XOR2": _plane_xor2,
    "XNOR2": _plane_xnor2,
    "MUX2": _plane_mux2,
    "AO21": _plane_ao21,
    "OA21": _plane_oa21,
    "AOI21": _plane_aoi21,
    "OAI21": _plane_oai21,
    "HA": _plane_ha,
    "FA": _plane_fa,
}
for _arity in (2, 3, 4):
    _PLANE_OPS[f"AND{_arity}"] = _make_and(invert=False)
    _PLANE_OPS[f"NAND{_arity}"] = _make_and(invert=True)
    _PLANE_OPS[f"OR{_arity}"] = _make_or(invert=False)
    _PLANE_OPS[f"NOR{_arity}"] = _make_or(invert=True)


def _seq_dff(m, d1, d0, ck1, ck0):
    return (d1, d0)


def _seq_dffr(m, d1, d0, ck1, ck0, rn1, rn0):
    return (rn1 & d1, rn0 | (rn1 & d0))


def _seq_sdff(m, d1, d0, si1, si0, se1, se0, ck1, ck0):
    return _mux(d1, d0, si1, si0, se1, se0)


def _seq_sdffr(m, d1, d0, si1, si0, se1, se0, ck1, ck0, rn1, rn0):
    t1, t0 = _mux(d1, d0, si1, si0, se1, se0)
    return (rn1 & t1, rn0 | (rn1 & t0))


def _seq_dbgff(m, d1, d0, di1, di0, de1, de0, ck1, ck0):
    return _mux(d1, d0, di1, di0, de1, de0)


#: Next-state plane functions per sequential cell (inputs in cell order).
_SEQ_PLANE_OPS: Dict[str, Callable] = {
    "DFF": _seq_dff,
    "DFFR": _seq_dffr,
    "SDFF": _seq_sdff,
    "SDFFR": _seq_sdffr,
    "DBGFF": _seq_dbgff,
}


# --------------------------------------------------------------------- #
# truth-table fallback for cells without a hand-written plane function
# --------------------------------------------------------------------- #
#: The width-1 plane encoding of a logic value: value -> (p1, p0).  The
#: single source of truth shared by the scalar bridges (PODEM's five-valued
#: machine, the sequential simulator's state planes).
PLANE_ENCODING = {LOGIC_0: (0, 1), LOGIC_1: (1, 0), LOGIC_X: (0, 0)}
_DECODE = PLANE_ENCODING


def _fallback_plane_fn(cell, output_names: Tuple[str, ...]) -> Callable:
    """Per-bit evaluation of ``cell.eval_fn`` lifted to the plane layout."""
    inputs = cell.inputs
    n_out = len(output_names)

    def fn(m, *flat):
        width = m.bit_length()
        res = [0] * (2 * n_out)
        for b in range(width):
            bit = 1 << b
            values = {}
            for k, port in enumerate(inputs):
                if flat[2 * k] & bit:
                    values[port] = LOGIC_1
                elif flat[2 * k + 1] & bit:
                    values[port] = LOGIC_0
                else:
                    values[port] = LOGIC_X
            out = cell.evaluate(values)
            for j, port in enumerate(output_names):
                v = out.get(port, LOGIC_X)
                if v == LOGIC_1:
                    res[2 * j] |= bit
                elif v == LOGIC_0:
                    res[2 * j + 1] |= bit
        return tuple(res)

    return fn


def _build_plane_program(compiled: CompiledNetlist):
    """Per-op / per-seq plane evaluators (memoised on the compiled netlist)."""
    comb = []
    for cell in compiled.op_cell:
        fn = _PLANE_OPS.get(cell.name)
        if fn is None:
            fn = _fallback_plane_fn(cell, cell.outputs)
        comb.append(fn)
    seq = []
    for cell in compiled.seq_cell:
        fn = _SEQ_PLANE_OPS.get(cell.name)
        if fn is None:
            fn = _fallback_plane_fn(cell, ("__next__",))
        seq.append(fn)
    return comb, seq


def plane_program(compiled: CompiledNetlist):
    """The (combinational, sequential) plane-evaluator arrays of a netlist."""
    return compiled.extension("plane_program", _build_plane_program)


def run_plane_ops(compiled: CompiledNetlist, program, p1: List[int],
                  p0: List[int], mask: int, frozen) -> None:
    """One levelized pass over all combinational ops, in place.

    ``frozen`` flags (bytearray indexed by net ID) mark nets whose value
    must not be overwritten: ties, overrides and forced fault sites.
    """
    op_fanin = compiled.op_fanin
    op_fanout = compiled.op_fanout
    for i, fn in enumerate(program):
        args = []
        for nid in op_fanin[i]:
            if nid >= 0:
                args.append(p1[nid])
                args.append(p0[nid])
            else:
                args.append(0)
                args.append(0)
        out = fn(mask, *args)
        for pos, nid in enumerate(op_fanout[i]):
            if nid >= 0 and not frozen[nid]:
                p1[nid] = out[2 * pos]
                p0[nid] = out[2 * pos + 1]


def scalar3_program(compiled: CompiledNetlist):
    """Per-op scalar three-valued evaluators derived from the plane program.

    Used by PODEM's five-valued simulation: each evaluator takes the input
    values positionally (``LOGIC_0/1/X``) and returns one value per output.
    """
    def build(compiled: CompiledNetlist):
        comb_planes, _ = plane_program(compiled)
        decode = _DECODE

        def scalarize(fn):
            def sfn(*vals):
                flat = []
                for v in vals:
                    d = decode[v]
                    flat.append(d[0])
                    flat.append(d[1])
                out = fn(1, *flat)
                return tuple(
                    LOGIC_1 if out[2 * j] else (LOGIC_0 if out[2 * j + 1]
                                                else LOGIC_X)
                    for j in range(len(out) // 2))
            return sfn

        return [scalarize(fn) for fn in comb_planes]

    return compiled.extension("scalar3_program", build)


class CombinationalSimulator:
    """Evaluates the combinational network of a netlist.

    The compiled form is fetched once at construction and revalidated on
    each :meth:`evaluate` call (a cheap fingerprint check), so repeated
    evaluations reuse one shared :class:`CompiledNetlist` — as do every
    other simulator and ATPG engine targeting the same netlist.
    """

    def __init__(self, netlist: Netlist,
                 kernel: Optional[str] = None) -> None:
        from repro.simulation.kernels import get_kernel
        self.netlist = netlist
        self._compiled = get_compiled(netlist)
        self.kernel = get_kernel(kernel)

    def _refresh(self) -> CompiledNetlist:
        compiled = get_compiled(self.netlist)
        self._compiled = compiled
        return compiled

    @property
    def compiled(self) -> CompiledNetlist:
        return self._compiled

    @property
    def order(self) -> list:
        """Topological order of the combinational instances (shared list —
        treat as read-only)."""
        return self._compiled.instances

    @property
    def state_nets(self) -> list:
        """Net names driven by sequential cells (the pseudo-primary inputs)."""
        names = self._compiled.net_names
        return [names[nid] for nid in self._compiled.state_net_ids]

    # ------------------------------------------------------------------ #
    def evaluate(self, inputs: Mapping[str, int],
                 state: Optional[Mapping[str, int]] = None,
                 overrides: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Compute all net values.

        Parameters
        ----------
        inputs:
            Values for primary-input nets (missing inputs default to X).
        state:
            Values for sequential-cell output nets (missing default to X).
        overrides:
            Net values forced regardless of their driver — used for fault
            injection and for what-if analyses.  Overrides take precedence
            over ties.
        """
        compiled = self._refresh()
        n = compiled.n_nets
        net_id = compiled.net_id
        p1 = [0] * n
        p0 = [0] * n
        frozen = bytearray(n)
        tied = compiled.tied

        for nid in range(n):
            t = tied[nid]
            if t is not None:
                if t:
                    p1[nid] = 1
                else:
                    p0[nid] = 1
                frozen[nid] = 1

        for nid in compiled.input_port_ids:
            if tied[nid] is None:
                v = inputs.get(compiled.net_names[nid], LOGIC_X)
                p1[nid] = 1 if v == LOGIC_1 else 0
                p0[nid] = 1 if v == LOGIC_0 else 0

        if state:
            for name, value in state.items():
                nid = net_id.get(name)
                if nid is not None and tied[nid] is None:
                    p1[nid] = 1 if value == LOGIC_1 else 0
                    p0[nid] = 1 if value == LOGIC_0 else 0

        extra: Dict[str, int] = {}
        if overrides:
            for name, value in overrides.items():
                nid = net_id.get(name)
                if nid is None:
                    extra[name] = value
                    continue
                p1[nid] = 1 if value == LOGIC_1 else 0
                p0[nid] = 1 if value == LOGIC_0 else 0
                frozen[nid] = 1

        self.kernel.run_plane_ops(compiled, p1, p0, 1, frozen)

        values = {
            name: (LOGIC_1 if p1[nid] else (LOGIC_0 if p0[nid] else LOGIC_X))
            for nid, name in enumerate(compiled.net_names)
        }
        if extra:
            values.update(extra)
        return values

    def output_values(self, values: Mapping[str, int],
                      observable_only: bool = True) -> Dict[str, int]:
        """Extract the module output-port values from a full value map."""
        ports = (self.netlist.observable_output_ports() if observable_only
                 else self.netlist.output_ports())
        return {p: values[p] for p in ports}

    def next_state(self, values: Mapping[str, int]) -> Dict[str, int]:
        """Compute the next value of every sequential cell's output net.

        The keys of the returned dict are the *output net names* of the
        sequential instances, so the result can be fed back as ``state`` in
        the next :meth:`evaluate` call.
        """
        compiled = self._refresh()
        _, seq_program = plane_program(compiled)
        names = compiled.net_names
        tied = compiled.tied
        decode = _DECODE
        nxt: Dict[str, int] = {}
        for i, fn in enumerate(seq_program):
            flat = []
            for nid in compiled.seq_fanin[i]:
                d = decode[values[names[nid]] if nid >= 0 else LOGIC_X]
                flat.append(d[0])
                flat.append(d[1])
            out = fn(1, *flat)
            new_value = (LOGIC_1 if out[0] else (LOGIC_0 if out[1] else LOGIC_X))
            for nid in compiled.seq_fanout[i]:
                if nid >= 0:
                    if tied[nid] is not None:
                        nxt[names[nid]] = tied[nid]
                    else:
                        nxt[names[nid]] = new_value
        return nxt


#: Sequential input-pin roles through which a fault effect is captured into
#: architectural state in mission mode.  Scan (SI/SE) and debug (DI/DE) pins
#: are excluded: nothing reads what they would capture once the tester and
#: the debugger are gone.  Clock and reset pins stay observable — a fault
#: effect reaching them stops or resets a mission register, which is very
#: much visible in the field.
MISSION_CAPTURE_ROLES = ("data", "reset", "clock")


def observed_state_input_nets(inst, roles=None):
    """Net names of ``inst``'s input pins that count as observation points.

    ``roles=None`` observes every input pin (off-line view: the scan chain
    makes all captured values readable).  With an explicit role tuple only
    the pins playing one of those roles on the cell are observed.
    """
    if roles is None:
        return [pin.net.name for pin in inst.input_pins() if pin.net is not None]
    allowed = {inst.cell.role_pin(role) for role in roles}
    allowed.discard(None)
    return [pin.net.name for pin in inst.input_pins()
            if pin.net is not None and pin.port in allowed]
