"""Bit-parallel (pattern-parallel) two-valued simulation.

Python integers are used as arbitrary-width bit vectors: a net's value for
``n`` patterns is held in one integer whose bit *i* is the net value under
pattern *i*.  This gives a pattern-parallel good-machine simulation and a
pattern-parallel serial-fault simulation that the random-pattern phase of the
untestability engine and the SBST fault-grading flow use to knock out the
bulk of detectable faults cheaply.

The simulator runs on the compiled netlist IR: net words live in a flat list
indexed by net ID, gates are evaluated through the word-level cell function
table — built **once at module import** (:data:`_WORD_OPS`) and resolved to a
per-op array once per *compiled netlist* (not per simulator construction) —
and each faulty machine only re-evaluates the precomputed fanout cone of its
fault site.

X values are not representable here; callers must supply fully-specified
patterns (the ATPG/implication machinery handles the three-valued cases).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.faults.models import Fault, InjectionSpec, resolve_injection
from repro.netlist.compiled import NO_NET, CompiledNetlist
from repro.netlist.module import Netlist
from repro.simulation.simulator import CombinationalSimulator, observed_state_input_nets
from repro.utils.bitvec import mask


def _make_word_ops() -> Dict[str, Callable]:
    """Word-level evaluation functions per cell.

    Each function takes the all-ones mask of the pattern word followed by
    one bit-vector word per input pin (in cell order) and returns one word
    per output pin.  Built a single time when this module is imported.
    """
    def and_n(m, *args):
        acc = m
        for a in args:
            acc &= a
        return (acc,)

    def nand_n(m, *args):
        acc = m
        for a in args:
            acc &= a
        return (~acc & m,)

    def or_n(m, *args):
        acc = 0
        for a in args:
            acc |= a
        return (acc,)

    def nor_n(m, *args):
        acc = 0
        for a in args:
            acc |= a
        return (~acc & m,)

    fns: Dict[str, Callable] = {
        "TIE0": lambda m: (0,),
        "TIE1": lambda m: (m,),
        "BUF": lambda m, a: (a,),
        "INV": lambda m, a: (~a & m,),
        "XOR2": lambda m, a, b: ((a ^ b) & m,),
        "XNOR2": lambda m, a, b: (~(a ^ b) & m,),
        "MUX2": lambda m, d0, d1, s: ((d0 & ~s | d1 & s) & m,),
        "AO21": lambda m, a, b, c: ((a & b | c) & m,),
        "OA21": lambda m, a, b, c: ((a | b) & c & m,),
        "AOI21": lambda m, a, b, c: (~(a & b | c) & m,),
        "OAI21": lambda m, a, b, c: (~((a | b) & c) & m,),
        "HA": lambda m, a, b: ((a ^ b) & m, a & b),
        "FA": lambda m, a, b, ci: (
            (a ^ b ^ ci) & m,
            (a & b | a & ci | b & ci) & m,
        ),
    }
    for arity in (2, 3, 4):
        fns[f"AND{arity}"] = and_n
        fns[f"NAND{arity}"] = nand_n
        fns[f"OR{arity}"] = or_n
        fns[f"NOR{arity}"] = nor_n
    # Sequential cells appear in the combinational view only through their
    # outputs (state) and inputs (observation); they are never evaluated here.
    return fns


#: The word-level cell function table, built once at import time.
_WORD_OPS = _make_word_ops()


def _build_word_program(compiled: CompiledNetlist) -> List[Callable]:
    """Resolve the per-op word functions for a compiled netlist (memoised)."""
    program: List[Callable] = []
    for cell in compiled.op_cell:
        fn = _WORD_OPS.get(cell.name)
        if fn is None:
            raise NotImplementedError(
                f"no word-level model for cell {cell.name!r}")
        program.append(fn)
    return program


def word_program(compiled: CompiledNetlist) -> List[Callable]:
    return compiled.extension("word_program", _build_word_program)


def compute_good_words(compiled: CompiledNetlist,
                       patterns: Mapping[str, int],
                       n_patterns: int) -> Tuple[List[int], int]:
    """Good-machine word simulation: ``(values by net ID, window mask)``.

    Shared by :class:`ParallelPatternSimulator` and the sharded grading
    workers (:mod:`repro.simulation.sharded`), so both seed and evaluate
    the fault-free machine identically.
    """
    word_mask = mask(n_patterns)
    program = word_program(compiled)
    tied = compiled.tied
    net_id = compiled.net_id
    values = [0] * compiled.n_nets
    for nid, t in enumerate(tied):
        if t is not None:
            values[nid] = word_mask if t else 0
    for name, word in patterns.items():
        nid = net_id.get(name)
        if nid is not None and tied[nid] is None:
            values[nid] = word & word_mask
    op_fanout = compiled.op_fanout
    for i, fanin in enumerate(compiled.op_fanin):
        args = [values[nid] if nid >= 0 else 0 for nid in fanin]
        out = program[i](word_mask, *args)
        for pos, nid in enumerate(op_fanout[i]):
            if nid >= 0 and tied[nid] is None:
                values[nid] = out[pos]
    return values, word_mask


def pair_allowed_words(compiled: CompiledNetlist, site: Tuple,
                       spec: InjectionSpec, good: Sequence[int],
                       word_mask: int,
                       prev: Optional[Tuple] = None) -> int:
    """Pattern-pair mask of a two-pattern fault over one word window.

    The two-valued counterpart of
    :func:`repro.simulation.fault_sim.pair_allowed_mask`: bit *i* allows
    pattern *i* as the capture pattern when the good machine held the
    spec's initialization value at the excitation net under pattern *i-1*.
    ``prev`` is the previous window's ``(good words, width)`` so pairs
    spanning a window boundary are honoured.
    """
    from repro.simulation.fault_sim import excitation_net_id

    nid = excitation_net_id(compiled, site)
    if nid < 0:
        return 0
    word = good[nid]
    init_bits = word if spec.init_value else (~word & word_mask)
    allowed = (init_bits << 1) & word_mask
    if prev is not None:
        prev_good, prev_width = prev
        prev_bit = (prev_good[nid] >> (prev_width - 1)) & 1
        if prev_bit == spec.init_value:
            allowed |= 1
    return allowed


class ParallelPatternSimulator:
    """Pattern-parallel two-valued simulation and serial-fault detection.

    ``state_input_roles`` restricts which sequential input pins count as
    observation points: ``None`` observes every input pin (the off-line view —
    scan capture makes all of them readable), while an explicit role set such
    as ``("data", "reset")`` models mission-mode capture, where a fault effect
    reaching a scan/debug-only pin (SI, SE, DI, DE) is never stored into
    architectural state and therefore never observed.
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 exclude_output_ports: Optional[Set[str]] = None,
                 state_input_roles: Optional[Sequence[str]] = None,
                 kernel: Optional[str] = None) -> None:
        self.netlist = netlist
        self.sim = CombinationalSimulator(netlist, kernel=kernel)
        self.kernel = self.sim.kernel
        self.observe_state_inputs = observe_state_inputs
        self.exclude_output_ports = set(exclude_output_ports or ())
        self.state_input_roles = (tuple(state_input_roles)
                                  if state_input_roles is not None else None)
        self._observation_nets = self._compute_observation_nets()
        # Resolving the word program eagerly also validates that every
        # combinational cell has a word-level model.
        word_program(self.sim.compiled)

    def _compute_observation_nets(self) -> Set[str]:
        nets: Set[str] = set(self.netlist.observable_output_ports())
        nets -= self.exclude_output_ports
        if self.observe_state_inputs:
            for inst in self.netlist.sequential_instances():
                nets.update(observed_state_input_nets(inst, self.state_input_roles))
        return nets

    def _observation_ids(self, compiled: CompiledNetlist) -> List[int]:
        net_id = compiled.net_id
        return [net_id[name] for name in self._observation_nets
                if name in net_id]

    def _observation_flags(self, compiled: CompiledNetlist) -> bytearray:
        flags = bytearray(compiled.n_nets)
        for nid in self._observation_ids(compiled):
            flags[nid] = 1
        return flags

    # ------------------------------------------------------------------ #
    @property
    def observation_nets(self) -> Set[str]:
        """The observation-point net names this simulator detects against."""
        return set(self._observation_nets)

    def _good_words(self, compiled: CompiledNetlist,
                    patterns: Mapping[str, int],
                    n_patterns: int) -> Tuple[List[int], int]:
        return compute_good_words(compiled, patterns, n_patterns)

    def good_simulation(self, patterns: Mapping[str, int],
                        n_patterns: int) -> Dict[str, int]:
        """Simulate ``n_patterns`` patterns at once.

        ``patterns`` maps controllable net names (primary inputs and
        flip-flop outputs) to bit-vector words; missing nets default to 0.
        Returns a word per net.
        """
        compiled = self.sim._refresh()
        values, _ = self._good_words(compiled, patterns, n_patterns)
        return dict(zip(compiled.net_names, values))

    # ------------------------------------------------------------------ #
    def _resolve(self, compiled: CompiledNetlist,
                 fault: Fault) -> Tuple:
        if fault.is_port_fault:
            nid = compiled.id_of(fault.site)
            return ("net", nid) if nid is not None else ("inert",)
        kind, index, pos, is_input = compiled.pin_ref(fault.site)
        table = ((compiled.op_fanin if is_input else compiled.op_fanout)
                 if kind == "op"
                 else (compiled.seq_fanin if is_input else compiled.seq_fanout))
        nid = table[index][pos]
        if nid == NO_NET:
            return ("inert",)
        if not is_input:
            return ("net", nid)
        if kind == "seq":
            # The perturbed value is only seen by the flip-flop capture; the
            # combinational time frame is unchanged.
            return ("inert",)
        return ("branch", index, pos)

    def detected_faults(self, faults: Iterable[Fault],
                        patterns: Mapping[str, int],
                        n_patterns: int,
                        good: Optional[Dict[str, int]] = None) -> Set[Fault]:
        """Return the subset of ``faults`` detected by any of the patterns.

        The window is self-contained: two-pattern faults pair consecutive
        patterns *within* it (pattern *i-1* launches, pattern *i*
        captures), which is the contract the random-pattern phase relies on
        — every burst is an independent launch-on-capture sequence.
        """
        compiled = self.sim._refresh()
        word_mask = mask(n_patterns)
        if good is None:
            good_words, _ = self._good_words(compiled, patterns, n_patterns)
        else:
            net_id = compiled.net_id
            good_words = [0] * compiled.n_nets
            for name, word in good.items():
                nid = net_id.get(name)
                if nid is not None:
                    good_words[nid] = word
        obs_flags = self._observation_flags(compiled)

        keys: List[Fault] = []
        items: List[Tuple[Tuple, int, Optional[int]]] = []
        for fault in faults:
            site = self._resolve(compiled, fault)
            spec = resolve_injection(fault)
            allowed = None
            if spec.frames > 1:
                allowed = pair_allowed_words(compiled, site, spec,
                                             good_words, word_mask)
                if not allowed:
                    continue
            keys.append(fault)
            items.append((site, spec.stuck_value, allowed))
        verdicts = self.kernel.detect_words(compiled, items, good_words,
                                            word_mask, obs_flags)
        return {fault for fault, hit in zip(keys, verdicts) if hit}

    def run_windows(self, faults: Iterable[Fault],
                    windows: Sequence[Tuple[Mapping[str, int], int]],
                    drop_detected: bool = True) -> Set[Fault]:
        """Windowed detection over one *continuous* pattern stream.

        ``windows`` chunks a single cycle sequence into ``(word dict,
        n_patterns)`` windows; unlike :meth:`detected_faults`, two-pattern
        faults pair across window boundaries (the launch pattern may be the
        last cycle of the previous window), so the verdicts are independent
        of the chunking.  ``drop_detected`` stops re-simulating a fault
        after the first detecting window.  Returns the detected set —
        identical to the sharded mission-grading engine by construction.
        """
        compiled = self.sim._refresh()
        obs_flags = self._observation_flags(compiled)
        remaining: List[Fault] = list(faults)
        sites = {f: self._resolve(compiled, f) for f in remaining}
        specs = {f: resolve_injection(f) for f in remaining}
        detected: Set[Fault] = set()
        prev: Optional[Tuple[List[int], int]] = None
        for words, n_patterns in windows:
            if not remaining:
                break
            good, word_mask = compute_good_words(compiled, words, n_patterns)
            items: List[Tuple[Tuple, int, Optional[int]]] = []
            for fault in remaining:
                spec = specs[fault]
                allowed = None
                if spec.frames > 1:
                    allowed = pair_allowed_words(compiled, sites[fault],
                                                 spec, good, word_mask,
                                                 prev=prev)
                items.append((sites[fault], spec.stuck_value, allowed))
            verdicts = self.kernel.detect_words(compiled, items, good,
                                                word_mask, obs_flags)
            still: List[Fault] = []
            for fault, hit in zip(remaining, verdicts):
                if hit:
                    detected.add(fault)
                if not (hit and drop_detected):
                    still.append(fault)
            remaining = still
            prev = (good, n_patterns)
        return detected
