"""Bit-parallel (pattern-parallel) two-valued simulation.

Python integers are used as arbitrary-width bit vectors: a net's value for
``n`` patterns is held in one integer whose bit *i* is the net value under
pattern *i*.  This gives a pattern-parallel good-machine simulation and a
pattern-parallel serial-fault simulation that the random-pattern phase of the
untestability engine and the SBST fault-grading flow use to knock out the
bulk of detectable faults cheaply.

X values are not representable here; callers must supply fully-specified
patterns (the ATPG/implication machinery handles the three-valued cases).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.faults.fault import StuckAtFault
from repro.netlist.module import Netlist, Pin
from repro.simulation.simulator import CombinationalSimulator, observed_state_input_nets
from repro.utils.bitvec import mask

# Word-level evaluation functions per cell, operating on Python-int bit
# vectors plus the all-ones mask of the pattern word.
_WordFn = Callable[[Dict[str, int], int], Dict[str, int]]


def _make_word_functions() -> Dict[str, _WordFn]:
    def inv(v: Dict[str, int], m: int) -> Dict[str, int]:
        return {"Y": ~v["A"] & m}

    def buf(v: Dict[str, int], m: int) -> Dict[str, int]:
        return {"Y": v["A"]}

    def and_n(names: Sequence[str]) -> _WordFn:
        def fn(v: Dict[str, int], m: int) -> Dict[str, int]:
            acc = m
            for n in names:
                acc &= v[n]
            return {"Y": acc}
        return fn

    def nand_n(names: Sequence[str]) -> _WordFn:
        inner = and_n(names)
        def fn(v: Dict[str, int], m: int) -> Dict[str, int]:
            return {"Y": ~inner(v, m)["Y"] & m}
        return fn

    def or_n(names: Sequence[str]) -> _WordFn:
        def fn(v: Dict[str, int], m: int) -> Dict[str, int]:
            acc = 0
            for n in names:
                acc |= v[n]
            return {"Y": acc}
        return fn

    def nor_n(names: Sequence[str]) -> _WordFn:
        inner = or_n(names)
        def fn(v: Dict[str, int], m: int) -> Dict[str, int]:
            return {"Y": ~inner(v, m)["Y"] & m}
        return fn

    fns: Dict[str, _WordFn] = {
        "TIE0": lambda v, m: {"Y": 0},
        "TIE1": lambda v, m: {"Y": m},
        "BUF": buf,
        "INV": inv,
        "XOR2": lambda v, m: {"Y": (v["A"] ^ v["B"]) & m},
        "XNOR2": lambda v, m: {"Y": ~(v["A"] ^ v["B"]) & m},
        "MUX2": lambda v, m: {"Y": (v["D0"] & ~v["S"] | v["D1"] & v["S"]) & m},
        "AO21": lambda v, m: {"Y": (v["A"] & v["B"] | v["C"]) & m},
        "OA21": lambda v, m: {"Y": (v["A"] | v["B"]) & v["C"] & m},
        "AOI21": lambda v, m: {"Y": ~(v["A"] & v["B"] | v["C"]) & m},
        "OAI21": lambda v, m: {"Y": ~((v["A"] | v["B"]) & v["C"]) & m},
        "HA": lambda v, m: {"S": (v["A"] ^ v["B"]) & m, "CO": v["A"] & v["B"]},
        "FA": lambda v, m: {
            "S": (v["A"] ^ v["B"] ^ v["CI"]) & m,
            "CO": (v["A"] & v["B"] | v["A"] & v["CI"] | v["B"] & v["CI"]) & m,
        },
    }
    names = ("A", "B", "C", "D")
    for arity in (2, 3, 4):
        fns[f"AND{arity}"] = and_n(names[:arity])
        fns[f"NAND{arity}"] = nand_n(names[:arity])
        fns[f"OR{arity}"] = or_n(names[:arity])
        fns[f"NOR{arity}"] = nor_n(names[:arity])
    # Sequential cells appear in the combinational view only through their
    # outputs (state) and inputs (observation); they are never evaluated here.
    return fns


_WORD_FUNCTIONS = _make_word_functions()


class ParallelPatternSimulator:
    """Pattern-parallel two-valued simulation and serial-fault detection.

    ``state_input_roles`` restricts which sequential input pins count as
    observation points: ``None`` observes every input pin (the off-line view —
    scan capture makes all of them readable), while an explicit role set such
    as ``("data", "reset")`` models mission-mode capture, where a fault effect
    reaching a scan/debug-only pin (SI, SE, DI, DE) is never stored into
    architectural state and therefore never observed.
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 exclude_output_ports: Optional[Set[str]] = None,
                 state_input_roles: Optional[Sequence[str]] = None) -> None:
        self.netlist = netlist
        self.sim = CombinationalSimulator(netlist)
        self.observe_state_inputs = observe_state_inputs
        self.exclude_output_ports = set(exclude_output_ports or ())
        self.state_input_roles = (tuple(state_input_roles)
                                  if state_input_roles is not None else None)
        self._observation_nets = self._compute_observation_nets()
        for inst in self.sim.order:
            if inst.cell.name not in _WORD_FUNCTIONS:
                raise NotImplementedError(
                    f"no word-level model for cell {inst.cell.name!r}")

    def _compute_observation_nets(self) -> Set[str]:
        nets: Set[str] = set(self.netlist.observable_output_ports())
        nets -= self.exclude_output_ports
        if self.observe_state_inputs:
            for inst in self.netlist.sequential_instances():
                nets.update(observed_state_input_nets(inst, self.state_input_roles))
        return nets

    # ------------------------------------------------------------------ #
    def good_simulation(self, patterns: Mapping[str, int],
                        n_patterns: int) -> Dict[str, int]:
        """Simulate ``n_patterns`` patterns at once.

        ``patterns`` maps controllable net names (primary inputs and
        flip-flop outputs) to bit-vector words; missing nets default to 0.
        Returns a word per net.
        """
        word_mask = mask(n_patterns)
        values: Dict[str, int] = {}
        for name, net in self.netlist.nets.items():
            if net.tied is not None:
                values[name] = word_mask if net.tied else 0
            else:
                values[name] = patterns.get(name, 0) & word_mask

        for inst in self.sim.order:
            pin_values = {
                pin.port: (values[pin.net.name] if pin.net is not None else 0)
                for pin in inst.input_pins()
            }
            outputs = _WORD_FUNCTIONS[inst.cell.name](pin_values, word_mask)
            for pin in inst.output_pins():
                if pin.net is None or pin.net.tied is not None:
                    continue
                values[pin.net.name] = outputs.get(pin.port, 0) & word_mask
        return values

    def detected_faults(self, faults: Iterable[StuckAtFault],
                        patterns: Mapping[str, int],
                        n_patterns: int,
                        good: Optional[Dict[str, int]] = None) -> Set[StuckAtFault]:
        """Return the subset of ``faults`` detected by any of the patterns."""
        word_mask = mask(n_patterns)
        good = good if good is not None else self.good_simulation(patterns, n_patterns)
        detected: Set[StuckAtFault] = set()

        for fault in faults:
            if self._detects(fault, patterns, good, word_mask):
                detected.add(fault)
        return detected

    def _fanout_instance_cone(self, start_net: str) -> Set[str]:
        """Names of combinational instances structurally downstream of a net."""
        cone: Set[str] = set()
        visited: Set[str] = set()
        work = [start_net]
        while work:
            net_name = work.pop()
            if net_name in visited:
                continue
            visited.add(net_name)
            net = self.netlist.nets.get(net_name)
            if net is None:
                continue
            for pin in net.loads:
                inst = pin.instance
                if inst.is_sequential or inst.name in cone:
                    continue
                cone.add(inst.name)
                for out_pin in inst.output_pins():
                    if out_pin.net is not None:
                        work.append(out_pin.net.name)
        return cone

    def _detects(self, fault: StuckAtFault, patterns: Mapping[str, int],
                 good: Dict[str, int], word_mask: int) -> bool:
        values = dict(good)
        fault_word = word_mask if fault.value else 0

        faulty_pin: Optional[Pin] = None
        start_net: Optional[str] = None
        if fault.is_port_fault:
            if fault.site not in values:
                return False
            values[fault.site] = fault_word
            start_net = fault.site
        else:
            pin = self.netlist.pin_by_name(fault.site)
            if pin.net is None:
                return False
            if pin.is_output:
                values[pin.net.name] = fault_word
                start_net = pin.net.name
            else:
                faulty_pin = pin

        # Only instances structurally downstream of the fault site can change.
        if faulty_pin is not None:
            cone = {faulty_pin.instance.name} if not faulty_pin.instance.is_sequential else set()
            for out_pin in faulty_pin.instance.output_pins():
                if out_pin.net is not None:
                    cone |= self._fanout_instance_cone(out_pin.net.name)
        else:
            cone = self._fanout_instance_cone(start_net) if start_net else set()

        for inst in self.sim.order:
            if inst.name not in cone:
                continue
            changed = False
            pin_values = {}
            for pin in inst.input_pins():
                if pin.net is None:
                    pin_values[pin.port] = 0
                    continue
                value = values[pin.net.name]
                if faulty_pin is not None and pin is faulty_pin:
                    value = fault_word
                    changed = True
                elif value != good[pin.net.name]:
                    changed = True
                pin_values[pin.port] = value
            if not changed:
                continue
            outputs = _WORD_FUNCTIONS[inst.cell.name](pin_values, word_mask)
            for out_pin in inst.output_pins():
                if out_pin.net is None or out_pin.net.tied is not None:
                    continue
                if not fault.is_port_fault and out_pin.name == fault.site:
                    continue
                values[out_pin.net.name] = outputs.get(out_pin.port, 0) & word_mask

        for net in self._observation_nets:
            if (values.get(net, 0) ^ good.get(net, 0)) & word_mask:
                return True
        return False
