"""Cycle-based sequential simulation directly on the compiled plane engine.

Used by the SBST substrate to capture the functional patterns a test program
applies to the processor's combinational blocks, and by integration tests to
check that scan insertion preserves mission-mode behaviour.

The simulator holds its flip-flop state as ID-indexed bit-plane pairs and
steps the clock entirely inside the compiled IR: one levelized pass of the
shared plane program evaluates the combinational network, and the
sequential cells' next-state plane functions consume the result planes
in place — no per-cycle name→value dict round-trips through the legacy
``evaluate``/``next_state`` API.  The public surface (``step`` returning
the full net-value map, ``state``, ``peek``/``poke``) is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.module import Netlist
from repro.simulation.simulator import (PLANE_ENCODING,
                                        CombinationalSimulator, plane_program)

#: Width-1 plane pair per logic value (the simulator's shared encoding).
_ENCODE = PLANE_ENCODING


def _decode(b1: int, b0: int) -> int:
    return LOGIC_1 if b1 else (LOGIC_0 if b0 else LOGIC_X)


class SequentialSimulator:
    """Steps a netlist one clock cycle at a time.

    The simulator abstracts the clock: every call to :meth:`step` applies the
    given primary-input values, evaluates the combinational logic, samples the
    module outputs and then updates every flip-flop with its next-state value.
    """

    def __init__(self, netlist: Netlist, x_init: bool = False,
                 kernel: Optional[str] = None) -> None:
        self.netlist = netlist
        self.sim = CombinationalSimulator(netlist, kernel=kernel)
        self.kernel = self.sim.kernel
        self._compiled = self.sim.compiled
        #: Flip-flop state as net ID -> width-1 plane pair (p1, p0).
        self._state: Dict[int, Tuple[int, int]] = {}
        self._init_state(x_init)
        self.cycle = 0
        self.trace: List[Dict[str, int]] = []
        self.record_trace = False

    def _init_state(self, x_init: bool) -> None:
        initial = _ENCODE[LOGIC_X if x_init else LOGIC_0]
        self._state = {nid: initial for nid in self._compiled.state_net_ids}

    def _refresh(self):
        """Revalidate the compiled IR, re-keying state by name on a rebuild."""
        compiled = self.sim._refresh()
        if compiled is not self._compiled:
            old_names = self._compiled.net_names
            by_name = {old_names[nid]: bits
                       for nid, bits in self._state.items()}
            default = _ENCODE[LOGIC_0]
            self._state = {
                nid: by_name.get(compiled.net_names[nid], default)
                for nid in compiled.state_net_ids
            }
            self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------ #
    # state access (name-keyed view of the plane state)
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> Dict[str, int]:
        """Current stored value per state net (flip-flop output), by name."""
        names = self._compiled.net_names
        return {names[nid]: _decode(b1, b0)
                for nid, (b1, b0) in self._state.items()}

    def reset(self, x_init: bool = False) -> None:
        """Reset all state elements to 0 (or X) and restart the cycle counter."""
        self._refresh()
        self._init_state(x_init)
        self.cycle = 0
        self.trace.clear()

    def peek(self, net_name: str) -> int:
        """Current stored value of a state net (flip-flop output)."""
        nid = self._compiled.net_id.get(net_name)
        if nid is None or nid not in self._state:
            return LOGIC_X
        return _decode(*self._state[nid])

    def poke(self, net_name: str, value: int) -> None:
        """Force a state net to a value (debug-style state manipulation)."""
        nid = self._compiled.net_id.get(net_name)
        if nid is None or nid not in self._state:
            raise KeyError(f"{net_name!r} is not a state net of "
                           f"{self.netlist.name!r}")
        self._state[nid] = _ENCODE[value]

    # ------------------------------------------------------------------ #
    # clocking
    # ------------------------------------------------------------------ #
    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle; returns the full net-value map of the cycle."""
        compiled = self._refresh()
        _, seq_program = plane_program(compiled)
        inputs = inputs or {}
        n = compiled.n_nets
        p1 = [0] * n
        p0 = [0] * n
        frozen = bytearray(n)
        tied = compiled.tied
        names = compiled.net_names

        for nid in range(n):
            t = tied[nid]
            if t is not None:
                if t:
                    p1[nid] = 1
                else:
                    p0[nid] = 1
                frozen[nid] = 1
        for nid in compiled.input_port_ids:
            if tied[nid] is None:
                b1, b0 = _ENCODE[inputs.get(names[nid], LOGIC_X)]
                p1[nid] = b1
                p0[nid] = b0
        for nid, (b1, b0) in self._state.items():
            if tied[nid] is None:
                p1[nid] = b1
                p0[nid] = b0

        self.kernel.run_plane_ops(compiled, p1, p0, 1, frozen)

        # Next state straight from the result planes (no name round-trip).
        nxt: Dict[int, Tuple[int, int]] = {}
        seq_fanin = compiled.seq_fanin
        seq_fanout = compiled.seq_fanout
        for i, fn in enumerate(seq_program):
            flat: List[int] = []
            for nid in seq_fanin[i]:
                if nid >= 0:
                    flat.append(p1[nid])
                    flat.append(p0[nid])
                else:
                    flat.append(0)
                    flat.append(0)
            out = fn(1, *flat)
            for nid in seq_fanout[i]:
                if nid >= 0:
                    t = tied[nid]
                    nxt[nid] = (_ENCODE[t] if t is not None
                                else (out[0], out[1]))
        self._state = nxt
        self.cycle += 1

        values = {name: _decode(p1[nid], p0[nid])
                  for nid, name in enumerate(names)}
        if self.record_trace:
            self.trace.append(dict(values))
        return values

    def run(self, input_sequence: List[Mapping[str, int]]) -> List[Dict[str, int]]:
        """Apply a sequence of input vectors, one per cycle; returns output maps."""
        outputs = []
        for vector in input_sequence:
            values = self.step(vector)
            outputs.append(self.sim.output_values(values, observable_only=False))
        return outputs
