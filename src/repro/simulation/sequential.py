"""Cycle-based sequential simulation on top of the combinational simulator.

Used by the SBST substrate to capture the functional patterns a test program
applies to the processor's combinational blocks, and by integration tests to
check that scan insertion preserves mission-mode behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.netlist.cells import LOGIC_0, LOGIC_X
from repro.netlist.module import Netlist
from repro.simulation.simulator import CombinationalSimulator


class SequentialSimulator:
    """Steps a netlist one clock cycle at a time.

    The simulator abstracts the clock: every call to :meth:`step` applies the
    given primary-input values, evaluates the combinational logic, samples the
    module outputs and then updates every flip-flop with its next-state value.
    """

    def __init__(self, netlist: Netlist, x_init: bool = False) -> None:
        self.netlist = netlist
        self.sim = CombinationalSimulator(netlist)
        initial = LOGIC_X if x_init else LOGIC_0
        self.state: Dict[str, int] = {net: initial for net in self.sim.state_nets}
        self.cycle = 0
        self.trace: List[Dict[str, int]] = []
        self.record_trace = False

    def reset(self, x_init: bool = False) -> None:
        """Reset all state elements to 0 (or X) and restart the cycle counter."""
        initial = LOGIC_X if x_init else LOGIC_0
        for net in self.state:
            self.state[net] = initial
        self.cycle = 0
        self.trace.clear()

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle; returns the full net-value map of the cycle."""
        values = self.sim.evaluate(inputs or {}, state=self.state)
        self.state = self.sim.next_state(values)
        self.cycle += 1
        if self.record_trace:
            self.trace.append(dict(values))
        return values

    def run(self, input_sequence: List[Mapping[str, int]]) -> List[Dict[str, int]]:
        """Apply a sequence of input vectors, one per cycle; returns output maps."""
        outputs = []
        for vector in input_sequence:
            values = self.step(vector)
            outputs.append(self.sim.output_values(values, observable_only=False))
        return outputs

    def peek(self, net_name: str) -> int:
        """Current stored value of a state net (flip-flop output)."""
        return self.state.get(net_name, LOGIC_X)

    def poke(self, net_name: str, value: int) -> None:
        """Force a state net to a value (debug-style state manipulation)."""
        if net_name not in self.state:
            raise KeyError(f"{net_name!r} is not a state net of {self.netlist.name!r}")
        self.state[net_name] = value
