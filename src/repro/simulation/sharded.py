"""Cone-aware sharded execution over the collapsed fault population.

The paper's core loop — classify every stuck-at fault of an embedded core
as on-line functionally untestable or not — is embarrassingly parallel over
the fault list.  This module partitions a fault population into *shards*
that respect the circuit structure and runs fault simulation, mission-mode
fault grading and untestability classification across worker backends:

partitioning (:func:`partition_faults`)
    Faults are grouped by the *cone representative* of their injection
    site (the stem net whose transitive fanout cone the fault perturbs),
    so faults sharing a cone always land in the same shard, and the groups
    are balanced over shards by estimated simulation cost — the memoised
    fanout-cone size of the representative net
    (:meth:`~repro.netlist.compiled.CompiledNetlist.fanout_cone_sizes`)
    times the group population.  Shard assignment is deterministic:
    identical inputs produce identical shards in identical order.

backends
    ``serial`` (in-process, the reference), ``thread`` (a thread pool —
    API parity and overlap, the analyses are pure Python so raw speed-up
    is limited by the GIL) and ``process`` (a process pool; on platforms
    with ``fork`` the workers inherit the prepared job state — netlist,
    compiled IR, resolved fault sites — for free, elsewhere the job is
    pickled once per worker).

detection frontier (:class:`DetectionFrontier`)
    Per-shard detection verdicts merge through a shared frontier after
    every pattern-window round.  Fault dropping therefore keeps pruning
    work across shards and rounds: a fault detected in round *k* is never
    re-simulated in round *k+1*, a drained shard stops being dispatched,
    and the whole run stops as soon as every fault is detected.

simulation kernels
    Workers dispatch fault detection through the pluggable kernel layer
    (:mod:`repro.simulation.kernels`): the int oracle's event-driven cone
    walk, or the numpy backend's batched multi-fault matrix sweep.  Jobs
    carry the *resolved* kernel name (the scheduler freezes ``auto`` to a
    concrete backend before shipping), and every kernel is
    verdict-identical by contract, so detection results — and the
    recorded detecting patterns — stay **byte-identical** to the serial
    :class:`~repro.simulation.fault_sim.FaultSimulator` and
    :class:`~repro.sbst.grading.FaultGrader` paths, which the golden
    scenario corpus enforces end-to-end in CI.
"""

from __future__ import annotations

import heapq
import itertools
import time
import multiprocessing
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from repro.faults.models import Fault, resolve_injection
from repro.netlist.compiled import CompiledNetlist, get_compiled
from repro.netlist.module import Netlist
from repro.simulation.fault_sim import (FaultSimResult, good_planes,
                                        observation_net_names,
                                        pair_allowed_mask, resolve_site)
from repro.simulation.kernels import get_kernel
from repro.simulation.parallel import (compute_good_words,
                                       pair_allowed_words, word_program)
from repro.simulation.simulator import plane_program
from repro.utils.bitvec import mask as bitmask

#: Backend names accepted by every sharded entry point.
SHARD_BACKENDS = ("serial", "thread", "process")

_oversubscribe_warned = False


def resolve_jobs(jobs: Optional[int], *, cap: bool = True) -> int:
    """Coerce a worker-count spec: ``None`` means one per CPU, minimum 1.

    Requests beyond ``os.cpu_count()`` used to silently oversubscribe the
    machine (and let single-core CI boxes publish "parallel is slower"
    benchmark numbers with no attribution); they are now capped at the CPU
    count with a one-time warning.  ``cap=False`` returns the raw request
    — routing decisions that only care whether parallelism was *asked for*
    want that, not the capped worker count.
    """
    cpus = max(1, os.cpu_count() or 1)
    if jobs is None:
        return cpus
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = int(jobs)
    if cap and jobs > cpus:
        global _oversubscribe_warned
        if not _oversubscribe_warned:
            _oversubscribe_warned = True
            warnings.warn(
                f"jobs={jobs} exceeds os.cpu_count()={cpus}; capping the "
                f"worker count at {cpus} (extra workers would only contend)",
                RuntimeWarning, stacklevel=2)
        return cpus
    return jobs


def _reset_oversubscription_warning() -> None:
    """Re-arm the one-time oversubscription warning (test hook)."""
    global _oversubscribe_warned
    _oversubscribe_warned = False


def resolve_backend(backend: Optional[str], jobs: int) -> str:
    """Pick/validate a shard backend; ``None`` selects the best available."""
    if backend is None:
        if jobs <= 1:
            return "serial"
        return ("process"
                if "fork" in multiprocessing.get_all_start_methods()
                else "thread")
    name = str(backend).strip().lower()
    if name not in SHARD_BACKENDS:
        known = ", ".join(SHARD_BACKENDS)
        raise ValueError(
            f"unknown shard backend {backend!r}; expected one of: {known}")
    return name


def _resolve_pool(pool, jobs: int):
    """Map the ``pool`` knob onto a live worker pool, or ``None``.

    ``None``/``"ephemeral"`` select the legacy per-call :class:`_ShardRunner`;
    ``"persistent"`` resolves to the process-global registry pool for this
    worker count (honouring ``REPRO_POOL_START_METHOD`` so CI can force
    ``spawn``); a :class:`~repro.runtime.pool.WorkerPool` instance is used
    as-is.  When a pool is selected it *is* the execution backend — the
    ``backend`` knob only governs the ephemeral path.
    """
    from repro.runtime.pool import WorkerPool, get_pool, resolve_pool_mode

    if isinstance(pool, WorkerPool):
        return pool
    mode = resolve_pool_mode(pool)
    if mode == "persistent":
        return get_pool(jobs,
                        os.environ.get("REPRO_POOL_START_METHOD") or None)
    return None


# --------------------------------------------------------------------- #
# cone-aware partitioning
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultShard:
    """One deterministic slice of the fault population."""

    index: int
    faults: Tuple[Fault, ...]
    cost: int


def cone_representative(compiled: CompiledNetlist, site: Tuple) -> int:
    """The stem net whose fanout cone a resolved fault site perturbs.

    ``-1`` for inert/phantom sites (no cone at all).  Faults with the same
    representative share their simulation cone, which is why the
    partitioner keeps them in one shard.
    """
    if site[0] == "net":
        return site[1]
    if site[0] == "branch":
        for out in compiled.op_fanout[site[1]]:
            if out >= 0:
                return out
    return -1


def partition_faults(netlist: Netlist, faults: Iterable[Fault],
                     n_shards: int,
                     compiled: Optional[CompiledNetlist] = None
                     ) -> List[FaultShard]:
    """Split ``faults`` into at most ``n_shards`` cone-aware shards.

    Faults are grouped by cone representative, the groups are balanced
    over shards greedily by descending estimated cost (cone size x group
    population, longest-processing-time first), and every shard lists its
    faults in the original population order.  The result is deterministic
    for a given (netlist, fault order, shard count).
    """
    fault_list = list(faults)
    if compiled is None:
        compiled = get_compiled(netlist)
    n_shards = max(1, int(n_shards))
    if n_shards == 1 or len(fault_list) <= 1:
        return [FaultShard(0, tuple(fault_list), len(fault_list))]

    sizes = compiled.fanout_cone_sizes()
    groups: Dict[int, List[int]] = {}
    for position, fault in enumerate(fault_list):
        rep = cone_representative(compiled, resolve_site(compiled, fault))
        groups.setdefault(rep, []).append(position)

    def group_cost(rep: int, members: List[int]) -> int:
        per_fault = sizes[rep] + 1 if rep >= 0 else 1
        return per_fault * len(members)

    ordered = sorted(groups.items(),
                     key=lambda item: (-group_cost(*item), item[0]))
    n_shards = min(n_shards, len(ordered))
    loads = [(0, index) for index in range(n_shards)]
    heapq.heapify(loads)
    bins: List[List[int]] = [[] for _ in range(n_shards)]
    bin_costs = [0] * n_shards
    for rep, members in ordered:
        load, index = heapq.heappop(loads)
        bins[index].extend(members)
        cost = group_cost(rep, members)
        bin_costs[index] += cost
        heapq.heappush(loads, (load + cost, index))

    shards = []
    for index, members in enumerate(bins):
        if not members:
            continue
        members.sort()
        shards.append(FaultShard(len(shards),
                                 tuple(fault_list[p] for p in members),
                                 bin_costs[index]))
    return shards


# --------------------------------------------------------------------- #
# the shared detection frontier
# --------------------------------------------------------------------- #
class DetectionFrontier:
    """Merge point for per-shard detection verdicts.

    Shards publish ``fault -> detecting pattern index`` entries after each
    round; the scheduler prunes every later round against the published
    set — fault dropping survives shard boundaries because the drop
    decision is taken here, not inside a worker — and stops dispatching
    drained shards.  Thread-safe, so a live thread backend and the merging
    scheduler can share one instance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._detected: Dict[Fault, int] = {}

    def publish(self, fault: Fault, pattern_index: int) -> None:
        with self._lock:
            self._detected[fault] = pattern_index

    def publish_many(self,
                     items: Iterable[Tuple[Fault, int]]) -> None:
        with self._lock:
            self._detected.update(items)

    def __contains__(self, fault: Fault) -> bool:
        with self._lock:
            return fault in self._detected

    def __len__(self) -> int:
        with self._lock:
            return len(self._detected)

    def detected(self) -> Dict[Fault, int]:
        """Snapshot of every published verdict."""
        with self._lock:
            return dict(self._detected)


# --------------------------------------------------------------------- #
# worker-side jobs
# --------------------------------------------------------------------- #
class _ShardJob:
    """Base class for worker-side job state.

    A job carries everything a worker needs (netlist, shard fault tuples,
    patterns, observation config).  Heavy derived state — the compiled IR,
    evaluator programs, resolved fault sites, per-window good machines —
    is built by :meth:`prepare` and **excluded from pickling**: workers on
    a fork backend inherit it from the parent for free, spawn/pickle
    workers rebuild it lazily on first use.
    """

    _RUNTIME_ATTRS = ("_prepared", "_compiled", "_program", "_obs_flags",
                      "_sites", "_specs", "_window_memo", "_kernel")

    def __init__(self, netlist: Netlist,
                 shards: Tuple[Tuple[Fault, ...], ...],
                 observation_nets: frozenset,
                 kernel: Optional[str] = None) -> None:
        self.netlist = netlist
        self.shards = shards
        self.observation_nets = observation_nets
        # A picklable kernel *name* (the scheduler resolves "auto" before
        # shipping); the kernel object itself is runtime state.
        self.kernel = kernel
        self._prepared = False

    def __getstate__(self):
        state = self.__dict__.copy()
        for attr in self._RUNTIME_ATTRS:
            state.pop(attr, None)
        state["_prepared"] = False
        return state

    def release_shared(self) -> None:
        """Release an attached shared-memory payload (pool eviction hook)."""
        shared = self.__dict__.get("shared_payload")
        if shared is not None:
            shared.release()

    def prepare(self) -> None:
        if self._prepared:
            return
        compiled = get_compiled(self.netlist)
        obs_flags = bytearray(compiled.n_nets)
        net_id = compiled.net_id
        for name in self.observation_nets:
            nid = net_id.get(name)
            if nid is not None:
                obs_flags[nid] = 1
        self._compiled = compiled
        self._obs_flags = obs_flags
        self._kernel = get_kernel(self.kernel)
        self._program = self._build_program(compiled)
        self._sites = {
            fault: resolve_site(compiled, fault)
            for shard in self.shards for fault in shard
        }
        self._specs = {
            fault: resolve_injection(fault)
            for shard in self.shards for fault in shard
        }
        self._window_memo: Dict[int, tuple] = {}
        self._prepared = True

    def _build_program(self, compiled: CompiledNetlist):
        raise NotImplementedError


class _PlaneSimJob(_ShardJob):
    """Sharded counterpart of ``FaultSimulator.run`` (three-valued planes)."""

    def __init__(self, netlist: Netlist, shards, observation_nets,
                 patterns: Sequence[Mapping[str, int]],
                 word_size: int, kernel: Optional[str] = None) -> None:
        super().__init__(netlist, shards, observation_nets, kernel)
        self.patterns = list(patterns)
        self.word_size = word_size

    def _build_program(self, compiled: CompiledNetlist):
        program, _ = plane_program(compiled)
        return program

    def _window_planes(self, start: int):
        memo = self._window_memo.get(start)
        if memo is None:
            window = self.patterns[start:start + self.word_size]
            memo = good_planes(self._compiled, self._program, window,
                               kernel=self._kernel)
            self._window_memo[start] = memo
        return memo

    def run_window(self, task):
        """task = (shard id, fault positions, window start) ->
        (shard id, [(fault position, detection mask), ...])."""
        shard_id, positions, start = task
        self.prepare()
        g1, g0, frozen, mask = self._window_planes(start)
        shard = self.shards[shard_id]
        sites = self._sites
        specs = self._specs
        items = [(sites[shard[position]], specs[shard[position]].stuck_value)
                 for position in positions]
        dets = self._kernel.detect_planes(self._compiled, items, g1, g0,
                                          frozen, mask, self._obs_flags)
        prev_planes = None  # previous window's (g1, g0, width), lazily built
        hits = []
        for position, det in zip(positions, dets):
            fault = shard[position]
            spec = specs[fault]
            if det and spec.frames > 1:
                if prev_planes is None and start > 0:
                    p1, p0, _, _ = self._window_planes(
                        start - self.word_size)
                    prev_planes = (p1, p0, self.word_size)
                det &= pair_allowed_mask(self._compiled, sites[fault], spec,
                                         g1, g0, mask, prev=prev_planes)
            if det:
                hits.append((position, det))
        return shard_id, hits


class _WordGradeJob(_ShardJob):
    """Sharded counterpart of ``FaultGrader.grade`` (two-valued words)."""

    def __init__(self, netlist: Netlist, shards, observation_nets,
                 windows: Sequence[Tuple[Mapping[str, int], int]],
                 kernel: Optional[str] = None) -> None:
        super().__init__(netlist, shards, observation_nets, kernel)
        self.windows = list(windows)

    def _build_program(self, compiled: CompiledNetlist):
        return word_program(compiled)

    def _window_words(self, window_index: int):
        memo = self._window_memo.get(window_index)
        if memo is None:
            words, n_patterns = self.windows[window_index]
            good, _ = compute_good_words(self._compiled, words, n_patterns)
            memo = (good, bitmask(n_patterns))
            self._window_memo[window_index] = memo
        return memo

    def run_window(self, task):
        """task = (shard id, fault positions, window index) ->
        (shard id, [fault position, ...])."""
        shard_id, positions, window_index = task
        self.prepare()
        good, word_mask = self._window_words(window_index)
        shard = self.shards[shard_id]
        sites = self._sites
        specs = self._specs
        prev = None  # previous window's (good words, width), lazily built
        items = []
        for position in positions:
            fault = shard[position]
            spec = specs[fault]
            allowed = None
            if spec.frames > 1:
                if prev is None and window_index > 0:
                    prev_good, _ = self._window_words(window_index - 1)
                    prev = (prev_good, self.windows[window_index - 1][1])
                allowed = pair_allowed_words(self._compiled, sites[fault],
                                             spec, good, word_mask,
                                             prev=prev)
            items.append((sites[fault], spec.stuck_value, allowed))
        verdicts = self._kernel.detect_words(self._compiled, items, good,
                                             word_mask, self._obs_flags)
        hits = [position for position, hit in zip(positions, verdicts)
                if hit]
        return shard_id, hits


class _DetectClassifyJob:
    """Sharded detection phases (random patterns + PODEM) of the engine.

    The netlist-global tied-value fixpoint runs *once* in the scheduler;
    workers only see the faults it left unclassified and run the strictly
    per-fault detection phases on their shard.
    """

    def __init__(self, netlist: Netlist,
                 shards: Tuple[Tuple[Fault, ...], ...],
                 effort, random_patterns: int, backtrack_limit: int,
                 seed: int, static_prune: bool = True,
                 static_learning: bool = True,
                 kernel: Optional[str] = None,
                 atpg_backend: Optional[str] = None,
                 atpg_seed: Optional[int] = None) -> None:
        self.netlist = netlist
        self.shards = shards
        self.effort = effort
        self.random_patterns = random_patterns
        self.backtrack_limit = backtrack_limit
        self.seed = seed
        self.static_prune = static_prune
        self.static_learning = static_learning
        self.kernel = kernel
        self.atpg_backend = atpg_backend
        self.atpg_seed = atpg_seed

    def prepare(self) -> None:
        # The phases build their own derived state; compiling the netlist
        # here lets fork workers inherit the shared IR.
        get_compiled(self.netlist)

    def __getstate__(self):
        return self.__dict__.copy()

    def run_shard(self, task):
        """task = (shard id,) -> (shard id, classifications, phase
        runtimes, stats, patterns)."""
        from repro.atpg.engine import run_detection_phases

        (shard_id,) = task
        classifications, phase_runtimes, stats, patterns = \
            run_detection_phases(
                self.netlist, list(self.shards[shard_id]), self.effort,
                random_patterns=self.random_patterns,
                backtrack_limit=self.backtrack_limit, seed=self.seed,
                static_prune=self.static_prune,
                static_learning=self.static_learning,
                kernel=self.kernel,
                atpg_backend=self.atpg_backend, atpg_seed=self.atpg_seed)
        return shard_id, classifications, phase_runtimes, stats, patterns

    def run_faults(self, task):
        """task = (chunk id, fault tuple) -> same shape as :meth:`run_shard`.

        The work-stealing pool ships fault chunks inside the task instead
        of baking shard slices into the installed job, so one installed
        job (keyed by configuration only) serves every fault subset of the
        same netlist — warm re-use across calls.
        """
        from repro.atpg.engine import run_detection_phases

        chunk_id, chunk_faults = task
        classifications, phase_runtimes, stats, patterns = \
            run_detection_phases(
                self.netlist, list(chunk_faults), self.effort,
                random_patterns=self.random_patterns,
                backtrack_limit=self.backtrack_limit, seed=self.seed,
                static_prune=self.static_prune,
                static_learning=self.static_learning,
                kernel=self.kernel,
                atpg_backend=self.atpg_backend, atpg_seed=self.atpg_seed)
        return chunk_id, classifications, phase_runtimes, stats, patterns

    def run_escalation(self, task):
        """task = (shard id, fault tuple) — one slice of the merged abort
        frontier -> (shard id, improvements, patterns, runtimes, stats)."""
        from repro.atpg.engine import run_escalation_phase

        shard_id, shard_faults = task
        improvements, patterns, phase_runtimes, stats = run_escalation_phase(
            self.netlist, list(shard_faults),
            backtrack_limit=self.backtrack_limit, seed=self.seed,
            static_learning=self.static_learning,
            atpg_backend=self.atpg_backend, atpg_seed=self.atpg_seed)
        return shard_id, improvements, patterns, phase_runtimes, stats


# --------------------------------------------------------------------- #
# backend plumbing
# --------------------------------------------------------------------- #
#: Worker-side registry of installed jobs, keyed by a run token.  On a
#: fork backend the parent installs the job *before* the pool exists, so
#: children inherit it; on spawn backends the pool initializer installs a
#: pickled copy once per worker.
_WORKER_JOBS: Dict[int, object] = {}
_JOB_TOKENS = itertools.count(1)


def _install_job(token: int, job: object) -> None:
    _WORKER_JOBS[token] = job


def _invoke_worker(token: int, method: str, task) -> object:
    return getattr(_WORKER_JOBS[token], method)(task)


class _ShardRunner:
    """Maps job methods over task batches on the configured backend."""

    def __init__(self, backend: str, jobs: int) -> None:
        self.backend = backend
        self.jobs = max(1, jobs)
        self._pool = None
        self._token: Optional[int] = None
        self._job = None

    def start(self, job) -> "_ShardRunner":
        job.prepare()
        self._job = job
        if self.backend == "process":
            self._token = next(_JOB_TOKENS)
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                # Install before the pool forks: children inherit the
                # prepared job (netlist, compiled IR, sites) copy-on-write.
                _install_job(self._token, job)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("fork"))
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_install_job,
                    initargs=(self._token, job))
        elif self.backend == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-shard")
        return self

    def map(self, method: str, tasks: Sequence) -> List:
        """Run ``job.method(task)`` for every task; unordered results."""
        if not tasks:
            return []
        if self._pool is None:  # serial
            bound = getattr(self._job, method)
            return [bound(task) for task in tasks]
        if self.backend == "thread":
            bound = getattr(self._job, method)
            return list(self._pool.map(bound, tasks))
        futures = [self._pool.submit(_invoke_worker, self._token, method,
                                     task)
                   for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._token is not None:
            _WORKER_JOBS.pop(self._token, None)
            self._token = None
        self._job = None

    def __enter__(self) -> "_ShardRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def default_shard_count(jobs: int, n_faults: int) -> int:
    """Shards per run: a few per worker for balance, never more than faults."""
    return max(1, min(jobs * 4, n_faults))


# --------------------------------------------------------------------- #
# public engines
# --------------------------------------------------------------------- #
class ShardedFaultSimulator:
    """Drop-in parallel counterpart of :class:`FaultSimulator.run`.

    Partitions the fault population into cone-aware shards and runs the
    pattern windows as rounds over an executor backend, merging per-shard
    verdicts through a :class:`DetectionFrontier` after every round.
    Results — detected/undetected sets *and* the recorded detecting
    pattern indices, under both fault-dropping modes — are byte-identical
    to the serial compiled engine.
    """

    def __init__(self, netlist: Netlist, observe_state_inputs: bool = True,
                 state_input_roles: Optional[Sequence[str]] = None,
                 drop_detected: bool = True, word_size: int = 64, *,
                 jobs: Optional[int] = None,
                 backend: Optional[str] = None,
                 shards: Optional[int] = None,
                 kernel: Optional[str] = None,
                 pool=None,
                 chunk: Optional[int] = None) -> None:
        self.netlist = netlist
        self.observe_state_inputs = observe_state_inputs
        self.state_input_roles = (tuple(state_input_roles)
                                  if state_input_roles is not None else None)
        self.drop_detected = drop_detected
        self.word_size = word_size
        self.jobs = resolve_jobs(jobs)
        self.backend = resolve_backend(backend, self.jobs)
        self.shards = shards
        self.kernel = kernel
        self.pool = pool
        self.chunk = chunk
        self.last_frontier: Optional[DetectionFrontier] = None

    def run(self, faults: Iterable[Fault],
            patterns: Sequence[Mapping[str, int]],
            drop_detected: Optional[bool] = None) -> FaultSimResult:
        drop = self.drop_detected if drop_detected is None else drop_detected
        fault_list = list(faults)
        compiled = get_compiled(self.netlist)
        observation_nets = frozenset(observation_net_names(
            self.netlist, self.observe_state_inputs, self.state_input_roles))
        kernel_name = get_kernel(self.kernel).name
        pool_obj = _resolve_pool(self.pool, self.jobs)
        if pool_obj is not None:
            return self._run_pooled(pool_obj, fault_list, patterns, drop,
                                    compiled, observation_nets, kernel_name)
        n_shards = (self.shards if self.shards is not None
                    else default_shard_count(self.jobs, len(fault_list)))
        shards = partition_faults(self.netlist, fault_list, n_shards,
                                  compiled=compiled)
        job = _PlaneSimJob(self.netlist,
                           tuple(shard.faults for shard in shards),
                           observation_nets, patterns, self.word_size,
                           kernel=kernel_name)

        frontier = DetectionFrontier()
        self.last_frontier = frontier
        result = FaultSimResult()
        remaining: List[List[int]] = [list(range(len(shard.faults)))
                                      for shard in shards]

        with _ShardRunner(self.backend, self.jobs).start(job) as runner:
            n_patterns = len(patterns)
            for start in range(0, n_patterns, self.word_size):
                tasks = [(shard.index, tuple(remaining[shard.index]), start)
                         for shard in shards if remaining[shard.index]]
                if not tasks:
                    break
                outcomes = sorted(runner.map("run_window", tasks),
                                  key=lambda item: item[0])
                for shard_id, hits in outcomes:
                    shard_faults = shards[shard_id].faults
                    for position, det in hits:
                        fault = shard_faults[position]
                        result.detected.add(fault)
                        if drop:
                            # First detecting pattern of the window.
                            pattern_index = (
                                start + (det & -det).bit_length() - 1)
                        else:
                            # Match the serial reference: keep simulating,
                            # record the *last* detecting pattern.
                            pattern_index = start + det.bit_length() - 1
                        result.detecting_pattern[fault] = pattern_index
                        frontier.publish(fault, pattern_index)
                if drop:
                    # Fault dropping through the frontier: every verdict
                    # published this round prunes all later rounds.
                    published = frontier.detected()
                    for shard in shards:
                        todo = remaining[shard.index]
                        if todo:
                            remaining[shard.index] = [
                                position for position in todo
                                if shard.faults[position] not in published]
        for shard in shards:
            result.undetected.update(shard.faults[position]
                                     for position in remaining[shard.index])
        return result

    def _run_pooled(self, pool, fault_list, patterns, drop, compiled,
                    observation_nets, kernel_name) -> FaultSimResult:
        """Work-stealing run over a persistent pool.

        One job (the full fault tuple as a single shard) is installed once
        per content key; cone-affine chunks pull pattern windows through
        the pool's deque, and each chunk advances to its next window as
        soon as its current one merges — fault dropping propagates
        mid-round instead of at a round barrier.  Each fault lives in
        exactly one chunk and every chunk walks the windows in order, so
        verdicts and detecting-pattern indices are byte-identical to
        serial whatever order workers steal chunks in.
        """
        from repro.runtime import (build_chunks, content_key,
                                   default_chunk_size, share_patterns)

        fault_tuple = tuple(fault_list)
        chunk_size = (self.chunk if self.chunk is not None
                      else default_chunk_size(pool.workers, len(fault_tuple)))
        chunks = build_chunks(self.netlist, fault_list, chunk_size,
                              compiled=compiled)
        key = content_key("planesim", self.netlist, kernel_name,
                          self.word_size, tuple(sorted(observation_nets)),
                          fault_tuple, list(patterns))

        def build():
            job = _PlaneSimJob(self.netlist, (fault_tuple,),
                               observation_nets, patterns, self.word_size,
                               kernel=kernel_name)
            if kernel_name == "numpy":
                shared = share_patterns(job.patterns)
                if shared is not None:
                    job.patterns = shared
                    job.shared_payload = shared
            return job

        pool.ensure_job(key, build)
        frontier = DetectionFrontier()
        self.last_frontier = frontier
        result = FaultSimResult()
        n_patterns = len(patterns)
        remaining = {cid: list(positions)
                     for cid, positions in enumerate(chunks)}
        with pool.session(key) as run:
            for cid, positions in enumerate(chunks):
                if positions and n_patterns:
                    run.submit("run_window", (0, tuple(positions), 0),
                               tag=cid)
            for cid, task, outcome in run.results():
                start = task[2]
                _shard_id, hits = outcome
                dropped = set()
                for position, det in hits:
                    fault = fault_tuple[position]
                    result.detected.add(fault)
                    if drop:
                        # First detecting pattern of the window.
                        pattern_index = start + (det & -det).bit_length() - 1
                        dropped.add(position)
                    else:
                        # Keep simulating; later windows overwrite with the
                        # *last* detecting pattern, like the serial engine.
                        pattern_index = start + det.bit_length() - 1
                    result.detecting_pattern[fault] = pattern_index
                    frontier.publish(fault, pattern_index)
                todo = remaining[cid]
                if dropped:
                    todo = [position for position in todo
                            if position not in dropped]
                    remaining[cid] = todo
                next_start = start + self.word_size
                if todo and next_start < n_patterns:
                    run.submit("run_window", (0, tuple(todo), next_start),
                               tag=cid)
        for todo in remaining.values():
            result.undetected.update(fault_tuple[position]
                                     for position in todo)
        return result


def sharded_mission_grade(netlist: Netlist, faults: Iterable[Fault],
                          patterns, *,
                          observation_nets: Iterable[str],
                          word_size: int = 64,
                          drop_detected: bool = True,
                          jobs: Optional[int] = None,
                          backend: Optional[str] = None,
                          shards: Optional[int] = None,
                          frontier: Optional[DetectionFrontier] = None,
                          kernel: Optional[str] = None,
                          pool=None,
                          chunk: Optional[int] = None) -> Set[Fault]:
    """Sharded counterpart of :meth:`repro.sbst.grading.FaultGrader.grade`.

    ``patterns`` is a :class:`~repro.sbst.monitor.CapturedPatterns`-shaped
    object (``cycles`` + ``controllable_nets``); ``observation_nets`` is
    the exact observation-point set of the serial grader, so verdicts are
    identical by construction.  Returns the detected-fault set.
    """
    fault_list = list(faults)
    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend, jobs)
    compiled = get_compiled(netlist)

    from repro.sbst.monitor import pattern_windows

    windows = pattern_windows(patterns, word_size)
    kernel_name = get_kernel(kernel).name

    pool_obj = _resolve_pool(pool, jobs)
    if pool_obj is not None:
        return _pooled_mission_grade(
            netlist, fault_list, windows,
            observation_nets=frozenset(observation_nets),
            word_size=word_size, drop_detected=drop_detected,
            frontier=frontier, kernel_name=kernel_name, pool=pool_obj,
            chunk=chunk, compiled=compiled)

    n_shards = (shards if shards is not None
                else default_shard_count(jobs, len(fault_list)))
    fault_shards = partition_faults(netlist, fault_list, n_shards,
                                    compiled=compiled)

    job = _WordGradeJob(netlist, tuple(shard.faults for shard in fault_shards),
                        frozenset(observation_nets), windows,
                        kernel=kernel_name)
    frontier = frontier if frontier is not None else DetectionFrontier()
    detected: Set[Fault] = set()
    remaining: List[List[int]] = [list(range(len(shard.faults)))
                                  for shard in fault_shards]

    with _ShardRunner(backend, jobs).start(job) as runner:
        if drop_detected and len(frontier):
            # A caller-seeded frontier prunes before the first round too.
            published = frontier.detected()
            for shard in fault_shards:
                remaining[shard.index] = [
                    position for position in remaining[shard.index]
                    if shard.faults[position] not in published]
        for window_index in range(len(windows)):
            tasks = [(shard.index, tuple(remaining[shard.index]),
                      window_index)
                     for shard in fault_shards if remaining[shard.index]]
            if not tasks:
                break
            start = window_index * word_size
            for shard_id, hits in sorted(runner.map("run_window", tasks),
                                         key=lambda item: item[0]):
                if not hits:
                    continue
                shard_faults = fault_shards[shard_id].faults
                detected.update(shard_faults[position] for position in hits)
                frontier.publish_many(
                    (shard_faults[position], start) for position in hits)
            if drop_detected:
                # Fault dropping through the frontier — including entries a
                # caller pre-seeded to skip already-detected faults.
                published = frontier.detected()
                for shard in fault_shards:
                    todo = remaining[shard.index]
                    if todo:
                        remaining[shard.index] = [
                            position for position in todo
                            if shard.faults[position] not in published]
    return detected


def _pooled_mission_grade(netlist: Netlist, fault_list: List[Fault],
                          windows, *, observation_nets: frozenset,
                          word_size: int, drop_detected: bool,
                          frontier: Optional[DetectionFrontier],
                          kernel_name: str, pool, chunk: Optional[int],
                          compiled: CompiledNetlist) -> Set[Fault]:
    """Work-stealing mission grading over a persistent pool.

    Same chunked-window pipeline as the pooled fault simulator; detections
    publish ``(fault, window start)`` into the frontier exactly like the
    sharded path, and a caller-seeded frontier prunes before the first
    window, so verdicts match the serial grader byte for byte.
    """
    from repro.runtime import (build_chunks, content_key,
                               default_chunk_size, share_windows)

    fault_tuple = tuple(fault_list)
    chunk_size = (chunk if chunk is not None
                  else default_chunk_size(pool.workers, len(fault_tuple)))
    chunks = build_chunks(netlist, fault_list, chunk_size, compiled=compiled)
    key = content_key("wordgrade", netlist, kernel_name,
                      tuple(sorted(observation_nets)), fault_tuple,
                      list(windows))

    def build():
        job = _WordGradeJob(netlist, (fault_tuple,), observation_nets,
                            windows, kernel=kernel_name)
        if kernel_name == "numpy":
            shared = share_windows(job.windows)
            if shared is not None:
                job.windows = shared
                job.shared_payload = shared
        return job

    pool.ensure_job(key, build)
    frontier = frontier if frontier is not None else DetectionFrontier()
    detected: Set[Fault] = set()
    n_windows = len(windows)
    published = (frontier.detected()
                 if drop_detected and len(frontier) else {})
    remaining: Dict[int, List[int]] = {}
    with pool.session(key) as run:
        for cid, positions in enumerate(chunks):
            todo = [position for position in positions
                    if fault_tuple[position] not in published] \
                if published else list(positions)
            remaining[cid] = todo
            if todo and n_windows:
                run.submit("run_window", (0, tuple(todo), 0), tag=cid)
        for cid, task, outcome in run.results():
            window_index = task[2]
            _shard_id, hits = outcome
            todo = remaining[cid]
            if hits:
                start = window_index * word_size
                hit_faults = [fault_tuple[position] for position in hits]
                detected.update(hit_faults)
                frontier.publish_many((fault, start)
                                      for fault in hit_faults)
                if drop_detected:
                    hit_set = set(hits)
                    todo = [position for position in todo
                            if position not in hit_set]
                    remaining[cid] = todo
            next_window = window_index + 1
            if todo and next_window < n_windows:
                run.submit("run_window", (0, tuple(todo), next_window),
                           tag=cid)
    return detected


def sharded_classify(netlist: Netlist, faults: Iterable[Fault], *,
                     effort, jobs: Optional[int] = None,
                     backend: Optional[str] = None,
                     shards: Optional[int] = None,
                     random_patterns: int = 256,
                     backtrack_limit: int = 200,
                     seed: int = 2013,
                     static_prune: bool = True,
                     static_learning: bool = True,
                     kernel: Optional[str] = None,
                     atpg_backend: Optional[str] = None,
                     atpg_seed: Optional[int] = None,
                     pool=None,
                     chunk: Optional[int] = None):
    """Classify a fault population across shard workers.

    The netlist-global tied-value fixpoint runs exactly once, in the
    calling process (sharding it would repeat the global propagation per
    shard for no benefit — at TIE effort this function therefore costs
    the same as the serial engine and spawns no workers at all).  The
    faults it leaves unclassified go through the per-fault detection
    phases (seeded random patterns, the selected ATPG portfolio backend)
    on cone-aware shards across the worker backend.  Every verdict is
    batch-independent, so the merged report carries exactly the serial
    engine's classifications.  ``runtime_seconds`` is wall clock;
    per-phase runtimes are summed across shards (CPU seconds).

    For a backend with an escalation tier (``dalg``) the scheduler merges
    the per-shard abort frontiers after the primary round, re-partitions
    the merged frontier and fans out a second escalation round over the
    same installed job — so a fault aborted in one shard is escalated
    exactly once, no matter how the primary faults were sliced.
    """
    from repro.atpg.engine import (AtpgEffort, UntestabilityReport,
                                   resolve_effort)
    from repro.atpg.implication import ImplicationEngine
    from repro.atpg.portfolio import compact_patterns, resolve_atpg_backend
    from repro.atpg.tie_analysis import TieAnalysis
    from repro.faults.categories import FaultClass

    fault_list = list(faults)
    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend, jobs)
    effort = resolve_effort(effort)

    report = UntestabilityReport(effort=effort)
    start = time.perf_counter()
    phase_start = time.perf_counter()
    tie_result = TieAnalysis(netlist, ImplicationEngine(netlist)).run(
        fault_list)
    report.classifications.update(tie_result.classifications)
    report.phase_runtimes["tie"] = time.perf_counter() - phase_start

    remaining = [f for f in fault_list if f not in report.classifications]
    if effort is AtpgEffort.TIE or not remaining:
        report.runtime_seconds = time.perf_counter() - start
        return report

    pool_obj = _resolve_pool(pool, jobs)
    if pool_obj is not None:
        patterns = _pooled_classify_rounds(
            netlist, remaining, report, effort=effort,
            random_patterns=random_patterns,
            backtrack_limit=backtrack_limit, seed=seed,
            static_prune=static_prune, static_learning=static_learning,
            kernel_name=get_kernel(kernel).name,
            atpg_backend=atpg_backend, atpg_seed=atpg_seed,
            pool=pool_obj, chunk=chunk)
        report.stats["jobs_resolved"] = jobs
        if effort is AtpgEffort.FULL and patterns:
            phase_start = time.perf_counter()
            order = {fault: i for i, fault in enumerate(remaining)}
            patterns.sort(key=lambda entry: order[entry[0]])
            report.patterns, report.compaction = compact_patterns(
                netlist, patterns, kernel=kernel)
            report.phase_runtimes["compaction"] = (time.perf_counter()
                                                   - phase_start)
        report.runtime_seconds = time.perf_counter() - start
        return report

    n_shards = (shards if shards is not None
                else default_shard_count(jobs, len(remaining)))
    fault_shards = partition_faults(netlist, remaining, n_shards)
    job = _DetectClassifyJob(netlist,
                             tuple(shard.faults for shard in fault_shards),
                             effort, random_patterns, backtrack_limit, seed,
                             static_prune, static_learning,
                             kernel=get_kernel(kernel).name,
                             atpg_backend=atpg_backend, atpg_seed=atpg_seed)
    patterns: List[tuple] = []
    with _ShardRunner(backend, jobs).start(job) as runner:
        tasks = [(shard.index,) for shard in fault_shards]
        for (_shard_id, classifications, phase_runtimes, stats,
             shard_patterns) in sorted(runner.map("run_shard", tasks),
                                       key=lambda item: item[0]):
            report.classifications.update(classifications)
            patterns.extend(shard_patterns)
            for phase, seconds in phase_runtimes.items():
                report.phase_runtimes[phase] = (
                    report.phase_runtimes.get(phase, 0.0) + seconds)
            for key, count in stats.items():
                report.stats[key] = report.stats.get(key, 0) + count

        # Second round: merged abort frontier -> escalation tier.  The
        # frontier is collected in canonical (input) fault order and
        # re-partitioned, so the load balance adapts to where the aborts
        # actually landed.
        if (effort is AtpgEffort.FULL
                and resolve_atpg_backend(atpg_backend).escalates):
            frontier = [f for f in remaining
                        if report.classifications.get(f) is FaultClass.AU]
            if frontier:
                esc_shards = partition_faults(
                    netlist, frontier,
                    default_shard_count(jobs, len(frontier)))
                esc_tasks = [(shard.index, shard.faults)
                             for shard in esc_shards]
                for (_shard_id, improvements, esc_patterns, esc_runtimes,
                     esc_stats) in sorted(
                        runner.map("run_escalation", esc_tasks),
                        key=lambda item: item[0]):
                    report.classifications.update(improvements)
                    patterns.extend(esc_patterns)
                    for phase, seconds in esc_runtimes.items():
                        report.phase_runtimes[phase] = (
                            report.phase_runtimes.get(phase, 0.0) + seconds)
                    for key, count in esc_stats.items():
                        report.stats[key] = report.stats.get(key, 0) + count

    report.stats["jobs_resolved"] = jobs
    if effort is AtpgEffort.FULL and patterns:
        phase_start = time.perf_counter()
        order = {fault: i for i, fault in enumerate(remaining)}
        patterns.sort(key=lambda entry: order[entry[0]])
        report.patterns, report.compaction = compact_patterns(
            netlist, patterns, kernel=kernel)
        report.phase_runtimes["compaction"] = (time.perf_counter()
                                               - phase_start)
    report.runtime_seconds = time.perf_counter() - start
    return report


def _pooled_classify_rounds(netlist: Netlist, remaining: List[Fault],
                            report, *, effort, random_patterns: int,
                            backtrack_limit: int, seed: int,
                            static_prune: bool, static_learning: bool,
                            kernel_name: str,
                            atpg_backend: Optional[str],
                            atpg_seed: Optional[int],
                            pool, chunk: Optional[int]) -> List[tuple]:
    """Primary + escalation classification rounds over a persistent pool.

    The installed job is keyed by *configuration only* — fault chunks ride
    inside each task (:meth:`_DetectClassifyJob.run_faults`), so a warm
    pool re-uses the installed netlist and job across any fault subset.
    Results are collected completely and merged in chunk order, which
    keeps the report byte-identical to the static sharded path no matter
    which worker finished first.  Escalation re-fans the merged abort
    frontier out over the same installed job.
    """
    from repro.atpg.engine import AtpgEffort
    from repro.atpg.portfolio import resolve_atpg_backend
    from repro.faults.categories import FaultClass
    from repro.runtime import build_chunks, content_key, default_chunk_size

    key = content_key("classify", netlist, effort.name, random_patterns,
                      backtrack_limit, seed, static_prune, static_learning,
                      kernel_name, atpg_backend, atpg_seed)

    def build():
        return _DetectClassifyJob(
            netlist, (), effort, random_patterns, backtrack_limit, seed,
            static_prune, static_learning, kernel=kernel_name,
            atpg_backend=atpg_backend, atpg_seed=atpg_seed)

    pool.ensure_job(key, build)
    restarts_before = pool.stats["worker_restarts"]

    def fan_out(method: str, faults: List[Fault]) -> List[tuple]:
        chunk_size = (chunk if chunk is not None
                      else default_chunk_size(pool.workers, len(faults)))
        chunks = build_chunks(netlist, faults, chunk_size)
        outcomes = []
        with pool.session(key) as run:
            for cid, positions in enumerate(chunks):
                run.submit(method,
                           (cid, tuple(faults[position]
                                       for position in positions)),
                           tag=cid)
            for _tag, _task, outcome in run.results():
                outcomes.append(outcome)
        outcomes.sort(key=lambda item: item[0])
        return outcomes

    patterns: List[tuple] = []
    for (_cid, classifications, phase_runtimes, stats,
         chunk_patterns) in fan_out("run_faults", remaining):
        report.classifications.update(classifications)
        patterns.extend(chunk_patterns)
        for phase, seconds in phase_runtimes.items():
            report.phase_runtimes[phase] = (
                report.phase_runtimes.get(phase, 0.0) + seconds)
        for stat, count in stats.items():
            report.stats[stat] = report.stats.get(stat, 0) + count

    # Escalation round: the merged abort frontier, in canonical fault
    # order, re-fanned over the same warm job.
    if (effort is AtpgEffort.FULL
            and resolve_atpg_backend(atpg_backend).escalates):
        frontier = [f for f in remaining
                    if report.classifications.get(f) is FaultClass.AU]
        if frontier:
            for (_cid, improvements, esc_patterns, esc_runtimes,
                 esc_stats) in fan_out("run_escalation", frontier):
                report.classifications.update(improvements)
                patterns.extend(esc_patterns)
                for phase, seconds in esc_runtimes.items():
                    report.phase_runtimes[phase] = (
                        report.phase_runtimes.get(phase, 0.0) + seconds)
                for stat, count in esc_stats.items():
                    report.stats[stat] = report.stats.get(stat, 0) + count

    restarts = pool.stats["worker_restarts"] - restarts_before
    if restarts:
        report.stats["worker_restarts"] = (
            report.stats.get("worker_restarts", 0) + restarts)
    return patterns
