"""Logic simulation: combinational, sequential and stuck-at fault simulation."""

from repro.simulation.simulator import CombinationalSimulator
from repro.simulation.sequential import SequentialSimulator
from repro.simulation.fault_sim import FaultSimulator, FaultSimResult
from repro.simulation.kernels import (KERNEL_CHOICES, IntKernel, NumpyKernel,
                                      get_kernel, kernel_info,
                                      normalize_kernel, numpy_available,
                                      reset_kernel_state)
from repro.simulation.parallel import ParallelPatternSimulator
from repro.simulation.sharded import (DetectionFrontier, FaultShard,
                                      ShardedFaultSimulator, partition_faults,
                                      sharded_classify, sharded_mission_grade)

__all__ = [
    "CombinationalSimulator",
    "SequentialSimulator",
    "FaultSimulator",
    "FaultSimResult",
    "ParallelPatternSimulator",
    "ShardedFaultSimulator",
    "DetectionFrontier",
    "FaultShard",
    "partition_faults",
    "sharded_classify",
    "sharded_mission_grade",
    "KERNEL_CHOICES",
    "IntKernel",
    "NumpyKernel",
    "get_kernel",
    "kernel_info",
    "normalize_kernel",
    "numpy_available",
    "reset_kernel_state",
]
