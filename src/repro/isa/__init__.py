"""Shared definition of the miniature RISC ISA used by the synthetic core.

Both the gate-level instruction decoder (:mod:`repro.soc.decoder`) and the
instruction-level model / assembler (:mod:`repro.sbst`) derive from the
single opcode table defined here, so the two views cannot drift apart.
"""

from repro.isa.opcodes import (
    ControlSignals,
    Opcode,
    control_signals_for,
    encode_instruction,
    decode_fields,
)

__all__ = [
    "ControlSignals",
    "Opcode",
    "control_signals_for",
    "encode_instruction",
    "decode_fields",
]
