"""Opcode table, instruction encoding and per-opcode control signals.

Instruction layout (LSB-first bit numbering, ``W`` = instruction width)::

    [W-1 : W-5]   opcode (5 bits)
    [W-6 : W-5-r] rd     (r = register-select bits)
    next r bits   rs1
    next r bits   rs2
    [low bits]    immediate (whatever remains, zero/sign handling is ISA-level)

The gate-level decoder synthesises the control-signal truth tables below;
the ISA simulator interprets the same table, so both agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Tuple

from repro.utils.bitvec import mask


class Opcode(IntEnum):
    """The 16 architectural opcodes (a 5-bit field leaves room for growth)."""

    NOP = 0
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SHL = 6
    MUL = 7
    ADDI = 8
    LOAD = 9
    STORE = 10
    BEQ = 11
    BNE = 12
    JUMP = 13
    MOVI = 14
    HALT = 15


# ALU operation select encoding (3 bits) — must match the word order used by
# repro.soc.alu.build_alu: ADD, SUB, AND, OR, XOR, SHL, MUL, PASS_B.
ALU_ADD = 0
ALU_SUB = 1
ALU_AND = 2
ALU_OR = 3
ALU_XOR = 4
ALU_SHL = 5
ALU_MUL = 6
ALU_PASS_B = 7


@dataclass(frozen=True)
class ControlSignals:
    """Control outputs of the instruction decoder for one opcode."""

    reg_we: int = 0
    mem_re: int = 0
    mem_we: int = 0
    branch_eq: int = 0
    branch_ne: int = 0
    jump: int = 0
    alu_src_imm: int = 0
    wb_from_mem: int = 0
    halt: int = 0
    alu_op: int = ALU_ADD

    def as_dict(self) -> Dict[str, int]:
        return {
            "reg_we": self.reg_we,
            "mem_re": self.mem_re,
            "mem_we": self.mem_we,
            "branch_eq": self.branch_eq,
            "branch_ne": self.branch_ne,
            "jump": self.jump,
            "alu_src_imm": self.alu_src_imm,
            "wb_from_mem": self.wb_from_mem,
            "halt": self.halt,
            "alu_op0": self.alu_op & 1,
            "alu_op1": (self.alu_op >> 1) & 1,
            "alu_op2": (self.alu_op >> 2) & 1,
        }


_CONTROL_TABLE: Dict[Opcode, ControlSignals] = {
    Opcode.NOP: ControlSignals(),
    Opcode.ADD: ControlSignals(reg_we=1, alu_op=ALU_ADD),
    Opcode.SUB: ControlSignals(reg_we=1, alu_op=ALU_SUB),
    Opcode.AND: ControlSignals(reg_we=1, alu_op=ALU_AND),
    Opcode.OR: ControlSignals(reg_we=1, alu_op=ALU_OR),
    Opcode.XOR: ControlSignals(reg_we=1, alu_op=ALU_XOR),
    Opcode.SHL: ControlSignals(reg_we=1, alu_op=ALU_SHL),
    Opcode.MUL: ControlSignals(reg_we=1, alu_op=ALU_MUL),
    Opcode.ADDI: ControlSignals(reg_we=1, alu_src_imm=1, alu_op=ALU_ADD),
    Opcode.LOAD: ControlSignals(reg_we=1, mem_re=1, alu_src_imm=1,
                                wb_from_mem=1, alu_op=ALU_ADD),
    Opcode.STORE: ControlSignals(mem_we=1, alu_src_imm=1, alu_op=ALU_ADD),
    Opcode.BEQ: ControlSignals(branch_eq=1, alu_op=ALU_SUB),
    Opcode.BNE: ControlSignals(branch_ne=1, alu_op=ALU_SUB),
    Opcode.JUMP: ControlSignals(jump=1),
    Opcode.MOVI: ControlSignals(reg_we=1, alu_src_imm=1, alu_op=ALU_PASS_B),
    Opcode.HALT: ControlSignals(halt=1),
}

CONTROL_SIGNAL_NAMES = tuple(ControlSignals().as_dict())


def control_signals_for(opcode_value: int) -> ControlSignals:
    """Control signals for a raw 5-bit opcode value (undefined opcodes → NOP)."""
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        return ControlSignals()
    return _CONTROL_TABLE[opcode]


def field_layout(instr_width: int, register_select_bits: int
                 ) -> Dict[str, Tuple[int, int]]:
    """Bit positions ``(lsb, width)`` of each instruction field."""
    r = register_select_bits
    opcode_lsb = instr_width - 5
    rd_lsb = opcode_lsb - r
    rs1_lsb = rd_lsb - r
    rs2_lsb = rs1_lsb - r
    imm_width = rs2_lsb
    return {
        "opcode": (opcode_lsb, 5),
        "rd": (rd_lsb, r),
        "rs1": (rs1_lsb, r),
        "rs2": (rs2_lsb, r),
        "imm": (0, imm_width),
    }


def encode_instruction(opcode: Opcode, rd: int = 0, rs1: int = 0, rs2: int = 0,
                       imm: int = 0, instr_width: int = 32,
                       register_select_bits: int = 5) -> int:
    """Pack an instruction word."""
    layout = field_layout(instr_width, register_select_bits)
    word = 0
    for name, value in (("opcode", int(opcode)), ("rd", rd),
                        ("rs1", rs1), ("rs2", rs2), ("imm", imm)):
        lsb, width = layout[name]
        if width <= 0:
            continue
        word |= (value & mask(width)) << lsb
    return word & mask(instr_width)


def decode_fields(word: int, instr_width: int = 32,
                  register_select_bits: int = 5) -> Dict[str, int]:
    """Unpack an instruction word into its fields."""
    layout = field_layout(instr_width, register_select_bits)
    fields = {}
    for name, (lsb, width) in layout.items():
        fields[name] = (word >> lsb) & mask(width) if width > 0 else 0
    return fields
