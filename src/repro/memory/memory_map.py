"""Mission memory map: regions, legality checks, example maps from the paper.

The paper's case study connects a 32-bit address bus to two memory cores and
observes that, because only a small part of the 2^32 address space is mapped,
most address bits hold a constant value during the whole mission — the root
cause of the §3.3 on-line functionally untestable faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous, byte-addressed memory region."""

    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"region {self.name!r}: base must be non-negative")
        if self.size <= 0:
            raise ValueError(f"region {self.name!r}: size must be positive")

    @property
    def end(self) -> int:
        """Last legal address of the region (inclusive)."""
        return self.base + self.size - 1

    def contains(self, address: int) -> bool:
        return self.base <= address <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.base <= other.end and other.base <= self.end

    def __str__(self) -> str:
        return f"{self.name}: 0x{self.base:08X}-0x{self.end:08X} ({self.size} bytes)"


class MemoryMap:
    """A set of non-overlapping memory regions on an address bus."""

    def __init__(self, address_width: int = 32,
                 regions: Iterable[MemoryRegion] = ()) -> None:
        if address_width <= 0:
            raise ValueError("address_width must be positive")
        self.address_width = address_width
        self.regions: List[MemoryRegion] = []
        for region in regions:
            self.add_region(region)

    def add_region(self, region: MemoryRegion) -> MemoryRegion:
        if region.end >= (1 << self.address_width):
            raise ValueError(
                f"region {region.name!r} exceeds the {self.address_width}-bit address space")
        for existing in self.regions:
            if existing.overlaps(region):
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}")
        self.regions.append(region)
        return region

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    def is_legal(self, address: int) -> bool:
        """Is the address inside some mapped region?"""
        return any(region.contains(address) for region in self.regions)

    def region_of(self, address: int) -> MemoryRegion:
        for region in self.regions:
            if region.contains(address):
                return region
        raise KeyError(f"address 0x{address:08X} is not mapped")

    def mapped_bytes(self) -> int:
        return sum(region.size for region in self.regions)

    def address_ranges(self) -> List[Tuple[int, int]]:
        return [(r.base, r.end) for r in self.regions]

    def __str__(self) -> str:
        lines = [f"MemoryMap ({self.address_width}-bit address bus)"]
        lines.extend(f"  {region}" for region in self.regions)
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # reference maps
    # ------------------------------------------------------------------ #
    @classmethod
    def date13_case_study(cls) -> "MemoryMap":
        """The memory configuration used for the Table-I style benchmark.

        The paper's SoC maps a Flash and an SRAM such that only the 18 least
        significant address bits plus bit 30 can legally take both logic
        values.  We use a Flash at 0x0000_0000 (256 KiB) and an SRAM at
        0x4000_0000 (128 KiB), which yields exactly that set of free bits
        (0..17 and 30) under the "can the bit assume both values over the
        legal address set" criterion.
        """
        return cls(address_width=32, regions=[
            MemoryRegion("flash", 0x0000_0000, 256 * 1024),
            MemoryRegion("sram", 0x4000_0000, 128 * 1024),
        ])

    @classmethod
    def date13_verbatim(cls) -> "MemoryMap":
        """The ranges exactly as printed in §4 of the paper.

        Flash 0x0007_8000–0x0007_FFFF and RAM 0x4000_0000–0x4001_FFFF.  Note
        that under the union criterion this yields free bits {0..18, 30}; the
        paper states {0..17, 30} — see EXPERIMENTS.md for the discussion.
        """
        return cls(address_width=32, regions=[
            MemoryRegion("flash", 0x0007_8000, 0x0007_FFFF - 0x0007_8000 + 1),
            MemoryRegion("sram", 0x4000_0000, 0x4001_FFFF - 0x4000_0000 + 1),
        ])

    @classmethod
    def background_example(cls) -> "MemoryMap":
        """The explanatory example of §3.3: 1024x8 RAM + 4096x8 Flash mapped
        back-to-back from address 0 on a 32-bit bus (12 address bits used)."""
        return cls(address_width=32, regions=[
            MemoryRegion("ram", 0x0000_0000, 1024),
            MemoryRegion("flash", 0x0000_0400, 4096),
        ])
