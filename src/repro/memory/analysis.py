"""Address-bit constancy analysis.

Given the mission memory map, determine which address-bus bits can legally
assume both logic values ("free" bits) and which are frozen to a constant
("constant" bits).  The constant bits are the ones §3.3 of the paper ties to
ground/Vdd in every address-handling register (address generation unit,
branch target buffer, memory-management registers) before running the
structural-untestability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.memory.memory_map import MemoryMap


def _range_has_bit_value(lo: int, hi: int, bit: int, value: int) -> bool:
    """Does any address in [lo, hi] have ``bit`` equal to ``value``?"""
    period = 1 << (bit + 1)
    half = 1 << bit
    if hi - lo + 1 >= period:
        return True
    a = lo % period
    b = a + (hi - lo)  # may extend past one period but < 2*period

    if value == 1:
        windows = [(half, period - 1), (period + half, 2 * period - 1)]
    else:
        windows = [(0, half - 1), (period, period + half - 1)]
    return any(a <= w_hi and w_lo <= b for w_lo, w_hi in windows)


def free_address_bits(memory_map: MemoryMap) -> Set[int]:
    """Bits of the address bus that can take both 0 and 1 over the legal
    address set (the union of all mapped regions)."""
    free: Set[int] = set()
    for bit in range(memory_map.address_width):
        saw_zero = any(
            _range_has_bit_value(r.base, r.end, bit, 0) for r in memory_map
        )
        saw_one = any(
            _range_has_bit_value(r.base, r.end, bit, 1) for r in memory_map
        )
        if saw_zero and saw_one:
            free.add(bit)
    return free


def constant_address_bits(memory_map: MemoryMap) -> Dict[int, int]:
    """Bits frozen to a constant value, mapped to that value.

    A bit is constant when every legal address agrees on it; the returned
    value is the one it always holds.
    """
    constants: Dict[int, int] = {}
    free = free_address_bits(memory_map)
    for bit in range(memory_map.address_width):
        if bit in free:
            continue
        if not memory_map.regions:
            constants[bit] = 0
            continue
        value = (memory_map.regions[0].base >> bit) & 1
        constants[bit] = value
    return constants


@dataclass
class AddressBitAnalysis:
    """Result of analysing a memory map against an address bus width."""

    memory_map: MemoryMap
    free_bits: Set[int] = field(default_factory=set)
    constant_bits: Dict[int, int] = field(default_factory=dict)

    @property
    def address_width(self) -> int:
        return self.memory_map.address_width

    @property
    def used_bit_count(self) -> int:
        return len(self.free_bits)

    @property
    def frozen_bit_count(self) -> int:
        return len(self.constant_bits)

    def bit_vector(self) -> List[Tuple[int, str]]:
        """Per-bit description, LSB first: ('free') or ('0'/'1')."""
        result: List[Tuple[int, str]] = []
        for bit in range(self.address_width):
            if bit in self.free_bits:
                result.append((bit, "free"))
            else:
                result.append((bit, str(self.constant_bits.get(bit, 0))))
        return result

    def summary(self) -> str:
        free = sorted(self.free_bits)
        return (f"{self.used_bit_count}/{self.address_width} address bits are free "
                f"({free}); {self.frozen_bit_count} bits are frozen")


def analyze_address_bits(memory_map: MemoryMap) -> AddressBitAnalysis:
    """Full address-bit analysis of a memory map."""
    return AddressBitAnalysis(
        memory_map=memory_map,
        free_bits=free_address_bits(memory_map),
        constant_bits=constant_address_bits(memory_map),
    )
