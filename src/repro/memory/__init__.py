"""Memory-map modelling and address-bit constancy analysis (paper §3.3)."""

from repro.memory.memory_map import MemoryMap, MemoryRegion
from repro.memory.analysis import (
    AddressBitAnalysis,
    analyze_address_bits,
    constant_address_bits,
    free_address_bits,
)

__all__ = [
    "MemoryMap",
    "MemoryRegion",
    "AddressBitAnalysis",
    "analyze_address_bits",
    "constant_address_bits",
    "free_address_bits",
]
