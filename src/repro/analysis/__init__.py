"""Static netlist analysis: testability measures, learned implications,
dominators and untestability proofs.

Everything here is computed once per compiled netlist (cached through
:meth:`repro.netlist.compiled.CompiledNetlist.extension`, which is itself
keyed on the netlist signature) and is purely *structural*: no fault is ever
simulated.  The :class:`~repro.analysis.prover.StaticAnalysis` handle bundles

* SCOAP-style controllability/observability arrays (:mod:`.scoap`);
* Schulz-style learned global implications (:mod:`.implications`);
* structural post-dominators of every net (:mod:`.dominators`);
* a static untestability prover (:mod:`.prover`) combining the three.

Proofs are sound with respect to the PODEM search in
:mod:`repro.atpg.podem`: a :class:`~repro.analysis.prover.StaticProof` for a
fault guarantees the exhaustive search would return UNTESTABLE, so the
classifier may skip the search entirely.
"""

from repro.analysis.dominators import DominatorAnalysis
from repro.analysis.implications import (ImplicationTable, learn_implications,
                                         necessary_assignments)
from repro.analysis.prover import (StaticAnalysis, StaticProof,
                                   get_static_analysis)
from repro.analysis.scoap import INF, ScoapTables, compute_scoap

__all__ = [
    "INF",
    "DominatorAnalysis",
    "ImplicationTable",
    "ScoapTables",
    "StaticAnalysis",
    "StaticProof",
    "compute_scoap",
    "get_static_analysis",
    "learn_implications",
    "necessary_assignments",
]
