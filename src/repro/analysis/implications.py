"""Static implication learning (Schulz-style) over the compiled IR.

Direct implications — "net ``n`` at value ``v`` forces net ``m`` to ``w``" —
fall out of forward three-valued propagation
(:func:`repro.atpg.implication.forward_implications`): seed ``n = v`` on top
of the constant fixpoint and harvest every net that becomes definite.  Such
a forced value holds in *every* complete assignment of the controllable
points where ``n = v`` (the propagation used only ``n`` and values that hold
unconditionally).  The learning pass stores the **contrapositives**:
``m != w  =>  n != v`` — the indirect implications a forward propagation
from ``m`` alone would never discover, which is exactly the global knowledge
Schulz's SOCRATES learning adds to a structural ATPG.

The table keys literals as ``2 * net_id + value``.  Direct implications are
not stored: whenever they are needed (the necessary-assignment closure
below, PODEM's conflict check) they are recomputed by one forward
propagation, which is as fast as a table walk and needs no quadratic
memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.atpg.implication import forward_implications
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import CompiledNetlist


def literal(nid: int, value: int) -> int:
    """Encode (net id, logic value) as a table key."""
    return 2 * nid + value


@dataclass(frozen=True)
class ImplicationTable:
    """Learned indirect implications: literal -> implied (net, value) pairs.

    Every stored edge ``lit(m, w') -> (n, v')`` is a theorem of the circuit
    (relative to the constant fixpoint it was learned against): in every
    complete assignment of the controllable points where ``m = w'``, net
    ``n`` holds ``v'``.
    """

    edges: Mapping[int, Tuple[Tuple[int, int], ...]] = field(
        default_factory=dict)

    def implied_by(self, nid: int, value: int) -> Tuple[Tuple[int, int], ...]:
        return self.edges.get(literal(nid, value), ())

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self.edges.values())


def learn_implications(compiled: CompiledNetlist,
                       base: Sequence[int],
                       stats: Optional[Dict[str, int]] = None
                       ) -> ImplicationTable:
    """One learning pass: probe every undetermined net with 0 and with 1.

    For each probe ``n = v`` the forced values ``m = w`` yield contrapositive
    edges ``lit(m, 1-w) -> (n, 1-v)``.  Probing every net once per polarity
    keeps the pass linear in total cone size thanks to the worklist dedupe
    in :func:`~repro.atpg.implication.forward_implications`.
    """
    raw: Dict[int, List[Tuple[int, int]]] = {}
    net_load_ops = compiled.net_load_ops
    for nid in range(compiled.n_nets):
        if base[nid] != LOGIC_X or not net_load_ops[nid]:
            continue
        for value in (LOGIC_0, LOGIC_1):
            forced = forward_implications(compiled, {nid: value}, base,
                                          stats=stats)
            for m, w in forced.items():
                if m == nid or w == LOGIC_X or base[m] != LOGIC_X:
                    continue
                raw.setdefault(literal(m, 1 - w), []).append(
                    (nid, 1 - value))
    edges = {lit: tuple(sorted(set(pairs))) for lit, pairs in raw.items()}
    if stats is not None:
        stats["learned_edges"] = sum(len(v) for v in edges.values())
    return ImplicationTable(edges=edges)


def necessary_assignments(compiled: CompiledNetlist,
                          base: Sequence[int],
                          table: ImplicationTable,
                          seeds: Mapping[int, int]
                          ) -> Optional[Dict[int, int]]:
    """Values every satisfying assignment of ``seeds`` must produce.

    Starting from the demanded ``seeds`` (net -> value), alternately

    * propagate all current facts forward (their joint consequences), and
    * expand each fact through the learned contrapositive edges,

    until the fact set stabilises.  Each derived fact provably holds in every
    complete assignment of the controllable points under which all seeds
    hold.  Returns the fact map, or ``None`` when a contradiction was
    derived — which proves no assignment can satisfy the seeds at all.
    """
    facts: Dict[int, int] = {}
    for nid, value in sorted(seeds.items()):
        if base[nid] not in (LOGIC_X, value):
            return None
        facts[nid] = value

    while True:
        forced = forward_implications(compiled, facts, base)
        for m, w in sorted(forced.items()):
            if w == LOGIC_X:
                continue
            known = facts.get(m)
            if known is not None and known != w:
                return None
            facts[m] = w

        new_facts: Dict[int, int] = {}
        for m, w in sorted(facts.items()):
            for nid, value in table.implied_by(m, w):
                if base[nid] not in (LOGIC_X, value):
                    return None
                known = facts.get(nid, new_facts.get(nid))
                if known is None:
                    new_facts[nid] = value
                elif known != value:
                    return None
        if not new_facts:
            return facts
        facts.update(new_facts)
