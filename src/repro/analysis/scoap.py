"""SCOAP-style testability measures over the compiled IR.

Classic SCOAP (Goldstein 1979) assigns every line three costs: CC0/CC1, the
difficulty of justifying a 0/1 from the controllable points, and CO, the
difficulty of propagating the line's value to an observation point.  This
implementation is three-valued-aware: cell behaviour comes from the shared
scalar evaluator program (:func:`repro.simulation.simulator.scalar3_program`),
input combinations range over {0, 1, X} (an X pin costs nothing and covers
"don't care"), and a cost of :data:`INF` has a *proved* meaning on the
controllability side — see :func:`compute_scoap`.

Costs are relative to the same combinational view PODEM searches: tied nets
and flip-flop outputs frozen by the mission constants are fixed, free primary
inputs and free flip-flop outputs are the controllable points.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Sequence, Set, Tuple

from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import CompiledNetlist
from repro.simulation.simulator import scalar3_program

#: Cost meaning "impossible" (controllability) or "never observed here"
#: (observability).  Sums are clamped so arithmetic never overflows it.
INF = 10 ** 9

_VALUE_DOMAIN = (LOGIC_0, LOGIC_1, LOGIC_X)


@dataclass(frozen=True)
class ScoapTables:
    """Net-ID-indexed SCOAP arrays.

    ``cc0[nid]``/``cc1[nid]`` estimate the effort to justify net ``nid`` to
    0/1; ``co[nid]`` the effort to observe it.  Controllability values of
    :data:`INF` are sound proofs of impossibility (the net can *never* take
    that value for any assignment of the controllable points).
    ``co[nid] == INF`` is only a heuristic "no sensitized path was found" —
    reconvergent multi-path sensitization can observe a net the single-path
    analysis misses, so CO must never back an untestability claim.
    """

    cc0: Tuple[int, ...]
    cc1: Tuple[int, ...]
    co: Tuple[int, ...]

    def cc(self, nid: int, value: int) -> int:
        return self.cc0[nid] if value == LOGIC_0 else self.cc1[nid]


def _combo_domains(arity: int) -> List[Tuple[int, ...]]:
    """All {0,1,X} input combinations for a cell of the given arity."""
    return list(product(_VALUE_DOMAIN, repeat=arity))


def compute_scoap(compiled: CompiledNetlist,
                  base: Sequence[int],
                  controllable_ids: Set[int],
                  observation_ids: Set[int]) -> ScoapTables:
    """Compute CC0/CC1/CO for every net of the compiled netlist.

    ``base`` is the three-valued constant fixpoint (tied nets, frozen
    flip-flop outputs and everything they imply); ``controllable_ids`` and
    ``observation_ids`` are PODEM's controllable/observation net sets.

    Soundness of the controllability INF claims: a net is assigned a finite
    CCv if and only if the forward enumeration finds, at its driver, an input
    combination producing ``v`` whose definite pins each have finite
    controllability themselves.  If some assignment of the controllable
    points actually produced ``v`` on the net, simulating that assignment
    yields exactly such a combination, so the net's CCv would be finite.
    Contrapositively CCv == INF proves no assignment ever sets the net to
    ``v``.  (The finite costs themselves stay heuristic: summing pin costs
    ignores reconvergence, as in classic SCOAP.)
    """
    n = compiled.n_nets
    cc0 = [INF] * n
    cc1 = [INF] * n

    for nid in range(n):
        held = base[nid]
        if held == LOGIC_0:
            cc0[nid] = 0
        elif held == LOGIC_1:
            cc1[nid] = 0
        elif nid in controllable_ids:
            cc0[nid] = 1
            cc1[nid] = 1

    program = scalar3_program(compiled)
    op_fanin = compiled.op_fanin
    op_fanout = compiled.op_fanout
    combos_by_arity: Dict[int, List[Tuple[int, ...]]] = {}

    for op in range(compiled.n_ops):
        fanin = op_fanin[op]
        targets = [nid for nid in op_fanout[op]
                   if nid >= 0 and base[nid] == LOGIC_X]
        if not targets:
            continue
        arity = len(fanin)
        combos = combos_by_arity.setdefault(arity, _combo_domains(arity))
        fn = program[op]
        best0 = {nid: INF for nid in targets}
        best1 = {nid: INF for nid in targets}
        for combo in combos:
            cost = 0
            feasible = True
            for pos, value in enumerate(combo):
                nid = fanin[pos]
                if nid < 0:
                    if value != LOGIC_X:
                        feasible = False
                        break
                    continue
                if value == LOGIC_X:
                    continue
                pin_cost = cc0[nid] if value == LOGIC_0 else cc1[nid]
                if pin_cost >= INF:
                    feasible = False
                    break
                cost += pin_cost
            if not feasible:
                continue
            cost = min(cost, INF - 1)
            outs = fn(*combo)
            for pos, nid in enumerate(op_fanout[op]):
                if nid not in best0:
                    continue
                out = outs[pos]
                if out == LOGIC_0 and cost < best0[nid]:
                    best0[nid] = cost
                elif out == LOGIC_1 and cost < best1[nid]:
                    best1[nid] = cost
        for nid in targets:
            if best0[nid] < INF:
                cc0[nid] = min(cc0[nid], best0[nid] + 1)
            if best1[nid] < INF:
                cc1[nid] = min(cc1[nid], best1[nid] + 1)

    co = [INF] * n
    for nid in observation_ids:
        co[nid] = 0

    for op in range(compiled.n_ops - 1, -1, -1):
        fanin = op_fanin[op]
        fanout = op_fanout[op]
        out_costs = [(pos, co[nid]) for pos, nid in enumerate(fanout)
                     if nid >= 0 and co[nid] < INF]
        if not out_costs:
            continue
        arity = len(fanin)
        combos = combos_by_arity.setdefault(arity, _combo_domains(arity))
        fn = program[op]
        for pin_pos, pin_net in enumerate(fanin):
            if pin_net < 0:
                continue
            best = co[pin_net]
            for combo in combos:
                if combo[pin_pos] != LOGIC_X:
                    continue
                side_cost = 0
                feasible = True
                for pos, value in enumerate(combo):
                    if pos == pin_pos:
                        continue
                    nid = fanin[pos]
                    if nid < 0:
                        if value != LOGIC_X:
                            feasible = False
                            break
                        continue
                    if value == LOGIC_X:
                        continue
                    pin_cost = cc0[nid] if value == LOGIC_0 else cc1[nid]
                    if pin_cost >= INF:
                        feasible = False
                        break
                    side_cost += pin_cost
                if not feasible:
                    continue
                lo = list(combo)
                lo[pin_pos] = LOGIC_0
                hi = list(combo)
                hi[pin_pos] = LOGIC_1
                out_lo = fn(*lo)
                out_hi = fn(*hi)
                for out_pos, out_co in out_costs:
                    a, b = out_lo[out_pos], out_hi[out_pos]
                    if a == LOGIC_X or b == LOGIC_X or a == b:
                        continue
                    cand = min(side_cost + out_co + 1, INF - 1)
                    if cand < best:
                        best = cand
            co[pin_net] = best

    return ScoapTables(cc0=tuple(cc0), cc1=tuple(cc1), co=tuple(co))
