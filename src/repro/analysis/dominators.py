"""Structural post-dominators of every net — unique sensitization points.

A fault effect travels from its site to an observation point along paths of
the combinational net graph (edges follow :attr:`CompiledNetlist.net_succ`,
i.e. through combinational load ops; sequential cells end the time frame).
A net ``d`` that lies on *every* such path is a post-dominator of the site:
whatever pattern detects the fault must push a good/faulty difference
through ``d``.  The prover exploits this — if ``d`` provably holds the same
definite value in both machines, the fault is unobservable.

Immediate post-dominators are computed with the Cooper–Harvey–Kennedy
intersection algorithm on the reversed graph, with a virtual EXIT node that
every observation net reaches directly.  The net graph is a DAG evaluated
in reverse topological order, so a single pass suffices.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.netlist.compiled import CompiledNetlist


class DominatorAnalysis:
    """Immediate post-dominators of the combinational net graph.

    ``observation_ids`` are the sinks (PODEM's observation points).  A net
    with no path to any sink is *unreachable* — structurally unobservable.
    """

    def __init__(self, compiled: CompiledNetlist,
                 observation_ids: Set[int]) -> None:
        n = compiled.n_nets
        self.exit_node = n
        self._observation_ids = frozenset(observation_ids)

        # Reverse topological order: nets sorted by driver-op index
        # descending (primary inputs and state nets, driver -1, come last),
        # ties broken by id for determinism.  Every successor of a net is
        # driven by a later op, so it precedes the net in this order.
        driver = compiled.net_driver_op
        order = sorted(range(n), key=lambda nid: (-driver[nid], -nid))
        rank = [0] * (n + 1)
        for position, nid in enumerate(order):
            # Higher rank == closer to EXIT in processing order.
            rank[nid] = n - 1 - position
        rank[self.exit_node] = n
        self._rank = rank

        ipdom: List[Optional[int]] = [None] * (n + 1)
        ipdom[self.exit_node] = self.exit_node

        net_succ = compiled.net_succ
        for nid in order:
            new_idom: Optional[int] = None
            if nid in self._observation_ids:
                new_idom = self.exit_node
            for succ in net_succ[nid]:
                if ipdom[succ] is None:
                    continue  # successor cannot reach an observation point
                new_idom = succ if new_idom is None \
                    else self._intersect(succ, new_idom, ipdom)
            ipdom[nid] = new_idom
        self._ipdom = ipdom

    def _intersect(self, a: int, b: int,
                   ipdom: Sequence[Optional[int]]) -> int:
        rank = self._rank
        while a != b:
            while rank[a] < rank[b]:
                nxt = ipdom[a]
                assert nxt is not None
                a = nxt
            while rank[b] < rank[a]:
                nxt = ipdom[b]
                assert nxt is not None
                b = nxt
        return a

    def reaches_observation(self, nid: int) -> bool:
        """Can a fault effect on this net structurally reach a sink?"""
        return self._ipdom[nid] is not None

    def dominators(self, nid: int) -> Tuple[int, ...]:
        """Proper post-dominators of ``nid`` (excluding the net itself),
        nearest first; empty for observation nets and unreachable nets."""
        chain: List[int] = []
        current = self._ipdom[nid]
        while current is not None and current != self.exit_node:
            chain.append(current)
            current = self._ipdom[current]
        return tuple(chain)

    def common_dominators(self, nids: Sequence[int]) -> Tuple[int, ...]:
        """Nets every path from *any* of ``nids`` to a sink passes through.

        Unreachable members contribute no detection paths and are ignored;
        with no reachable member at all the result is empty (the caller
        should treat the site as unobservable instead).  The result may
        include a member of ``nids`` itself (when one origin post-dominates
        the others).
        """
        head: Optional[int] = None
        for nid in nids:
            if self._ipdom[nid] is None:
                continue
            head = nid if head is None \
                else self._intersect(nid, head, self._ipdom)
        if head is None:
            return ()
        chain: List[int] = []
        current: Optional[int] = head
        while current is not None and current != self.exit_node:
            chain.append(current)
            current = self._ipdom[current]
        return tuple(chain)
