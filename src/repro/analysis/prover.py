"""Static untestability proofs combining SCOAP, learning and dominators.

:class:`StaticAnalysis` is the one handle the rest of the stack sees.  It is
built once per compiled netlist (cached through the compiled netlist's
extension slot, i.e. keyed on the netlist signature like ``get_compiled``)
and mirrors PODEM's combinational view exactly — same frozen flip-flop
outputs, same controllable points, same observation points — so that every
:class:`StaticProof` it emits is a statement about the very search space
PODEM would explore:

* ``unconnected`` / ``tied-excitation`` / ``constant-site`` — the site can
  never be excited (PODEM's own early-out conditions);
* ``uncontrollable-excitation`` — the excitation value is unreachable from
  the controllable points (SCOAP controllability INF);
* ``implication-conflict`` — the necessary assignments of the excitation
  contradict each other (learned-implication closure);
* ``unobservable`` — no structural path from the site to any observation
  point;
* ``dominator-constant`` — every path to an observation point crosses a net
  that holds the same definite value in the good and the faulty machine;
* ``unsensitizable`` — no side-input combination lets the faulty pin value
  change the gate output definitely.

Every category implies the exhaustive PODEM search would return UNTESTABLE;
none of them relies on the heuristic CO numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dominators import DominatorAnalysis
from repro.analysis.implications import (ImplicationTable, learn_implications,
                                         necessary_assignments)
from repro.analysis.scoap import INF, ScoapTables, compute_scoap
from repro.atpg.implication import ImplicationEngine, forward_implications
from repro.faults.models import Fault, resolve_injection
from repro.netlist.cells import LOGIC_0, LOGIC_1, LOGIC_X
from repro.netlist.compiled import NO_NET, CompiledNetlist, get_compiled
from repro.netlist.module import Netlist
from repro.simulation.simulator import scalar3_program


@dataclass(frozen=True)
class StaticProof:
    """A per-fault untestability certificate.

    ``category`` names the rule that fired (see module docstring);
    ``detail`` carries the witness — a net name, a conflicting pair — for
    reports and debugging.
    """

    fault: Fault
    category: str
    detail: str = ""


class StaticAnalysis:
    """Netlist-wide static tables plus the per-fault prover."""

    def __init__(self, netlist: Netlist,
                 compiled: Optional[CompiledNetlist] = None) -> None:
        self.netlist = netlist
        self.compiled = compiled if compiled is not None \
            else get_compiled(netlist)
        compiled = self.compiled
        names = compiled.net_names
        tied = compiled.tied

        # Mirror PODEM's combinational view (see repro.atpg.podem.Podem).
        implication = ImplicationEngine(netlist)
        self.fixed_ids: Dict[int, int] = {}
        for fanout in compiled.seq_fanout:
            for nid in fanout:
                if nid < 0 or tied[nid] is not None:
                    continue
                constant = implication.constant_of(names[nid])
                if constant is not None:
                    self.fixed_ids[nid] = constant

        self.controllable_ids: Set[int] = set()
        for nid in compiled.input_port_ids:
            if tied[nid] is None:
                self.controllable_ids.add(nid)
        for fanout in compiled.seq_fanout:
            for nid in fanout:
                if (nid >= 0 and tied[nid] is None
                        and nid not in self.fixed_ids):
                    self.controllable_ids.add(nid)

        self.observation_ids: Set[int] = set(compiled.observable_output_ids)
        for i, fanin in enumerate(compiled.seq_fanin):
            inst = compiled.seq_instances[i]
            for pos, nid in enumerate(fanin):
                if nid < 0:
                    continue
                port = compiled.seq_cell[i].inputs[pos]
                if implication.propagation_blocked(inst, port):
                    continue
                self.observation_ids.add(nid)

        #: Three-valued constant fixpoint: the good machine under the empty
        #: assignment (tied nets, frozen state, and everything they imply).
        self.base: Tuple[int, ...] = self._constant_fixpoint()

        self.stats: Dict[str, int] = {}
        self.scoap: ScoapTables = compute_scoap(
            compiled, self.base, self.controllable_ids, self.observation_ids)
        self.dominators = DominatorAnalysis(compiled, self.observation_ids)
        self.implications: ImplicationTable = learn_implications(
            compiled, self.base, stats=self.stats)

        self._necessary_memo: Dict[Tuple[int, int],
                                   Optional[Dict[int, int]]] = {}
        self._overlay_memo: Dict[Tuple[int, ...], Dict[int, int]] = {}

    # ------------------------------------------------------------------ #
    # shared tables
    # ------------------------------------------------------------------ #
    def _constant_fixpoint(self) -> Tuple[int, ...]:
        compiled = self.compiled
        values = [LOGIC_X] * compiled.n_nets
        for nid, t in enumerate(compiled.tied):
            if t is not None:
                values[nid] = t
        for nid, value in self.fixed_ids.items():
            values[nid] = value
        program = scalar3_program(compiled)
        tied = compiled.tied
        for op, fn in enumerate(program):
            outs = fn(*(values[nid] if nid >= 0 else LOGIC_X
                        for nid in compiled.op_fanin[op]))
            for pos, nid in enumerate(compiled.op_fanout[op]):
                if nid >= 0 and tied[nid] is None:
                    values[nid] = outs[pos]
        return tuple(values)

    def necessary(self, nid: int, value: int) -> Optional[Dict[int, int]]:
        """Necessary assignments of ``nid = value`` (memoised); ``None``
        proves the value is unreachable."""
        key = (nid, value)
        try:
            return self._necessary_memo[key]
        except KeyError:
            result = necessary_assignments(
                self.compiled, self.base, self.implications, {nid: value})
            self._necessary_memo[key] = result
            return result

    def _overlay(self, origin_ids: Tuple[int, ...]) -> Dict[int, int]:
        """The constant fixpoint with the fault-effect origins forced to X.

        A net that stays definite under this overlay holds that value in
        both the good and the faulty machine for *every* assignment (X at
        the origin covers both machines' site values; assignments only
        refine the remaining inputs, which cannot flip a definite value).
        """
        cached = self._overlay_memo.get(origin_ids)
        if cached is None:
            cached = forward_implications(
                self.compiled, {nid: LOGIC_X for nid in origin_ids},
                self.base)
            self._overlay_memo[origin_ids] = cached
        return cached

    # ------------------------------------------------------------------ #
    # fault-site resolution (mirrors Podem._fault_refs)
    # ------------------------------------------------------------------ #
    def _fault_refs(self, fault: Fault) -> Tuple[Optional[int], int, int]:
        compiled = self.compiled
        if fault.is_port_fault:
            nid = compiled.id_of(fault.site)
            return nid, -1, -1
        kind, index, pos, is_input = compiled.pin_ref(fault.site)
        nid = compiled.pin_net_id(kind, index, pos, is_input)
        if nid == NO_NET:
            return None, -1, -1
        if not is_input:
            return nid, -1, -1
        if kind == "op":
            return None, index, pos
        return None, -1, -1

    def _excitation_id(self, fault: Fault) -> Optional[int]:
        compiled = self.compiled
        if fault.is_port_fault:
            return compiled.id_of(fault.site)
        kind, index, pos, is_input = compiled.pin_ref(fault.site)
        nid = compiled.pin_net_id(kind, index, pos, is_input)
        return nid if nid != NO_NET else None

    # ------------------------------------------------------------------ #
    # the prover
    # ------------------------------------------------------------------ #
    def prove(self, fault: Fault) -> Optional[StaticProof]:
        """A static untestability proof for ``fault``, or ``None``.

        ``None`` means "no proof", not "testable" — the prover is sound but
        deliberately incomplete.
        """
        spec = resolve_injection(fault)
        excite = self._excitation_id(fault)
        if excite is None:
            return StaticProof(fault, "unconnected")
        tied = self.compiled.tied[excite]

        if spec.frames > 1:
            # Launch-on-capture: PODEM's early-out — a site held at a
            # mission constant never transitions.
            if tied is not None or excite in self.fixed_ids:
                return StaticProof(
                    fault, "constant-site",
                    self.compiled.net_names[excite])
            # Beyond that, only capture-frame impossibilities are safe to
            # claim: an exhausted *launch* search proves untestability only
            # under conditions (no capture state constraints) that are not
            # visible statically.
            return self._prove_capture(fault, spec.stuck_value)

        if tied is not None and tied == spec.stuck_value:
            return StaticProof(fault, "tied-excitation",
                               self.compiled.net_names[excite])
        return self._prove_capture(fault, spec.stuck_value)

    def _prove_capture(self, fault: Fault,
                       fault_value: int) -> Optional[StaticProof]:
        """Prove the one-frame search against ``fault_value`` must exhaust."""
        compiled = self.compiled
        names = compiled.net_names
        excite = self._excitation_id(fault)
        assert excite is not None
        want = LOGIC_1 - fault_value

        if self.scoap.cc(excite, want) >= INF:
            return StaticProof(fault, "uncontrollable-excitation",
                               f"{names[excite]}={want}")

        stem, branch_op, branch_pos = self._fault_refs(fault)
        if stem is None and branch_op < 0:
            # Sequential-input pin fault: PODEM simulates it without
            # injection, so its verdict depends on search exhaustion alone —
            # nothing safe to claim statically.
            return None

        if self.necessary(excite, want) is None:
            return StaticProof(fault, "implication-conflict",
                               f"{names[excite]}={want}")

        if stem is not None:
            if not self.dominators.reaches_observation(stem):
                return StaticProof(fault, "unobservable", names[stem])
            overlay = self._overlay((stem,))
            for dom in self.dominators.dominators(stem):
                value = overlay.get(dom, self.base[dom])
                if value != LOGIC_X:
                    return StaticProof(fault, "dominator-constant",
                                       f"{names[dom]}={value}")
            return None

        # Branch fault on a combinational op input pin.
        if not self._sensitizable(branch_op, branch_pos, want, fault_value):
            return StaticProof(fault, "unsensitizable", fault.site)
        origins = tuple(nid for nid in compiled.op_fanout[branch_op]
                        if nid >= 0)
        reachable = [nid for nid in origins
                     if self.dominators.reaches_observation(nid)]
        if not reachable:
            return StaticProof(fault, "unobservable", fault.site)
        overlay = self._overlay(origins)
        for dom in self.dominators.common_dominators(reachable):
            value = overlay.get(dom, self.base[dom])
            if value != LOGIC_X:
                return StaticProof(fault, "dominator-constant",
                                   f"{names[dom]}={value}")
        return None

    def _sensitizable(self, op: int, pin_pos: int, want: int,
                      fault_value: int) -> bool:
        """Can flipping the pin between ``want`` and ``fault_value`` change
        some op output definitely, for any reachable side-input values?

        Side domains over-approximate what PODEM can reach (free sides range
        over {0,1,X}; sides held constant by the fixpoint are pinned, as are
        side pins wired to the faulty pin's net, which carry the good value
        ``want`` in both machines), so ``False`` is a sound impossibility.
        """
        compiled = self.compiled
        fanin = compiled.op_fanin[op]
        pin_net = fanin[pin_pos]
        domains: List[Tuple[int, ...]] = []
        for pos, nid in enumerate(fanin):
            if pos == pin_pos:
                domains.append((LOGIC_X,))  # replaced per evaluation
            elif nid < 0:
                domains.append((LOGIC_X,))
            elif nid == pin_net:
                domains.append((want,))
            elif self.base[nid] != LOGIC_X:
                domains.append((self.base[nid],))
            else:
                domains.append((LOGIC_0, LOGIC_1, LOGIC_X))
        fn = scalar3_program(compiled)[op]

        def expand(pos: int, args: List[int]) -> bool:
            if pos == len(domains):
                args[pin_pos] = want
                good = fn(*args)
                args[pin_pos] = fault_value
                faulty = fn(*args)
                return any(g != f and g != LOGIC_X and f != LOGIC_X
                           for g, f in zip(good, faulty))
            for value in domains[pos]:
                args[pos] = value
                if expand(pos + 1, args):
                    return True
            return False

        return expand(0, [LOGIC_X] * len(domains))

    def prove_all(self, faults: Sequence[Fault]
                  ) -> Dict[Fault, StaticProof]:
        """Proofs for every provable fault in ``faults`` (order-preserving)."""
        proofs: Dict[Fault, StaticProof] = {}
        for fault in faults:
            proof = self.prove(fault)
            if proof is not None:
                proofs[fault] = proof
        return proofs


def get_static_analysis(netlist: Netlist) -> StaticAnalysis:
    """The cached :class:`StaticAnalysis` of a netlist.

    Stored as an extension of the compiled netlist, so it shares
    ``get_compiled``'s lifecycle: rebuilt only when the netlist's signature
    changes, shared by every engine in the process."""
    compiled = get_compiled(netlist)

    def build(c: CompiledNetlist) -> StaticAnalysis:
        return StaticAnalysis(netlist, c)

    return compiled.extension("static_analysis", build)
