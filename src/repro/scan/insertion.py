"""Mux-scan insertion.

Replaces every plain D flip-flop of a netlist with a mux-scan flip-flop
(SDFF/SDFFR), stitches the cells into one or more scan chains, connects a
shared scan-enable port and exposes scan-in/scan-out ports — i.e. it builds
exactly the structure §3.1 of the paper reasons about.  Dedicated buffers are
inserted on the serial path between consecutive cells so that the "buffers
and inverters on the scan path" fault population discussed in the paper is
present in generated designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.netlist.module import INPUT, Netlist


_SCANNABLE = {
    "DFF": "SDFF",
    "DFFR": "SDFFR",
}


@dataclass
class ScanInsertionResult:
    """What the insertion pass created."""

    chains: List[List[str]] = field(default_factory=list)
    scan_enable_port: str = "scan_enable"
    scan_in_ports: List[str] = field(default_factory=list)
    scan_out_ports: List[str] = field(default_factory=list)
    path_buffers: List[str] = field(default_factory=list)

    @property
    def total_cells(self) -> int:
        return sum(len(chain) for chain in self.chains)


def insert_scan(netlist: Netlist,
                n_chains: int = 1,
                scan_enable_port: str = "scan_enable",
                scan_in_prefix: str = "scan_in",
                scan_out_prefix: str = "scan_out",
                buffer_every: int = 4,
                flop_order: Optional[Sequence[str]] = None) -> ScanInsertionResult:
    """Insert mux-scan cells and stitch scan chains in place.

    Parameters
    ----------
    n_chains:
        Number of balanced scan chains to build.
    buffer_every:
        Insert a dedicated scan-path buffer after every N cells (0 disables).
    flop_order:
        Optional explicit stitch order (instance names); defaults to the
        netlist's iteration order of scannable flip-flops.
    """
    scannable = [
        inst for inst in netlist.instances.values()
        if inst.cell.name in _SCANNABLE
    ]
    if flop_order is not None:
        by_name = {inst.name: inst for inst in scannable}
        scannable = [by_name[name] for name in flop_order]
    if not scannable:
        return ScanInsertionResult(scan_enable_port=scan_enable_port)

    n_chains = max(1, min(n_chains, len(scannable)))

    if scan_enable_port not in netlist.ports:
        netlist.add_port(scan_enable_port, INPUT)

    result = ScanInsertionResult(scan_enable_port=scan_enable_port)

    # Replace each plain flop with its scan version, preserving connections.
    replaced: List[str] = []
    for inst in scannable:
        connections = {
            port: pin.net.name for port, pin in inst.pins.items() if pin.net is not None
        }
        name = inst.name
        netlist.remove_instance(name)
        scan_cell = _SCANNABLE[inst.cell.name]
        connections["SE"] = scan_enable_port
        # SI is stitched below; leave it unconnected for now.
        netlist.add_instance(name, scan_cell, connections)
        replaced.append(name)

    # Split into chains and stitch.
    chain_size = (len(replaced) + n_chains - 1) // n_chains
    buffer_count = 0
    for chain_index in range(n_chains):
        members = replaced[chain_index * chain_size:(chain_index + 1) * chain_size]
        if not members:
            continue
        si_port = f"{scan_in_prefix}{chain_index}"
        so_port = f"{scan_out_prefix}{chain_index}"
        netlist.add_port(si_port, INPUT)
        so_net = netlist.add_port(so_port, "output")

        previous_net = si_port
        for position, name in enumerate(members):
            inst = netlist.instance(name)
            netlist.connect(inst.pin("SI"), previous_net)
            q_net = inst.pin("Q").net
            if q_net is None:
                q_net = netlist.get_or_create_net(f"{name}_q")
                netlist.connect(inst.pin("Q"), q_net.name)
            previous_net = q_net.name

            if buffer_every and (position + 1) % buffer_every == 0 and position + 1 < len(members):
                buf_name = f"scanbuf_{chain_index}_{buffer_count}"
                buf_net = f"{buf_name}_y"
                netlist.add_instance(buf_name, "BUF",
                                     {"A": previous_net, "Y": buf_net})
                result.path_buffers.append(buf_name)
                buffer_count += 1
                previous_net = buf_net

        # Tail buffer driving the scan-out port (observation-only logic).
        tail_name = f"scanbuf_{chain_index}_out"
        netlist.add_instance(tail_name, "BUF",
                             {"A": previous_net, "Y": so_net.name})
        result.path_buffers.append(tail_name)

        result.chains.append(members)
        result.scan_in_ports.append(si_port)
        result.scan_out_ports.append(so_port)

    netlist.annotations["scan_insertion"] = {
        "chains": result.chains,
        "scan_enable_port": scan_enable_port,
        "scan_in_ports": result.scan_in_ports,
        "scan_out_ports": result.scan_out_ports,
        "path_buffers": result.path_buffers,
    }
    return result
