"""Scan infrastructure: mux-scan insertion and scan-chain tracing."""

from repro.scan.insertion import ScanInsertionResult, insert_scan
from repro.scan.chain_tracer import ScanChain, ScanChainTracer, trace_scan_chains

__all__ = [
    "ScanInsertionResult",
    "insert_scan",
    "ScanChain",
    "ScanChainTracer",
    "trace_scan_chains",
]
