"""Scan-chain tracing (the "ad-hoc tool able to trace the chain" of §4).

Starting from the scan-in ports (given explicitly, or discovered as the
input ports that structurally feed SI pins of scan cells), the tracer walks
the serial path — through any buffers and inverters — collecting, in order:

* the scan cells of every chain,
* the dedicated scan-path instances (buffers/inverters) between cells and
  towards the scan-out port,
* the scan-enable nets steering the capture muxes.

The result is exactly the information §3.1 needs to prune the scan-related
on-line functionally untestable faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.module import Instance, Netlist, Net, Pin


@dataclass
class ScanChain:
    """One traced scan chain."""

    scan_in_port: str
    cells: List[str] = field(default_factory=list)
    path_instances: List[str] = field(default_factory=list)
    scan_out_port: Optional[str] = None
    scan_enable_nets: Set[str] = field(default_factory=set)

    @property
    def length(self) -> int:
        return len(self.cells)


class ScanChainTracer:
    """Traces mux-scan chains structurally (no reliance on insertion metadata)."""

    _PASS_THROUGH_CELLS = {"BUF", "INV"}

    def __init__(self, netlist: Netlist,
                 scan_out_ports: Optional[Sequence[str]] = None) -> None:
        self.netlist = netlist
        # A scan cell's output usually feeds functional logic as well, and
        # that functional logic may itself reach output ports through
        # buffers.  To terminate chains on the *scan-out* port (and not on a
        # functional port), the tracer prefers: next SI pin > known scan-out
        # port > any other output port.  Known scan-out ports come from the
        # caller, from the scan-insertion annotation, or from the
        # conventional "scan_out*" port-name prefix.
        if scan_out_ports is not None:
            self.known_scan_outs = set(scan_out_ports)
        else:
            annotation = netlist.annotations.get("scan_insertion", {})
            self.known_scan_outs = set(annotation.get("scan_out_ports", []))
            if not self.known_scan_outs:
                self.known_scan_outs = {
                    p for p in netlist.output_ports() if p.startswith("scan_out")
                }

    # ------------------------------------------------------------------ #
    def discover_scan_in_ports(self) -> List[str]:
        """Input ports that structurally reach an SI pin of a scan cell."""
        candidates: List[str] = []
        for port in self.netlist.input_ports():
            hit, _, _ = self._follow_serial(self.netlist.net(port), set())
            if hit is not None:
                candidates.append(port)
        return candidates

    def discover_scan_enable_nets(self) -> Set[str]:
        """Nets driving the scan-enable pin of at least one scan cell."""
        nets: Set[str] = set()
        for inst in self.netlist.sequential_instances():
            se_pin_name = inst.cell.role_pin("scan_enable")
            if se_pin_name is None:
                continue
            pin = inst.pin(se_pin_name)
            if pin.net is not None:
                nets.add(pin.net.name)
        return nets

    # ------------------------------------------------------------------ #
    def _follow_serial(self, net: Net, visited: Set[str]
                       ) -> Tuple[Optional[Pin], List[str], Optional[str]]:
        """Follow a net towards the next SI pin.

        Returns ``(si_pin, path_instance_names, scan_out_port)``; exactly one
        of ``si_pin`` / ``scan_out_port`` is non-None when the walk reaches a
        scan cell or an output port; both are None if the path dies out.
        Buffers/inverters traversed on the way are returned in order.

        A scan cell's output typically also feeds functional logic (and may
        reach functional output ports through buffers), so a continuation
        ending at the next SI pin is always preferred over one ending at an
        output port; a port is only reported as the scan-out when no SI pin
        is reachable at all.
        """
        if net.name in visited:
            return None, [], None
        visited.add(net.name)

        for pin in net.loads:
            cell = pin.instance.cell
            if cell.sequential and cell.role_pin("scan_in") == pin.port:
                return pin, [], None

        port_result: Optional[Tuple[Optional[Pin], List[str], Optional[str]]] = None
        for pin in net.loads:
            inst = pin.instance
            if inst.cell.name in self._PASS_THROUGH_CELLS:
                out_pin = inst.output_pins()[0]
                if out_pin.net is None:
                    continue
                si_pin, path, so_port = self._follow_serial(out_pin.net, visited)
                if si_pin is not None:
                    return si_pin, [inst.name] + path, None
                if so_port is not None:
                    candidate = (None, [inst.name] + path, so_port)
                    if so_port in self.known_scan_outs:
                        port_result = candidate
                    elif port_result is None:
                        port_result = candidate

        if net.is_output_port:
            candidate = (None, [], net.name)
            if net.name in self.known_scan_outs:
                return candidate
            if port_result is None:
                port_result = candidate
        if port_result is not None:
            return port_result
        return None, [], None

    def trace_chain(self, scan_in_port: str) -> ScanChain:
        """Trace one chain starting from a scan-in input port."""
        chain = ScanChain(scan_in_port=scan_in_port)
        net = self.netlist.net(scan_in_port)
        seen_cells: Set[str] = set()

        while True:
            si_pin, path, so_port = self._follow_serial(net, set())
            chain.path_instances.extend(path)
            if so_port is not None:
                chain.scan_out_port = so_port
                break
            if si_pin is None:
                break
            inst = si_pin.instance
            if inst.name in seen_cells:
                break  # defensive: malformed chain with a loop
            seen_cells.add(inst.name)
            chain.cells.append(inst.name)

            se_pin_name = inst.cell.role_pin("scan_enable")
            if se_pin_name is not None:
                se_pin = inst.pin(se_pin_name)
                if se_pin.net is not None:
                    chain.scan_enable_nets.add(se_pin.net.name)

            scan_out_pin_name = inst.cell.role_pin("scan_out") or inst.cell.role_pin("state_output")
            out_pin = inst.pin(scan_out_pin_name)
            if out_pin.net is None:
                break
            net = out_pin.net

        return chain

    def trace(self, scan_in_ports: Optional[Sequence[str]] = None) -> List[ScanChain]:
        """Trace every chain; discovers the scan-in ports if not given."""
        ports = list(scan_in_ports) if scan_in_ports is not None else self.discover_scan_in_ports()
        return [self.trace_chain(port) for port in ports]


def trace_scan_chains(netlist: Netlist,
                      scan_in_ports: Optional[Sequence[str]] = None) -> List[ScanChain]:
    """Convenience wrapper around :class:`ScanChainTracer`."""
    return ScanChainTracer(netlist).trace(scan_in_ports)
