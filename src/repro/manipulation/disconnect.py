"""Float (disconnect) output ports — circuit manipulation step 2 (§3.2.2).

When the external debugger is removed, the CPU outputs that only ever fed the
debug equipment are left floating; faults whose effects can only reach those
outputs become on-line functionally untestable.  We model this by marking
the ports unobservable rather than ripping them out of the netlist, so the
operation is reversible and the same netlist object can be reused.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.module import Netlist


def disconnect_output_port(netlist: Netlist, port_name: str, reason: str = "") -> None:
    """Mark an output port as unobservable (left floating in the field)."""
    if port_name not in netlist.ports:
        raise KeyError(f"port {port_name!r} not found on module {netlist.name!r}")
    if netlist.ports[port_name] != "output":
        raise ValueError(f"port {port_name!r} is not an output port")
    netlist.unobservable_ports.add(port_name)
    records: List[dict] = netlist.annotations.setdefault("float_records", [])
    records.append({"port": port_name, "reason": reason})


def disconnect_output_bus(netlist: Netlist, port_names: Sequence[str],
                          reason: str = "") -> None:
    """Float every port of an output bus."""
    for port in port_names:
        disconnect_output_port(netlist, port, reason)


def reconnect_output_port(netlist: Netlist, port_name: str) -> None:
    """Undo a disconnect (tests and what-if analyses)."""
    netlist.unobservable_ports.discard(port_name)
    records = netlist.annotations.get("float_records", [])
    netlist.annotations["float_records"] = [
        r for r in records if r.get("port") != port_name
    ]
