"""Tie nets to fixed logic values (circuit manipulation step 1).

Tieing is recorded directly on the :class:`~repro.netlist.module.Net`
(``net.tied``) and in the netlist annotation ``"tie_records"`` so reports can
explain *why* each net was tied (debug control, memory map, scan enable...).
Simulation, implication and ATPG all honour ``net.tied``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.netlist.cells import LOGIC_0, LOGIC_1
from repro.netlist.module import Netlist


@dataclass(frozen=True)
class TieRecord:
    """Audit record of one tie operation."""

    net: str
    value: int
    reason: str = ""


def _records(netlist: Netlist) -> List[TieRecord]:
    return netlist.annotations.setdefault("tie_records", [])  # type: ignore[return-value]


def tie_net(netlist: Netlist, net_name: str, value: int, reason: str = "") -> TieRecord:
    """Force ``net_name`` to a constant logic value."""
    if value not in (LOGIC_0, LOGIC_1):
        raise ValueError(f"tie value must be 0 or 1, got {value!r}")
    net = netlist.net(net_name)
    net.tied = value
    record = TieRecord(net_name, value, reason)
    _records(netlist).append(record)
    return record


def tie_port(netlist: Netlist, port_name: str, value: int, reason: str = "") -> TieRecord:
    """Tie a module port (checks the port exists first)."""
    if port_name not in netlist.ports:
        raise KeyError(f"port {port_name!r} not found on module {netlist.name!r}")
    return tie_net(netlist, port_name, value, reason)


def tie_bus(netlist: Netlist, net_names: Sequence[str], values: Iterable[int],
            reason: str = "") -> List[TieRecord]:
    """Tie a bus of nets to a vector of values (same length)."""
    values = list(values)
    if len(values) != len(net_names):
        raise ValueError(
            f"bus has {len(net_names)} nets but {len(values)} tie values were given")
    return [tie_net(netlist, n, v, reason) for n, v in zip(net_names, values)]


def untie_net(netlist: Netlist, net_name: str) -> None:
    """Remove a tie (used by tests and what-if analyses)."""
    net = netlist.net(net_name)
    net.tied = None
    records = _records(netlist)
    netlist.annotations["tie_records"] = [r for r in records if r.net != net_name]


def tied_nets(netlist: Netlist) -> Dict[str, int]:
    """All currently tied nets and their values."""
    return {name: net.tied for name, net in netlist.nets.items() if net.tied is not None}
