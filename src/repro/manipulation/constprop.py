"""Constant propagation over a manipulated netlist.

Thin wrapper around :func:`repro.atpg.implication.implied_constants` that also
reports *which instances* have become completely inert (every output implied
constant) — the paper's observation that whole debug blocks "are no longer
used along the mission behaviour" corresponds to inert instances here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.atpg.implication import implied_constants
from repro.netlist.module import Netlist


@dataclass
class ConstantPropagationResult:
    """Implied constants plus derived structural facts."""

    constants: Dict[str, int] = field(default_factory=dict)
    inert_instances: List[str] = field(default_factory=list)

    @property
    def constant_net_count(self) -> int:
        return len(self.constants)


def propagate_constants(netlist: Netlist) -> ConstantPropagationResult:
    """Propagate tie values through the combinational logic."""
    constants = implied_constants(netlist)
    inert: List[str] = []
    for inst in netlist.instances.values():
        outputs = [p for p in inst.output_pins() if p.net is not None]
        if outputs and all(p.net.name in constants for p in outputs):
            inert.append(inst.name)
    return ConstantPropagationResult(constants=constants, inert_instances=inert)
