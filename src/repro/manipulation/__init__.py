"""Circuit manipulation: tieing nets to constants and floating outputs.

These are the two operations §3 of the paper applies before running the
structural-untestability analysis:

* connect signals to ground or Vdd ("tied'0 / tied'1") — debug control
  inputs, scan enables, constant address-register bits;
* leave debug-only output buses floating (disconnect them from any
  observer).
"""

from repro.manipulation.tie import (
    TieRecord,
    tie_bus,
    tie_net,
    tie_port,
    tied_nets,
    untie_net,
)
from repro.manipulation.disconnect import (
    disconnect_output_bus,
    disconnect_output_port,
    reconnect_output_port,
)
from repro.manipulation.constprop import ConstantPropagationResult, propagate_constants

__all__ = [
    "TieRecord",
    "tie_bus",
    "tie_net",
    "tie_port",
    "tied_nets",
    "untie_net",
    "disconnect_output_bus",
    "disconnect_output_port",
    "reconnect_output_port",
    "ConstantPropagationResult",
    "propagate_constants",
]
